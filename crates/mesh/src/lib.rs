//! Interconnect model for the `commsense` machine emulator.
//!
//! The MIT Alewife network is an asynchronous 2-D mesh of Elko-series EMRC
//! routers (8×4 for the 32-node machine used in the paper) with
//! dimension-order wormhole routing. This crate models that network — and,
//! through the [`Topology`] trait, a 2-D torus, a fat tree, and a dragonfly
//! for scaling studies — at the level that matters for the paper's
//! experiments:
//!
//! * **Per-link serialization** — every packet occupies each link on its
//!   route for `bytes / link_bandwidth`; queued waiters experience the
//!   nonlinear congestion that defines the paper's *Congestion Dominated*
//!   region (Figure 1).
//! * **Pipelined (cut-through) head latency** — the packet head advances one
//!   router delay per hop while the body streams behind it, reproducing the
//!   "15 cycles one-way for a 24-byte packet" Alewife figure from Table 1.
//! * **Endpoint occupancy** — ejection ports serialize deliveries and can be
//!   slowed by the receiving processor (slow message-passing handler drain
//!   vs. fast CMMU shared-memory drain, §5.1 of the paper).
//! * **Cross-traffic injection** — I/O nodes on both mesh edges stream
//!   fixed-size packets across the bisection in both directions, emulating a
//!   machine with lower bisection bandwidth (Figure 6, §5.2).
//! * **Volume accounting** — every byte is classified as Invalidate /
//!   Request / Header / Data so Figure 5's communication-volume breakdowns
//!   can be regenerated, and bytes crossing the bisection cut are counted
//!   separately.
//!
//! # Examples
//!
//! ```
//! use commsense_des::Time;
//! use commsense_mesh::{Endpoint, NetConfig, Network, Packet, PacketClass};
//!
//! let mut net = Network::new(NetConfig::alewife());
//! let mut pending = Vec::new();
//! let pkt = Packet::protocol(Endpoint::node(0), Endpoint::node(31), 24, PacketClass::Data, 7);
//! net.inject(Time::ZERO, pkt, &mut |t, ev| pending.push((t, ev)));
//! // Drive the network until the packet arrives.
//! let mut delivered = None;
//! while let Some((t, ev)) = pending.pop() {
//!     let mut next = Vec::new();
//!     if let Some(d) = net.handle(t, ev, &mut |t2, e2| next.push((t2, e2))) {
//!         delivered = Some((t, d));
//!     }
//!     pending.extend(next);
//!     pending.sort_by_key(|(t, _)| std::cmp::Reverse(*t));
//! }
//! let (arrival, d) = delivered.expect("packet must arrive");
//! assert_eq!(d.packet.tag, 7);
//! assert!(arrival > Time::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crosstraffic;
mod network;
mod packet;
mod recorder;
mod stats;
mod topology;

pub use crosstraffic::{CrossTraffic, CrossTrafficConfig, TrafficPattern};
pub use network::{Delivery, NetConfig, NetEvent, Network};
pub use packet::{Endpoint, Packet, PacketClass, Priority};
pub use recorder::{HopRecord, NetRecording, PacketRecord, NO_RECORD};
pub use stats::{NetStats, VolumeBreakdown};
pub use topology::{
    Dragonfly, FatTree, Mesh, RouteDir, RouteTable, RouterCoord, Topo, TopoSpec, Topology, Torus,
};
