//! Network statistics: communication volume, bisection crossings, latency.

use commsense_des::Time;

use crate::packet::PacketClass;

/// Communication volume broken down by the paper's four classes (Figure 5),
/// plus background cross-traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolumeBreakdown {
    /// Invalidation and acknowledgement bytes.
    pub invalidates: u64,
    /// Read/write/modify request bytes.
    pub requests: u64,
    /// Header bytes of data-carrying packets.
    pub headers: u64,
    /// Payload bytes.
    pub data: u64,
    /// Background cross-traffic bytes (not application volume).
    pub cross_traffic: u64,
}

impl VolumeBreakdown {
    /// Application communication volume: everything except cross-traffic.
    pub fn app_total(&self) -> u64 {
        self.invalidates + self.requests + self.headers + self.data
    }

    /// Adds a packet's bytes to the breakdown.
    pub fn record(&mut self, class: PacketClass, header_bytes: u32, payload_bytes: u32) {
        match class {
            PacketClass::Invalidate => self.invalidates += (header_bytes + payload_bytes) as u64,
            PacketClass::Request => self.requests += (header_bytes + payload_bytes) as u64,
            PacketClass::Header => self.headers += (header_bytes + payload_bytes) as u64,
            PacketClass::Data => {
                self.headers += header_bytes as u64;
                self.data += payload_bytes as u64;
            }
            PacketClass::CrossTraffic => {
                self.cross_traffic += (header_bytes + payload_bytes) as u64
            }
        }
    }

    /// Value of one class bucket (cross-traffic excluded).
    pub fn class_bytes(&self, class: PacketClass) -> u64 {
        match class {
            PacketClass::Invalidate => self.invalidates,
            PacketClass::Request => self.requests,
            PacketClass::Header => self.headers,
            PacketClass::Data => self.data,
            PacketClass::CrossTraffic => self.cross_traffic,
        }
    }
}

/// Aggregate network statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Volume injected into the network (counted once per packet).
    pub injected: VolumeBreakdown,
    /// Bytes that crossed the bisection cut, by class.
    pub bisection: VolumeBreakdown,
    /// Number of packets injected.
    pub packets_injected: u64,
    /// Number of packets delivered.
    pub packets_delivered: u64,
    /// Sum of end-to-end packet latencies (injection to tail delivery).
    pub latency_sum: Time,
    /// Maximum observed end-to-end packet latency.
    pub latency_max: Time,
    /// Total time packets spent queued waiting for busy links.
    pub link_wait_sum: Time,
    /// Times a high-priority packet was served ahead of at least one queued
    /// low-priority packet (priority virtual channel; always 0 under the
    /// baseline variant).
    pub priority_bypasses: u64,
    /// Total queued low-priority packets bypassed across all those events
    /// (the sum of the per-link starvation counters).
    pub low_bypassed: u64,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Mean end-to-end latency over delivered packets, if any.
    pub fn mean_latency(&self) -> Option<Time> {
        self.latency_sum
            .as_ps()
            .checked_div(self.packets_delivered)
            .map(Time::from_ps)
    }

    /// Records a delivered packet's latency.
    pub fn record_delivery(&mut self, latency: Time) {
        self.packets_delivered += 1;
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packets_split_header_and_payload() {
        let mut v = VolumeBreakdown::default();
        v.record(PacketClass::Data, 8, 16);
        assert_eq!(v.headers, 8);
        assert_eq!(v.data, 16);
        assert_eq!(v.app_total(), 24);
    }

    #[test]
    fn request_packets_count_whole() {
        let mut v = VolumeBreakdown::default();
        v.record(PacketClass::Request, 8, 0);
        v.record(PacketClass::Invalidate, 8, 0);
        assert_eq!(v.requests, 8);
        assert_eq!(v.invalidates, 8);
        assert_eq!(v.app_total(), 16);
    }

    #[test]
    fn cross_traffic_excluded_from_app_total() {
        let mut v = VolumeBreakdown::default();
        v.record(PacketClass::CrossTraffic, 8, 56);
        assert_eq!(v.app_total(), 0);
        assert_eq!(v.cross_traffic, 64);
    }

    #[test]
    fn mean_latency() {
        let mut s = NetStats::new();
        assert_eq!(s.mean_latency(), None);
        s.record_delivery(Time::from_ns(100));
        s.record_delivery(Time::from_ns(300));
        assert_eq!(s.mean_latency(), Some(Time::from_ns(200)));
        assert_eq!(s.latency_max, Time::from_ns(300));
    }

    #[test]
    fn class_bytes_lookup() {
        let mut v = VolumeBreakdown::default();
        v.record(PacketClass::Data, 8, 16);
        assert_eq!(v.class_bytes(PacketClass::Header), 8);
        assert_eq!(v.class_bytes(PacketClass::Data), 16);
        assert_eq!(v.class_bytes(PacketClass::Invalidate), 0);
    }
}
