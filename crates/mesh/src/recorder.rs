//! Optional packet-lifecycle recording for the network simulator.
//!
//! When enabled (see `Network::enable_recording`), the network logs one
//! [`PacketRecord`] per injected packet, one [`HopRecord`] per link
//! traversal, and a cumulative per-link busy time. The records feed the
//! machine layer's Perfetto exporter (link tracks, flow arrows) and epoch
//! sampler (per-link utilization). Recording is bookkeeping only: it never
//! schedules events or changes any time computation, so enabling it cannot
//! perturb simulated behavior.

use commsense_des::Time;

use crate::packet::{Endpoint, Packet, PacketClass};

/// Sentinel record id meaning "this packet was not recorded" — either
/// recording was off, or the packet table had reached its capacity.
pub const NO_RECORD: u32 = u32::MAX;

/// The lifecycle of one recorded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Traffic class.
    pub class: PacketClass,
    /// Total wire bytes (header + payload).
    pub bytes: u32,
    /// When the packet entered the network.
    pub injected_at: Time,
    /// When its tail reached the destination (or left the mesh edge, for
    /// cross-traffic); `None` if still in flight when recording stopped.
    pub delivered_at: Option<Time>,
}

/// One link traversal of a recorded packet.
///
/// `enqueued..start` is time spent waiting for the link (contention),
/// `start..end` is time on the wire (serialization). Earlier recordings
/// collapsed the two into `start..end`, which made queueing invisible
/// whenever a link was busy at arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Index into [`NetRecording::packets`].
    pub packet: u32,
    /// Dense link id (see `Mesh::link_id`).
    pub link: u32,
    /// When the packet's head arrived at the router and requested the link
    /// (equal to `start` when the link was idle).
    pub enqueued: Time,
    /// When the link started serializing the packet (departure from the
    /// router's queue).
    pub start: Time,
    /// When the link finished (start + serialization time).
    pub end: Time,
}

impl HopRecord {
    /// Time this hop spent queued behind other traffic.
    pub fn queue_time(&self) -> Time {
        self.start.saturating_sub(self.enqueued)
    }

    /// Time this hop spent serializing on the wire.
    pub fn wire_time(&self) -> Time {
        self.end.saturating_sub(self.start)
    }
}

/// The live recorder owned by the network while a run executes.
#[derive(Debug)]
pub(crate) struct NetRecorder {
    max_packets: usize,
    packets: Vec<PacketRecord>,
    hops: Vec<HopRecord>,
    dropped_packets: u64,
    link_busy: Vec<Time>,
    last_id: u32,
}

impl NetRecorder {
    pub(crate) fn new(max_packets: usize, links: usize) -> Self {
        NetRecorder {
            // Record ids are u32 with NO_RECORD reserved; clamp the table
            // capacity so ids can never collide with the sentinel.
            max_packets: max_packets.min(NO_RECORD as usize - 1),
            packets: Vec::new(),
            hops: Vec::new(),
            dropped_packets: 0,
            link_busy: vec![Time::ZERO; links],
            last_id: NO_RECORD,
        }
    }

    /// Records an injection; returns the packet's record id (or
    /// [`NO_RECORD`] once the table is full).
    pub(crate) fn on_inject(&mut self, pkt: &Packet, now: Time) -> u32 {
        if self.packets.len() >= self.max_packets {
            self.dropped_packets += 1;
            self.last_id = NO_RECORD;
            return NO_RECORD;
        }
        let id = self.packets.len() as u32;
        self.packets.push(PacketRecord {
            src: pkt.src,
            dst: pkt.dst,
            class: pkt.class,
            bytes: pkt.wire_bytes(),
            injected_at: now,
            delivered_at: None,
        });
        self.last_id = id;
        id
    }

    /// Records a link traversal. Link busy time accumulates for every
    /// packet (utilization counts all traffic), while the per-hop record
    /// is kept only for packets that made it into the table. `enqueued` is
    /// when the head requested the link; `start` is when the link actually
    /// began serializing (later when the link was busy).
    pub(crate) fn on_hop(&mut self, rec: u32, link: usize, enqueued: Time, start: Time, end: Time) {
        self.link_busy[link] += end.saturating_sub(start);
        if rec != NO_RECORD {
            self.hops.push(HopRecord {
                packet: rec,
                link: link as u32,
                enqueued: enqueued.min(start),
                start,
                end,
            });
        }
    }

    pub(crate) fn on_deliver(&mut self, rec: u32, now: Time) {
        if rec != NO_RECORD {
            self.packets[rec as usize].delivered_at = Some(now);
        }
    }

    pub(crate) fn last_id(&self) -> u32 {
        self.last_id
    }

    pub(crate) fn packets(&self) -> &[PacketRecord] {
        &self.packets
    }

    pub(crate) fn link_busy(&self) -> &[Time] {
        &self.link_busy
    }

    pub(crate) fn into_recording(self) -> NetRecording {
        NetRecording {
            packets: self.packets,
            hops: self.hops,
            dropped_packets: self.dropped_packets,
            link_busy: self.link_busy,
        }
    }
}

/// The finished recording of one run, detached from the network.
#[derive(Debug, Clone, Default)]
pub struct NetRecording {
    /// One record per injected packet, in injection order (the record id
    /// used by [`HopRecord::packet`] is the index into this vector).
    pub packets: Vec<PacketRecord>,
    /// Every link traversal of every recorded packet, in simulation order.
    pub hops: Vec<HopRecord>,
    /// Packets injected after the table reached its capacity (their hops
    /// and delivery are not individually recorded, but their link busy
    /// time still counts toward utilization).
    pub dropped_packets: u64,
    /// Total serialization time accumulated on each link over the run.
    pub link_busy: Vec<Time>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::protocol(
            Endpoint::node(0),
            Endpoint::node(1),
            24,
            PacketClass::Data,
            0,
        )
    }

    #[test]
    fn records_lifecycle_and_caps_packets() {
        let mut r = NetRecorder::new(2, 4);
        let a = r.on_inject(&pkt(), Time::ZERO);
        let b = r.on_inject(&pkt(), Time::from_ns(10));
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.last_id(), 1);
        let c = r.on_inject(&pkt(), Time::from_ns(20));
        assert_eq!(c, NO_RECORD);
        assert_eq!(r.last_id(), NO_RECORD);
        r.on_hop(a, 2, Time::ZERO, Time::ZERO, Time::from_ns(5));
        r.on_hop(c, 2, Time::from_ns(5), Time::from_ns(5), Time::from_ns(9));
        r.on_deliver(a, Time::from_ns(7));
        r.on_deliver(c, Time::from_ns(9));
        let rec = r.into_recording();
        assert_eq!(rec.packets.len(), 2);
        assert_eq!(rec.dropped_packets, 1);
        // The dropped packet got no hop record but still loaded the link.
        assert_eq!(rec.hops.len(), 1);
        assert_eq!(rec.link_busy[2], Time::from_ns(9));
        assert_eq!(rec.packets[0].delivered_at, Some(Time::from_ns(7)));
        assert_eq!(rec.packets[1].delivered_at, None);
    }

    #[test]
    fn hop_splits_queue_from_wire() {
        let mut r = NetRecorder::new(2, 4);
        let a = r.on_inject(&pkt(), Time::ZERO);
        // Head arrived at 2ns, link free only at 6ns, done at 11ns.
        r.on_hop(a, 1, Time::from_ns(2), Time::from_ns(6), Time::from_ns(11));
        let rec = r.into_recording();
        let hop = rec.hops[0];
        assert_eq!(hop.queue_time(), Time::from_ns(4));
        assert_eq!(hop.wire_time(), Time::from_ns(5));
        // Busy time counts wire occupancy only, never queueing.
        assert_eq!(rec.link_busy[1], Time::from_ns(5));
    }
}
