//! The contention-aware network simulator.

use std::collections::VecDeque;

use commsense_des::Time;

use crate::packet::{Endpoint, Packet, Priority};
use crate::recorder::{NetRecorder, NetRecording, NO_RECORD};
use crate::stats::NetStats;
use crate::topology::{Topo, TopoSpec};

/// Physical parameters of the interconnect.
///
/// Alewife calibration: Table 1 gives the 32-node machine a bisection of
/// 360 Mbytes/s = 18 bytes per 20 MHz processor cycle. The 8×4 mesh's
/// bisection cut is crossed by 8 unidirectional channels, so each channel
/// carries 45 Mbytes/s ⇒ ~22.2 ns/byte. With a 40 ns router delay, a
/// 24-byte packet over an average ~4-hop path takes ≈0.7 µs ≈ 15 processor
/// cycles — the paper's Table 1 entry. Other topologies reuse the same
/// per-channel timing, so bisection bandwidth scales with the topology's
/// channel count.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Interconnect shape.
    pub topo: TopoSpec,
    /// Serialization time per byte on each link, in picoseconds.
    pub ps_per_byte: u64,
    /// Head latency through one router, in picoseconds.
    pub router_delay_ps: u64,
    /// Time the ejection port is busy per delivered packet, in picoseconds
    /// (beyond what the receiving controller adds via
    /// [`Network::stall_ejection`]).
    pub eject_delay_ps: u64,
}

impl NetConfig {
    /// The Alewife 8×4 mesh calibrated to Table 1 (18 bytes/cycle bisection,
    /// 15-cycle one-way latency for 24 bytes at 20 MHz).
    pub fn alewife() -> Self {
        NetConfig {
            topo: TopoSpec::alewife(),
            ps_per_byte: 22_222,
            router_delay_ps: 40_000,
            eject_delay_ps: 25_000,
        }
    }

    /// Bisection bandwidth in bytes per nanosecond (all channels crossing
    /// the cut, both directions).
    pub fn bisection_bytes_per_ns(&self) -> f64 {
        let channels = self.topo.build().bisection_channels();
        channels as f64 * (1_000.0 / self.ps_per_byte as f64)
    }

    /// Bisection bandwidth in bytes per processor cycle for a given clock.
    pub fn bisection_bytes_per_cycle(&self, clock: commsense_des::Clock) -> f64 {
        self.bisection_bytes_per_ns() * clock.cycle_ps() as f64 / 1_000.0
    }

    /// Canonical field encoding for content-addressed result caching (see
    /// `commsense_des::stable`). Every field that can affect simulated
    /// cycles must appear here under `prefix`.
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        self.topo.stable_encode(enc, &format!("{prefix}.topo"));
        enc.put(&format!("{prefix}.ps_per_byte"), self.ps_per_byte);
        enc.put(&format!("{prefix}.router_delay_ps"), self.router_delay_ps);
        enc.put(&format!("{prefix}.eject_delay_ps"), self.eject_delay_ps);
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::alewife()
    }
}

/// Events the network schedules for itself. The embedding event loop must
/// hand them back to [`Network::handle`] at their due time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A packet's head is at a router and wants its next link.
    TryHop {
        /// In-flight packet index.
        pkt: u32,
    },
    /// A link finished serializing a packet and may start a waiter.
    LinkFree {
        /// Link id.
        link: u32,
    },
    /// A packet's tail reached its destination's ejection port.
    Deliver {
        /// In-flight packet index.
        pkt: u32,
    },
}

/// A packet handed to the embedding machine on arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The packet.
    pub packet: Packet,
    /// When it was injected.
    pub injected_at: Time,
    /// The packet's lifecycle-record id ([`crate::NO_RECORD`] when
    /// recording is off or the record table was full).
    pub record: u32,
}

#[derive(Debug)]
struct InFlight {
    packet: Packet,
    /// Link ids of the full route, materialized once at injection
    /// (`Topo::route_into`) into a buffer recycled through
    /// `Network::route_pool`, so the per-hop hot path is an array read.
    /// Memory is O(in-flight packets x path length), not O(N^2).
    route: Vec<u32>,
    hop: u32,
    injected_at: Time,
    head_ready_at: Time,
    /// Lifecycle-record id ([`crate::NO_RECORD`] when not recorded).
    rec: u32,
}

/// Per-link state with a 2-class priority virtual channel.
///
/// Waiters are kept in two FIFOs by [`Priority`]; when the link frees, the
/// high-priority queue is served first (non-preemptively — a packet already
/// serializing always finishes). With no high-priority traffic this is
/// exactly the original single FIFO, so the baseline protocol variant is
/// byte-identical to the pre-variant network.
#[derive(Debug, Default)]
struct LinkState {
    busy_until: Time,
    /// Low-priority waiters (every packet under the baseline variant).
    waiters: VecDeque<u32>,
    /// High-priority waiters, served before `waiters`.
    hi_waiters: VecDeque<u32>,
}

/// The interconnect network simulator.
///
/// The network is driven by an external event loop: [`Network::inject`] and
/// [`Network::handle`] take a `sched` callback through which the network
/// requests future [`NetEvent`]s; `handle` returns a [`Delivery`] when a
/// packet arrives at its destination. See the crate-level example.
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    topo: Topo,
    links: Vec<LinkState>,
    flights: Vec<Option<InFlight>>,
    free_slots: Vec<u32>,
    /// Retired route buffers, recycled to keep injection allocation-free in
    /// steady state.
    route_pool: Vec<Vec<u32>>,
    /// Per-link bisection membership, precomputed so the per-hop bandwidth
    /// accounting is a mask read instead of topology arithmetic.
    crosses: Box<[bool]>,
    inject_free: Vec<Time>,
    eject_free: Vec<Time>,
    /// Per-link starvation counters: how many queued low-priority packets
    /// were bypassed by a high-priority packet on each link.
    starved: Vec<u64>,
    stats: NetStats,
    /// Optional packet-lifecycle recorder (boxed: the common case is off,
    /// and the network struct stays small). Pure bookkeeping — never
    /// consulted for any time computation.
    recorder: Option<Box<NetRecorder>>,
}

impl Network {
    /// Creates a network.
    pub fn new(cfg: NetConfig) -> Self {
        let topo = cfg.topo.build();
        let links = (0..topo.num_links())
            .map(|_| LinkState::default())
            .collect();
        let n = topo.num_nodes();
        let num_links = topo.num_links();
        let crosses = (0..num_links).map(|l| topo.crosses_bisection(l)).collect();
        Network {
            cfg,
            topo,
            links,
            flights: Vec::new(),
            free_slots: Vec::new(),
            route_pool: Vec::new(),
            crosses,
            inject_free: vec![Time::ZERO; n],
            eject_free: vec![Time::ZERO; n],
            starved: vec![0; num_links],
            stats: NetStats::new(),
            recorder: None,
        }
    }

    /// Turns on packet-lifecycle recording, keeping at most `max_packets`
    /// individual packet records (link busy totals always cover all
    /// traffic). Call before any packet is injected.
    pub fn enable_recording(&mut self, max_packets: usize) {
        self.recorder = Some(Box::new(NetRecorder::new(
            max_packets,
            self.topo.num_links(),
        )));
    }

    /// Detaches and returns the recording, if recording was enabled.
    pub fn take_recording(&mut self) -> Option<NetRecording> {
        self.recorder.take().map(|r| r.into_recording())
    }

    /// The record id assigned to the most recently injected packet
    /// ([`crate::NO_RECORD`] when recording is off or the table was full).
    pub fn last_record_id(&self) -> u32 {
        self.recorder.as_ref().map_or(NO_RECORD, |r| r.last_id())
    }

    /// The packet records accumulated so far, without detaching the
    /// recorder (`None` if recording is off). Record ids index this slice.
    /// Used by the machine's invariant checker to cross-check message
    /// conservation against the recorder's delivery log.
    pub fn peek_recording(&self) -> Option<&[crate::recorder::PacketRecord]> {
        self.recorder.as_ref().map(|r| r.packets())
    }

    /// Number of unidirectional links in the topology.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Packets currently queued waiting for link `id` (both priority
    /// classes).
    pub fn link_queue_len(&self, id: usize) -> usize {
        self.links[id].waiters.len() + self.links[id].hi_waiters.len()
    }

    /// How many queued low-priority packets have been bypassed by
    /// high-priority packets on link `id` so far (the per-link starvation
    /// counter of the priority virtual channel).
    pub fn link_starvation(&self, id: usize) -> u64 {
        self.starved[id]
    }

    /// Cumulative serialization time on link `id` so far (requires
    /// recording; [`Time::ZERO`] otherwise).
    pub fn link_busy(&self, id: usize) -> Time {
        self.recorder
            .as_ref()
            .map_or(Time::ZERO, |r| r.link_busy()[id])
    }

    /// The topology.
    pub fn topo(&self) -> &Topo {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Serialization time for `bytes` on one link.
    pub fn serialize_time(&self, bytes: u32) -> Time {
        Time::from_ps(bytes as u64 * self.cfg.ps_per_byte)
    }

    /// Earliest time node `id`'s network-output port can accept a new
    /// packet. The embedding machine uses this to model processors stalling
    /// on a full network interface ("Memory + NI Wait" in Figure 4).
    pub fn inject_ready_at(&self, node: usize) -> Time {
        self.inject_free[node]
    }

    /// Number of packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.iter().filter(|f| f.is_some()).count()
    }

    /// Marks node `id`'s ejection port busy until `until`; arriving packets
    /// queue behind it. The machine layer uses this to model receive-side
    /// occupancy: message-passing handlers drain the network much more
    /// slowly than the shared-memory CMMU (§5.1).
    pub fn stall_ejection(&mut self, node: usize, until: Time) {
        self.eject_free[node] = self.eject_free[node].max(until);
    }

    /// Injects a packet at `now`, scheduling its progress via `sched`.
    ///
    /// Compute-node sources serialize through the node's injection port; the
    /// packet's first hop begins once the port is free. I/O sources inject
    /// directly (the paper's I/O nodes have their own network ports).
    ///
    /// # Panics
    ///
    /// Panics if source and destination are the same compute node.
    pub fn inject(&mut self, now: Time, packet: Packet, sched: &mut impl FnMut(Time, NetEvent)) {
        let mut route = self.route_pool.pop().unwrap_or_default();
        route.clear();
        self.topo.route_into(packet.src, packet.dst, &mut route);
        self.stats.packets_injected += 1;
        self.stats
            .injected
            .record(packet.class, packet.header_bytes, packet.payload_bytes);

        let ser = self.serialize_time(packet.wire_bytes());
        let head_ready_at = match packet.src {
            Endpoint::Node(n) => {
                let n = n as usize;
                let start = now.max(self.inject_free[n]);
                self.inject_free[n] = start + ser;
                start + Time::from_ps(self.cfg.router_delay_ps)
            }
            _ => now,
        };

        let rec = match &mut self.recorder {
            Some(r) => r.on_inject(&packet, now),
            None => NO_RECORD,
        };
        let flight = InFlight {
            packet,
            route,
            hop: 0,
            injected_at: now,
            head_ready_at,
            rec,
        };
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.flights[slot as usize] = Some(flight);
                slot
            }
            None => {
                self.flights.push(Some(flight));
                (self.flights.len() - 1) as u32
            }
        };
        sched(head_ready_at, NetEvent::TryHop { pkt: id });
    }

    /// Advances the network state machine for one event.
    ///
    /// Returns a [`Delivery`] when a packet's tail arrives at a compute
    /// node. Cross-traffic packets leaving the far mesh edge are absorbed
    /// silently.
    pub fn handle(
        &mut self,
        now: Time,
        ev: NetEvent,
        sched: &mut impl FnMut(Time, NetEvent),
    ) -> Option<Delivery> {
        match ev {
            NetEvent::TryHop { pkt } => {
                self.try_hop(now, pkt, sched);
                None
            }
            NetEvent::LinkFree { link } => {
                let link = link as usize;
                let state = &mut self.links[link];
                let next = match state.hi_waiters.pop_front() {
                    Some(pkt) => {
                        // A high-priority packet jumps every queued
                        // low-priority packet: count the bypasses.
                        let bypassed = state.waiters.len() as u64;
                        if bypassed > 0 {
                            self.starved[link] += bypassed;
                            self.stats.priority_bypasses += 1;
                            self.stats.low_bypassed += bypassed;
                        }
                        Some(pkt)
                    }
                    None => state.waiters.pop_front(),
                };
                if let Some(pkt) = next {
                    let flight = self.flights[pkt as usize].as_ref().expect("waiter exists");
                    let waited = now.saturating_sub(flight.head_ready_at);
                    self.stats.link_wait_sum += waited;
                    self.start_hop(now, pkt, sched);
                }
                None
            }
            NetEvent::Deliver { pkt } => self.deliver(now, pkt),
        }
    }

    fn try_hop(&mut self, now: Time, pkt: u32, sched: &mut impl FnMut(Time, NetEvent)) {
        let flight = self.flights[pkt as usize].as_ref().expect("flight exists");
        assert!(
            (flight.hop as usize) < flight.route.len(),
            "try_hop past end of route (zero-hop routes cannot occur: \
             local traffic never injects)"
        );
        let link = flight.route[flight.hop as usize] as usize;
        if self.links[link].busy_until > now {
            match flight.packet.priority {
                Priority::High => self.links[link].hi_waiters.push_back(pkt),
                Priority::Low => self.links[link].waiters.push_back(pkt),
            }
        } else {
            self.start_hop(now, pkt, sched);
        }
    }

    fn start_hop(&mut self, now: Time, pkt: u32, sched: &mut impl FnMut(Time, NetEvent)) {
        let cfg_router = Time::from_ps(self.cfg.router_delay_ps);
        let (link, ser, last, class, hdr, pay, rec, enqueued) = {
            let flight = self.flights[pkt as usize].as_ref().expect("flight exists");
            let link = flight.route[flight.hop as usize] as usize;
            let ser = self.serialize_time(flight.packet.wire_bytes());
            let last = flight.hop as usize + 1 == flight.route.len();
            (
                link,
                ser,
                last,
                flight.packet.class,
                flight.packet.header_bytes,
                flight.packet.payload_bytes,
                flight.rec,
                // At this point `head_ready_at` still holds the time the
                // head reached this router and requested the link: the gap
                // to `now` is time spent queued behind other traffic.
                flight.head_ready_at,
            )
        };

        if let Some(r) = &mut self.recorder {
            r.on_hop(rec, link, enqueued, now, now + ser);
        }
        self.links[link].busy_until = now + ser;
        sched(now + ser, NetEvent::LinkFree { link: link as u32 });
        if self.crosses[link] {
            self.stats.bisection.record(class, hdr, pay);
        }

        let flight = self.flights[pkt as usize].as_mut().expect("flight exists");
        flight.hop += 1;
        flight.head_ready_at = now + cfg_router;
        if last {
            // Tail arrives after head latency + serialization of the body.
            let tail = now + cfg_router + ser;
            match flight.packet.dst {
                Endpoint::Node(n) => {
                    let n = n as usize;
                    let at = tail.max(self.eject_free[n]);
                    self.eject_free[n] = at + Time::from_ps(self.cfg.eject_delay_ps);
                    sched(at, NetEvent::Deliver { pkt });
                }
                // Cross-traffic exits off the mesh edge: absorb.
                _ => sched(tail, NetEvent::Deliver { pkt }),
            }
        } else {
            sched(flight.head_ready_at, NetEvent::TryHop { pkt });
        }
    }

    fn deliver(&mut self, now: Time, pkt: u32) -> Option<Delivery> {
        let mut flight = self.flights[pkt as usize].take().expect("flight exists");
        self.free_slots.push(pkt);
        self.route_pool.push(std::mem::take(&mut flight.route));
        self.stats
            .record_delivery(now.saturating_sub(flight.injected_at));
        if let Some(r) = &mut self.recorder {
            r.on_deliver(flight.rec, now);
        }
        match flight.packet.dst {
            Endpoint::Node(_) => Some(Delivery {
                packet: flight.packet,
                injected_at: flight.injected_at,
                record: flight.rec,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketClass;
    use commsense_des::{Clock, EventQueue};

    /// Drives the network to quiescence, returning deliveries with times.
    fn drain(net: &mut Network, mut q: EventQueue<NetEvent>) -> Vec<(Time, Delivery)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            let mut sched = Vec::new();
            if let Some(d) = net.handle(t, ev, &mut |t2, e2| sched.push((t2, e2))) {
                out.push((t, d));
            }
            for (t2, e2) in sched {
                q.schedule(t2, e2);
            }
        }
        out
    }

    fn inject(net: &mut Network, q: &mut EventQueue<NetEvent>, now: Time, pkt: Packet) {
        let mut sched = Vec::new();
        net.inject(now, pkt, &mut |t, e| sched.push((t, e)));
        for (t, e) in sched {
            q.schedule(t, e);
        }
    }

    #[test]
    fn alewife_24_byte_packet_is_about_15_cycles() {
        let mut net = Network::new(NetConfig::alewife());
        let mut q = EventQueue::new();
        // Average-distance pair: 4 hops.
        let src = 0;
        let dst = 4; // (4,0): 4 hops
        inject(
            &mut net,
            &mut q,
            Time::ZERO,
            Packet::protocol(
                Endpoint::node(src),
                Endpoint::node(dst),
                24,
                PacketClass::Data,
                0,
            ),
        );
        let out = drain(&mut net, q);
        assert_eq!(out.len(), 1);
        let cycles = Clock::from_mhz(20.0).cycles_at_f64(out[0].0);
        assert!(
            (12.0..20.0).contains(&cycles),
            "one-way 24B = {cycles} cycles"
        );
    }

    #[test]
    fn bisection_bandwidth_calibration() {
        let cfg = NetConfig::alewife();
        let bpc = cfg.bisection_bytes_per_cycle(Clock::from_mhz(20.0));
        assert!((bpc - 18.0).abs() < 0.1, "bisection {bpc} bytes/cycle");
    }

    #[test]
    fn latency_grows_with_distance() {
        let cfg = NetConfig::alewife();
        let mut t_near = Time::ZERO;
        let mut t_far = Time::ZERO;
        for (dst, out_t) in [(1usize, &mut t_near), (31usize, &mut t_far)] {
            let mut net = Network::new(cfg.clone());
            let mut q = EventQueue::new();
            inject(
                &mut net,
                &mut q,
                Time::ZERO,
                Packet::protocol(
                    Endpoint::node(0),
                    Endpoint::node(dst),
                    24,
                    PacketClass::Data,
                    0,
                ),
            );
            let out = drain(&mut net, q);
            *out_t = out[0].0;
        }
        assert!(t_far > t_near);
    }

    #[test]
    fn contention_serializes_same_link() {
        // Two packets from node 0 to node 1 share the injection port and the
        // single east link: the second must arrive at least one
        // serialization time after the first.
        let mut net = Network::new(NetConfig::alewife());
        let mut q = EventQueue::new();
        for tag in 0..2 {
            inject(
                &mut net,
                &mut q,
                Time::ZERO,
                Packet::protocol(
                    Endpoint::node(0),
                    Endpoint::node(1),
                    104,
                    PacketClass::Data,
                    tag,
                ),
            );
        }
        let out = drain(&mut net, q);
        assert_eq!(out.len(), 2);
        let ser = net.serialize_time(104);
        assert!(
            out[1].0.saturating_sub(out[0].0) >= ser,
            "second packet {} should trail first {} by >= {}",
            out[1].0,
            out[0].0,
            ser
        );
    }

    #[test]
    fn cross_traffic_loads_bisection_but_is_not_app_volume() {
        let mut net = Network::new(NetConfig::alewife());
        let mut q = EventQueue::new();
        inject(
            &mut net,
            &mut q,
            Time::ZERO,
            Packet::cross_traffic(Endpoint::IoWest(0), Endpoint::IoEast(0), 64),
        );
        let out = drain(&mut net, q);
        assert!(out.is_empty(), "cross traffic exits off-edge, no delivery");
        assert_eq!(net.stats().bisection.cross_traffic, 64);
        assert_eq!(net.stats().bisection.app_total(), 0);
        assert_eq!(net.stats().packets_delivered, 1);
    }

    #[test]
    fn cross_traffic_slows_app_traffic_on_shared_row() {
        // App packet 0 -> 7 shares row 0 with west->east cross traffic.
        let run = |n_cross: usize| {
            let mut net = Network::new(NetConfig::alewife());
            let mut q = EventQueue::new();
            for _ in 0..n_cross {
                inject(
                    &mut net,
                    &mut q,
                    Time::ZERO,
                    Packet::cross_traffic(Endpoint::IoWest(0), Endpoint::IoEast(0), 512),
                );
            }
            inject(
                &mut net,
                &mut q,
                Time::from_ns(1),
                Packet::protocol(
                    Endpoint::node(0),
                    Endpoint::node(7),
                    24,
                    PacketClass::Data,
                    9,
                ),
            );
            let out = drain(&mut net, q);
            out.iter()
                .find(|(_, d)| d.packet.tag == 9)
                .expect("app packet arrives")
                .0
        };
        assert!(run(8) > run(0), "cross traffic must delay the app packet");
    }

    #[test]
    fn injection_port_backpressure_visible() {
        let mut net = Network::new(NetConfig::alewife());
        let mut sink = |_t: Time, _e: NetEvent| {};
        assert_eq!(net.inject_ready_at(0), Time::ZERO);
        net.inject(
            Time::ZERO,
            Packet::protocol(
                Endpoint::node(0),
                Endpoint::node(1),
                104,
                PacketClass::Data,
                0,
            ),
            &mut sink,
        );
        assert!(net.inject_ready_at(0) > Time::ZERO);
    }

    #[test]
    fn ejection_stall_delays_delivery() {
        let run = |stall: Option<Time>| {
            let mut net = Network::new(NetConfig::alewife());
            if let Some(until) = stall {
                net.stall_ejection(1, until);
            }
            let mut q = EventQueue::new();
            inject(
                &mut net,
                &mut q,
                Time::ZERO,
                Packet::protocol(
                    Endpoint::node(0),
                    Endpoint::node(1),
                    24,
                    PacketClass::Data,
                    0,
                ),
            );
            drain(&mut net, q)[0].0
        };
        let base = run(None);
        let stalled = run(Some(Time::from_us(100)));
        assert_eq!(stalled, Time::from_us(100));
        assert!(base < stalled);
    }

    #[test]
    fn volume_accounting_per_injection() {
        let mut net = Network::new(NetConfig::alewife());
        let mut q = EventQueue::new();
        inject(
            &mut net,
            &mut q,
            Time::ZERO,
            Packet::protocol(
                Endpoint::node(0),
                Endpoint::node(31),
                24,
                PacketClass::Data,
                0,
            ),
        );
        inject(
            &mut net,
            &mut q,
            Time::ZERO,
            Packet::protocol(
                Endpoint::node(5),
                Endpoint::node(6),
                8,
                PacketClass::Request,
                1,
            ),
        );
        let _ = drain(&mut net, q);
        let v = net.stats().injected;
        assert_eq!(v.headers, 8);
        assert_eq!(v.data, 16);
        assert_eq!(v.requests, 8);
        assert_eq!(v.app_total(), 32);
    }

    #[test]
    fn flight_slots_are_recycled() {
        let mut net = Network::new(NetConfig::alewife());
        for round in 0..3 {
            let mut q = EventQueue::new();
            // EventQueue forbids scheduling into the past, so use fresh
            // queues with monotonically increasing injection times.
            let t0 = Time::from_us(round * 10);
            inject(
                &mut net,
                &mut q,
                t0,
                Packet::protocol(
                    Endpoint::node(0),
                    Endpoint::node(3),
                    24,
                    PacketClass::Data,
                    round,
                ),
            );
            let out = drain(&mut net, q);
            assert_eq!(out.len(), 1);
        }
        assert_eq!(net.flights.iter().filter(|f| f.is_some()).count(), 0);
        assert!(net.flights.len() <= 2, "slots must be reused");
    }

    #[test]
    fn all_topologies_deliver_and_load_bisection() {
        for topo in [
            crate::TopoSpec::torus(8, 4),
            crate::TopoSpec::fat_tree(2, 5),
            crate::TopoSpec::dragonfly(8, 4),
        ] {
            let cfg = NetConfig {
                topo,
                ..NetConfig::alewife()
            };
            let mut net = Network::new(cfg);
            let mut q = EventQueue::new();
            let n = net.topo().num_nodes();
            inject(
                &mut net,
                &mut q,
                Time::ZERO,
                Packet::protocol(
                    Endpoint::node(0),
                    Endpoint::node(n - 1),
                    24,
                    PacketClass::Data,
                    0,
                ),
            );
            inject(
                &mut net,
                &mut q,
                Time::ZERO,
                Packet::cross_traffic(Endpoint::IoWest(0), Endpoint::IoEast(0), 64),
            );
            let out = drain(&mut net, q);
            assert_eq!(out.len(), 1, "{}: app packet delivered", net.topo().kind());
            assert_eq!(net.stats().packets_delivered, 2);
            assert_eq!(
                net.stats().bisection.cross_traffic,
                64,
                "{}: cross traffic crosses the cut exactly once",
                net.topo().kind()
            );
            assert!(net.stats().bisection.app_total() > 0);
        }
    }

    #[test]
    fn thousand_node_torus_delivers() {
        // Satellite index-audit regression: 1024 nodes, 4096 links, routes
        // well outside the 32-node id space.
        let cfg = NetConfig {
            topo: crate::TopoSpec::torus(32, 32),
            ..NetConfig::alewife()
        };
        let mut net = Network::new(cfg);
        assert_eq!(net.num_links(), 4096);
        let mut q = EventQueue::new();
        for (tag, (src, dst)) in [(0usize, 1023usize), (1023, 0), (500, 777)]
            .into_iter()
            .enumerate()
        {
            inject(
                &mut net,
                &mut q,
                Time::ZERO,
                Packet::protocol(
                    Endpoint::node(src),
                    Endpoint::node(dst),
                    24,
                    PacketClass::Data,
                    tag as u64,
                ),
            );
        }
        let out = drain(&mut net, q);
        assert_eq!(out.len(), 3);
        assert_eq!(net.in_flight(), 0);
    }
}
