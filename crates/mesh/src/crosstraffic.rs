//! Cross-traffic generation for the bisection-bandwidth emulation (§5.2).

use commsense_des::Time;

use crate::packet::{Endpoint, Packet};

/// Configuration of the background cross-traffic streams.
///
/// The paper attaches 4 I/O nodes to each vertical edge of the 8×4 mesh;
/// each sends fixed-size messages across the mesh and off the opposite edge,
/// consuming bisection bandwidth in both directions. The *emulated* bisection
/// of the machine is the real bisection minus the cross-traffic rate. Other
/// topologies define their own bisection-loading stream paths; the stream
/// count comes from `Topology::io_streams`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTrafficConfig {
    /// Cross-traffic message size in bytes (the paper settles on 64 after
    /// the Figure 7 sensitivity study).
    pub message_bytes: u32,
    /// Aggregate cross-traffic rate across the bisection, in bytes per
    /// nanosecond (summed over both directions and all streams).
    pub bytes_per_ns: f64,
    /// Number of stream pairs (each contributes one stream per direction);
    /// the topology's `io_streams` — mesh rows on the Alewife machine.
    pub streams: u16,
}

impl CrossTrafficConfig {
    /// Creates a config that reduces an emulated machine's bisection by
    /// `consumed_bytes_per_cycle` at the given processor clock.
    pub fn consuming(
        consumed_bytes_per_cycle: f64,
        clock: commsense_des::Clock,
        message_bytes: u32,
        streams: u16,
    ) -> Self {
        let bytes_per_ns = consumed_bytes_per_cycle * 1_000.0 / clock.cycle_ps() as f64;
        CrossTrafficConfig {
            message_bytes,
            bytes_per_ns,
            streams,
        }
    }

    /// Per-stream injection interval. There are `2 * streams` streams.
    ///
    /// Returns `None` when the rate is zero (cross-traffic disabled).
    pub fn interval(&self) -> Option<Time> {
        if self.bytes_per_ns <= 0.0 {
            return None;
        }
        let streams = (2 * self.streams) as f64;
        let per_stream_bytes_per_ns = self.bytes_per_ns / streams;
        let interval_ps = self.message_bytes as f64 / per_stream_bytes_per_ns * 1_000.0;
        Some(Time::from_ps(interval_ps.round() as u64))
    }

    /// Canonical field encoding for content-addressed result caching (see
    /// `commsense_des::stable`).
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        enc.put(&format!("{prefix}.message_bytes"), self.message_bytes);
        enc.put_f64(&format!("{prefix}.bytes_per_ns"), self.bytes_per_ns);
        enc.put(&format!("{prefix}.streams"), self.streams);
    }
}

/// Periodic cross-traffic injector.
///
/// Each tick emits one message per stream (west→east and east→west for each
/// stream pair). The embedding machine schedules ticks at
/// [`CrossTraffic::interval`].
///
/// # Examples
///
/// ```
/// use commsense_des::Clock;
/// use commsense_mesh::{CrossTraffic, CrossTrafficConfig};
///
/// // Consume 8 of Alewife's 18 bytes/cycle of bisection.
/// let cfg = CrossTrafficConfig::consuming(8.0, Clock::from_mhz(20.0), 64, 4);
/// let ct = CrossTraffic::new(cfg);
/// let pkts: Vec<_> = ct.tick_packets().collect();
/// assert_eq!(pkts.len(), 8); // 4 stream pairs x 2 directions
/// ```
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    cfg: CrossTrafficConfig,
}

impl CrossTraffic {
    /// Creates an injector.
    pub fn new(cfg: CrossTrafficConfig) -> Self {
        CrossTraffic { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &CrossTrafficConfig {
        &self.cfg
    }

    /// Injection interval between ticks, or `None` if disabled.
    pub fn interval(&self) -> Option<Time> {
        self.cfg.interval()
    }

    /// The packets to inject at each tick: one per stream.
    pub fn tick_packets(&self) -> impl Iterator<Item = Packet> + '_ {
        let bytes = self.cfg.message_bytes;
        (0..self.cfg.streams).flat_map(move |s| {
            [
                Packet::cross_traffic(Endpoint::IoWest(s), Endpoint::IoEast(s), bytes),
                Packet::cross_traffic(Endpoint::IoEast(s), Endpoint::IoWest(s), bytes),
            ]
        })
    }

    /// Bytes injected per tick across all streams.
    pub fn bytes_per_tick(&self) -> u64 {
        2 * self.cfg.streams as u64 * self.cfg.message_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsense_des::Clock;

    #[test]
    fn interval_matches_requested_rate() {
        let clock = Clock::from_mhz(20.0);
        let cfg = CrossTrafficConfig::consuming(8.0, clock, 64, 4);
        // 8 bytes/cycle = 0.16 bytes/ns aggregate; per stream 0.02 bytes/ns;
        // 64-byte messages -> 3200ns interval.
        let iv = cfg.interval().expect("enabled");
        assert_eq!(iv, Time::from_ns(3_200));
        // Rate check: bytes_per_tick / interval == aggregate rate.
        let ct = CrossTraffic::new(cfg);
        let rate = ct.bytes_per_tick() as f64 / iv.as_ns() as f64;
        assert!((rate - 0.16).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_disables() {
        let cfg = CrossTrafficConfig::consuming(0.0, Clock::from_mhz(20.0), 64, 4);
        assert_eq!(cfg.interval(), None);
    }

    #[test]
    fn smaller_messages_make_finer_streams() {
        let clock = Clock::from_mhz(20.0);
        let small = CrossTrafficConfig::consuming(8.0, clock, 16, 4)
            .interval()
            .unwrap();
        let large = CrossTrafficConfig::consuming(8.0, clock, 512, 4)
            .interval()
            .unwrap();
        assert!(small < large);
    }

    #[test]
    fn tick_covers_every_stream_both_directions() {
        let cfg = CrossTrafficConfig::consuming(4.0, Clock::from_mhz(20.0), 64, 4);
        let ct = CrossTraffic::new(cfg);
        let pkts: Vec<_> = ct.tick_packets().collect();
        assert_eq!(pkts.len(), 8);
        for s in 0..4 {
            assert!(pkts.iter().any(|p| p.src == Endpoint::IoWest(s)));
            assert!(pkts.iter().any(|p| p.src == Endpoint::IoEast(s)));
        }
    }
}
