//! Cross-traffic generation for the bisection-bandwidth emulation (§5.2)
//! and the adversarial traffic patterns layered on top of it.

use commsense_des::{Rng, Time};

use crate::packet::{Endpoint, Packet};

/// Spatial/temporal shape of the background cross-traffic.
///
/// [`TrafficPattern::Uniform`] is the paper's §5.2 bisection emulation:
/// fixed-rate streams crossing the cut in both directions. The hostile
/// patterns reuse the same aggregate injection rate (the generators conserve
/// the configured rate to within one message over any long window) but
/// reshape where and when it lands:
///
/// * `Hotspot` redirects a fraction of the stream slots at one victim
///   compute node, loading its ejection port and the links around it.
/// * `Bursty` gates the uniform streams through a deterministic on/off duty
///   cycle; the off-phase backlog drains at burst start, so the average
///   rate is conserved exactly and the duty cycle tiles time with no drift.
/// * `Incast` aims every message at a small set of victim nodes from
///   pseudo-random sources — the many-to-few collapse pattern.
///
/// All generators are deterministic functions of the config (including
/// `seed`), so replay is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrafficPattern {
    /// The §5.2 bisection streams (the default; byte-identical to the
    /// pre-pattern generator).
    #[default]
    Uniform,
    /// Redirect `fraction` of the traffic at compute node `node`.
    Hotspot {
        /// Victim compute node.
        node: u16,
        /// Fraction of message slots redirected (0.0..=1.0), honored
        /// exactly via an error-diffusion accumulator.
        fraction: f64,
    },
    /// Deterministic on/off duty cycle over the uniform streams.
    Bursty {
        /// Ticks per period spent bursting.
        on: u32,
        /// Ticks per period spent silent.
        off: u32,
    },
    /// Every message targets one of the first `targets` compute nodes.
    Incast {
        /// Number of victim nodes (node ids `0..targets`).
        targets: u16,
    },
}

impl TrafficPattern {
    /// Short label used in sweep tables and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Bursty { .. } => "bursty",
            TrafficPattern::Incast { .. } => "incast",
        }
    }
}

/// Configuration of the background cross-traffic streams.
///
/// The paper attaches 4 I/O nodes to each vertical edge of the 8×4 mesh;
/// each sends fixed-size messages across the mesh and off the opposite edge,
/// consuming bisection bandwidth in both directions. The *emulated* bisection
/// of the machine is the real bisection minus the cross-traffic rate. Other
/// topologies define their own bisection-loading stream paths; the stream
/// count comes from `Topology::io_streams`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTrafficConfig {
    /// Cross-traffic message size in bytes (the paper settles on 64 after
    /// the Figure 7 sensitivity study).
    pub message_bytes: u32,
    /// Aggregate cross-traffic rate across the bisection, in bytes per
    /// nanosecond (summed over both directions and all streams).
    pub bytes_per_ns: f64,
    /// Number of stream pairs (each contributes one stream per direction);
    /// the topology's `io_streams` — mesh rows on the Alewife machine.
    pub streams: u16,
    /// Spatial/temporal traffic shape (defaults to the uniform §5.2
    /// streams).
    pub pattern: TrafficPattern,
    /// Compute-node count, needed by the hostile patterns to pick sources
    /// and victims (ignored — and canonically not encoded — under
    /// [`TrafficPattern::Uniform`]).
    pub nodes: u16,
    /// Seed for the deterministic source-picking RNG of the hostile
    /// patterns (ignored under [`TrafficPattern::Uniform`]).
    pub seed: u64,
}

impl CrossTrafficConfig {
    /// Creates a config that reduces an emulated machine's bisection by
    /// `consumed_bytes_per_cycle` at the given processor clock.
    pub fn consuming(
        consumed_bytes_per_cycle: f64,
        clock: commsense_des::Clock,
        message_bytes: u32,
        streams: u16,
    ) -> Self {
        let bytes_per_ns = consumed_bytes_per_cycle * 1_000.0 / clock.cycle_ps() as f64;
        CrossTrafficConfig {
            message_bytes,
            bytes_per_ns,
            streams,
            pattern: TrafficPattern::Uniform,
            nodes: 0,
            seed: 0,
        }
    }

    /// Reshapes the config into a hostile traffic pattern at the same
    /// aggregate rate. `nodes` is the machine's compute-node count and
    /// `seed` drives the deterministic source-picking RNG.
    pub fn with_pattern(mut self, pattern: TrafficPattern, nodes: u16, seed: u64) -> Self {
        self.pattern = pattern;
        self.nodes = nodes;
        self.seed = seed;
        self
    }

    /// Per-stream injection interval. There are `2 * streams` streams.
    ///
    /// Returns `None` when the rate is zero (cross-traffic disabled).
    pub fn interval(&self) -> Option<Time> {
        if self.bytes_per_ns <= 0.0 {
            return None;
        }
        let streams = (2 * self.streams) as f64;
        let per_stream_bytes_per_ns = self.bytes_per_ns / streams;
        let interval_ps = self.message_bytes as f64 / per_stream_bytes_per_ns * 1_000.0;
        Some(Time::from_ps(interval_ps.round() as u64))
    }

    /// Canonical field encoding for content-addressed result caching (see
    /// `commsense_des::stable`). The pattern fields are encoded only when a
    /// non-uniform pattern is configured, so every pre-existing uniform
    /// config keeps its store key.
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        enc.put(&format!("{prefix}.message_bytes"), self.message_bytes);
        enc.put_f64(&format!("{prefix}.bytes_per_ns"), self.bytes_per_ns);
        enc.put(&format!("{prefix}.streams"), self.streams);
        match self.pattern {
            TrafficPattern::Uniform => {}
            TrafficPattern::Hotspot { node, fraction } => {
                enc.put(&format!("{prefix}.pattern"), "hotspot");
                enc.put(&format!("{prefix}.hotspot_node"), node);
                enc.put_f64(&format!("{prefix}.hotspot_fraction"), fraction);
                self.encode_pattern_common(enc, prefix);
            }
            TrafficPattern::Bursty { on, off } => {
                enc.put(&format!("{prefix}.pattern"), "bursty");
                enc.put(&format!("{prefix}.bursty_on"), on);
                enc.put(&format!("{prefix}.bursty_off"), off);
                self.encode_pattern_common(enc, prefix);
            }
            TrafficPattern::Incast { targets } => {
                enc.put(&format!("{prefix}.pattern"), "incast");
                enc.put(&format!("{prefix}.incast_targets"), targets);
                self.encode_pattern_common(enc, prefix);
            }
        }
    }

    fn encode_pattern_common(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        enc.put(&format!("{prefix}.nodes"), self.nodes);
        enc.put(&format!("{prefix}.seed"), self.seed);
    }
}

/// Periodic cross-traffic injector.
///
/// Each tick emits one message per stream (west→east and east→west for each
/// stream pair). The embedding machine schedules ticks at
/// [`CrossTraffic::interval`].
///
/// # Examples
///
/// ```
/// use commsense_des::Clock;
/// use commsense_mesh::{CrossTraffic, CrossTrafficConfig};
///
/// // Consume 8 of Alewife's 18 bytes/cycle of bisection.
/// let cfg = CrossTrafficConfig::consuming(8.0, Clock::from_mhz(20.0), 64, 4);
/// let ct = CrossTraffic::new(cfg);
/// let pkts: Vec<_> = ct.tick_packets().collect();
/// assert_eq!(pkts.len(), 8); // 4 stream pairs x 2 directions
/// ```
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    cfg: CrossTrafficConfig,
    /// Tick counter (drives the bursty phase).
    tick: u64,
    /// Bursty backlog, in whole messages owed but not yet emitted.
    owed: u64,
    /// Hotspot error-diffusion accumulator: `fraction` accrues per slot and
    /// a slot is redirected exactly when it reaches 1.0.
    hot_acc: f64,
    /// Round-robin cursor over the `2 * streams` uniform slots (bursty
    /// drain order) and over incast victims.
    cursor: u64,
    /// Deterministic source picker for the hostile patterns.
    rng: Rng,
}

impl CrossTraffic {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if a hostile pattern is configured with an inconsistent node
    /// count (hotspot victim out of range, or incast with no non-victim
    /// source nodes).
    pub fn new(cfg: CrossTrafficConfig) -> Self {
        match cfg.pattern {
            TrafficPattern::Uniform => {}
            TrafficPattern::Hotspot { node, fraction } => {
                assert!(
                    node < cfg.nodes,
                    "hotspot node {node} out of range (nodes {})",
                    cfg.nodes
                );
                assert!(cfg.nodes >= 2, "hotspot needs at least 2 nodes");
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "hotspot fraction {fraction} outside 0..=1"
                );
            }
            TrafficPattern::Bursty { on, off } => {
                assert!(on > 0, "bursty duty cycle needs on > 0");
                let _ = off;
            }
            TrafficPattern::Incast { targets } => {
                assert!(targets > 0, "incast needs at least one target");
                assert!(
                    targets < cfg.nodes,
                    "incast targets {targets} leave no source nodes (nodes {})",
                    cfg.nodes
                );
            }
        }
        let rng = Rng::new(cfg.seed ^ 0xC805_5E77_7261_FF1C);
        CrossTraffic {
            cfg,
            tick: 0,
            owed: 0,
            hot_acc: 0.0,
            cursor: 0,
            rng,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CrossTrafficConfig {
        &self.cfg
    }

    /// Injection interval between ticks, or `None` if disabled.
    pub fn interval(&self) -> Option<Time> {
        self.cfg.interval()
    }

    /// The uniform packets injected at each tick: one per stream, west→east
    /// then east→west per stream pair. This is the pattern-free §5.2
    /// generator; the pattern-aware entry point is
    /// [`CrossTraffic::tick_packets_into`].
    pub fn tick_packets(&self) -> impl Iterator<Item = Packet> + '_ {
        let bytes = self.cfg.message_bytes;
        (0..self.cfg.streams).flat_map(move |s| {
            [
                Packet::cross_traffic(Endpoint::IoWest(s), Endpoint::IoEast(s), bytes),
                Packet::cross_traffic(Endpoint::IoEast(s), Endpoint::IoWest(s), bytes),
            ]
        })
    }

    /// The uniform packet of slot index `slot` (of `2 * streams` per tick):
    /// stream `slot / 2`, west→east for even slots.
    fn uniform_slot(&self, slot: u64) -> Packet {
        let bytes = self.cfg.message_bytes;
        let s = (slot / 2) as u16;
        if slot.is_multiple_of(2) {
            Packet::cross_traffic(Endpoint::IoWest(s), Endpoint::IoEast(s), bytes)
        } else {
            Packet::cross_traffic(Endpoint::IoEast(s), Endpoint::IoWest(s), bytes)
        }
    }

    /// A deterministic pseudo-random source node, excluding `not` when
    /// `not < nodes` (so a victim never sends to itself).
    fn pick_source(&mut self, lo: u16, not: u16) -> u16 {
        let nodes = self.cfg.nodes;
        debug_assert!(lo < nodes);
        if not >= lo && not < nodes {
            let span = (nodes - lo - 1) as usize;
            let mut src = lo + self.rng.index(span.max(1)) as u16;
            if src >= not {
                src += 1;
            }
            src
        } else {
            lo + self.rng.index((nodes - lo) as usize) as u16
        }
    }

    /// Appends this tick's packets to `out` and advances the generator
    /// state. Under [`TrafficPattern::Uniform`] the emitted sequence is
    /// byte-identical to [`CrossTraffic::tick_packets`]; the hostile
    /// patterns conserve the same aggregate rate (exactly per tick for
    /// hotspot/incast, exactly per duty period for bursty).
    pub fn tick_packets_into(&mut self, out: &mut Vec<Packet>) {
        let slots = 2 * self.cfg.streams as u64;
        match self.cfg.pattern {
            TrafficPattern::Uniform => {
                for slot in 0..slots {
                    out.push(self.uniform_slot(slot));
                }
            }
            TrafficPattern::Hotspot { node, fraction } => {
                let bytes = self.cfg.message_bytes;
                for slot in 0..slots {
                    self.hot_acc += fraction;
                    if self.hot_acc >= 1.0 {
                        self.hot_acc -= 1.0;
                        let src = self.pick_source(0, node);
                        out.push(Packet::cross_traffic(
                            Endpoint::Node(src),
                            Endpoint::Node(node),
                            bytes,
                        ));
                    } else {
                        out.push(self.uniform_slot(slot));
                    }
                }
            }
            TrafficPattern::Bursty { on, off } => {
                let period = on as u64 + off as u64;
                let phase = self.tick % period;
                self.owed += slots;
                if phase < on as u64 {
                    while self.owed > 0 {
                        let pkt = self.uniform_slot(self.cursor % slots);
                        self.cursor += 1;
                        self.owed -= 1;
                        out.push(pkt);
                    }
                }
            }
            TrafficPattern::Incast { targets } => {
                let bytes = self.cfg.message_bytes;
                for _ in 0..slots {
                    let dst = (self.cursor % targets as u64) as u16;
                    self.cursor += 1;
                    let src = self.pick_source(targets, dst);
                    out.push(Packet::cross_traffic(
                        Endpoint::Node(src),
                        Endpoint::Node(dst),
                        bytes,
                    ));
                }
            }
        }
        self.tick += 1;
    }

    /// Bytes injected per tick across all streams (the long-run average for
    /// bursty traffic).
    pub fn bytes_per_tick(&self) -> u64 {
        2 * self.cfg.streams as u64 * self.cfg.message_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsense_des::Clock;

    #[test]
    fn interval_matches_requested_rate() {
        let clock = Clock::from_mhz(20.0);
        let cfg = CrossTrafficConfig::consuming(8.0, clock, 64, 4);
        // 8 bytes/cycle = 0.16 bytes/ns aggregate; per stream 0.02 bytes/ns;
        // 64-byte messages -> 3200ns interval.
        let iv = cfg.interval().expect("enabled");
        assert_eq!(iv, Time::from_ns(3_200));
        // Rate check: bytes_per_tick / interval == aggregate rate.
        let ct = CrossTraffic::new(cfg);
        let rate = ct.bytes_per_tick() as f64 / iv.as_ns() as f64;
        assert!((rate - 0.16).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_disables() {
        let cfg = CrossTrafficConfig::consuming(0.0, Clock::from_mhz(20.0), 64, 4);
        assert_eq!(cfg.interval(), None);
    }

    #[test]
    fn smaller_messages_make_finer_streams() {
        let clock = Clock::from_mhz(20.0);
        let small = CrossTrafficConfig::consuming(8.0, clock, 16, 4)
            .interval()
            .unwrap();
        let large = CrossTrafficConfig::consuming(8.0, clock, 512, 4)
            .interval()
            .unwrap();
        assert!(small < large);
    }

    #[test]
    fn tick_covers_every_stream_both_directions() {
        let cfg = CrossTrafficConfig::consuming(4.0, Clock::from_mhz(20.0), 64, 4);
        let ct = CrossTraffic::new(cfg);
        let pkts: Vec<_> = ct.tick_packets().collect();
        assert_eq!(pkts.len(), 8);
        for s in 0..4 {
            assert!(pkts.iter().any(|p| p.src == Endpoint::IoWest(s)));
            assert!(pkts.iter().any(|p| p.src == Endpoint::IoEast(s)));
        }
    }
}
