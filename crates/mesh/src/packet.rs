//! Packets and the volume taxonomy of Figure 5.

/// A network endpoint: a compute node or an I/O cross-traffic port.
///
/// The Alewife machine attaches I/O nodes in columns at either side of the
/// mesh; the paper's bisection-emulation experiment (§5.2) uses them to send
/// traffic across the bisection in both directions. Other topologies map the
/// stream index `.0` onto their own bisection-loading paths — see
/// `Topology::io_streams`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Compute node by id.
    Node(u16),
    /// I/O port on the "west" side of the bisection cut, stream `.0`.
    IoWest(u16),
    /// I/O port on the "east" side of the bisection cut, stream `.0`.
    IoEast(u16),
}

impl Endpoint {
    /// The largest machine an `Endpoint` can address: node ids are `u16`.
    pub const MAX_NODES: usize = 1 << 16;

    /// Convenience constructor for a compute-node endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not fit the `u16` node-id space (at or above
    /// [`Endpoint::MAX_NODES`]).
    pub fn node(id: usize) -> Self {
        assert!(
            id < Self::MAX_NODES,
            "node id {id} does not fit the u16 endpoint space (max {})",
            Self::MAX_NODES - 1
        );
        Endpoint::Node(id as u16)
    }
}

/// Classification of packet bytes for the communication-volume breakdown
/// (Figure 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Coherence-protocol invalidations and their acknowledgements.
    Invalidate,
    /// Read / write / modify requests (no data payload).
    Request,
    /// Message headers accompanying data transfers. Packets carrying data
    /// account their header bytes here and their payload under
    /// [`PacketClass::Data`].
    Header,
    /// Data payload: message-passing payload or shared-memory cache lines.
    Data,
    /// Background cross-traffic from I/O nodes (not part of the application
    /// volume breakdown).
    CrossTraffic,
}

impl PacketClass {
    /// All application-volume classes, in Figure 5's stacking order.
    pub const APP_CLASSES: [PacketClass; 4] = [
        PacketClass::Invalidate,
        PacketClass::Request,
        PacketClass::Header,
        PacketClass::Data,
    ];
}

/// Virtual-channel priority class of a packet.
///
/// The criticality-aware protocol variant tags demand-path traffic
/// [`Priority::High`]; everything else (prefetches, posted writes,
/// cross-traffic) rides [`Priority::Low`]. At each link the network serves
/// queued high-priority packets before queued low-priority ones
/// (non-preemptively: a packet already on the wire always finishes), so a
/// high-priority packet waits behind at most the single packet in service —
/// the `vc_depth = 1` bound the property tests pin. Under the baseline
/// variant every packet is `Low` and the discipline degenerates to the
/// original single FIFO, byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background / latency-tolerant traffic (the default).
    #[default]
    Low,
    /// Demand-critical traffic: bypasses queued low-priority packets.
    High,
}

/// A packet in flight through the mesh.
///
/// `header_bytes` + `payload_bytes` is the wire size used for link
/// serialization. For volume accounting, `class` says where the non-header
/// bytes go; header bytes of data-carrying packets are always accounted as
/// [`PacketClass::Header`] per the paper's taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Bytes of header on the wire.
    pub header_bytes: u32,
    /// Bytes of payload on the wire.
    pub payload_bytes: u32,
    /// Volume class of the payload (or of the whole packet if it has no
    /// payload).
    pub class: PacketClass,
    /// Opaque correlation tag for the machine layer (e.g. a protocol
    /// transaction id or message id).
    pub tag: u64,
    /// Virtual-channel priority class (defaults to [`Priority::Low`]).
    pub priority: Priority,
}

impl Packet {
    /// Creates a protocol/application packet of `total_bytes`, of which 8
    /// bytes are header (the Alewife packet header: routing + opcode word).
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes < 8`.
    pub fn protocol(
        src: Endpoint,
        dst: Endpoint,
        total_bytes: u32,
        class: PacketClass,
        tag: u64,
    ) -> Self {
        assert!(total_bytes >= 8, "packet smaller than its header");
        Packet {
            src,
            dst,
            header_bytes: 8,
            payload_bytes: total_bytes - 8,
            class,
            tag,
            priority: Priority::Low,
        }
    }

    /// Creates a cross-traffic packet of `total_bytes`.
    pub fn cross_traffic(src: Endpoint, dst: Endpoint, total_bytes: u32) -> Self {
        Packet {
            src,
            dst,
            header_bytes: 8,
            payload_bytes: total_bytes.saturating_sub(8),
            class: PacketClass::CrossTraffic,
            tag: 0,
            priority: Priority::Low,
        }
    }

    /// Returns the packet re-tagged with the given virtual-channel priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Total bytes on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.header_bytes + self.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_packet_splits_header() {
        let p = Packet::protocol(
            Endpoint::node(0),
            Endpoint::node(1),
            24,
            PacketClass::Data,
            1,
        );
        assert_eq!(p.header_bytes, 8);
        assert_eq!(p.payload_bytes, 16);
        assert_eq!(p.wire_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "smaller than its header")]
    fn undersized_packet_panics() {
        let _ = Packet::protocol(
            Endpoint::node(0),
            Endpoint::node(1),
            4,
            PacketClass::Request,
            0,
        );
    }

    #[test]
    fn cross_traffic_class() {
        let p = Packet::cross_traffic(Endpoint::IoWest(0), Endpoint::IoEast(0), 64);
        assert_eq!(p.class, PacketClass::CrossTraffic);
        assert_eq!(p.wire_bytes(), 64);
    }

    #[test]
    fn app_classes_order_matches_figure5() {
        assert_eq!(
            PacketClass::APP_CLASSES,
            [
                PacketClass::Invalidate,
                PacketClass::Request,
                PacketClass::Header,
                PacketClass::Data
            ]
        );
    }
}
