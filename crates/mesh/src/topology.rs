//! Interconnect topologies and computed per-hop routing.
//!
//! The [`Topology`] trait abstracts the machine's interconnect so the
//! network simulator can run the paper's experiments on fabrics beyond the
//! Alewife 2-D mesh: a 2-D torus, a fat tree (CM-5 style), and a dragonfly.
//! Every implementation provides *computed* routing — `route_hop(src, dst,
//! hop)` derives the hop'th link id arithmetically in O(1)-ish time — so no
//! per-pair state is needed and the machine scales to 1024 nodes without an
//! O(N²) route table. The precomputed [`RouteTable`] is retained purely as a
//! reference oracle for equivalence tests.

use crate::packet::Endpoint;

/// A router coordinate in the mesh: column `x`, row `y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterCoord {
    /// Column (0 at the west edge).
    pub x: u16,
    /// Row (0 at the north edge).
    pub y: u16,
}

impl RouterCoord {
    /// Creates a coordinate.
    pub const fn new(x: u16, y: u16) -> Self {
        RouterCoord { x, y }
    }
}

/// Direction of a unidirectional mesh channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteDir {
    /// Increasing x.
    East,
    /// Decreasing x.
    West,
    /// Increasing y.
    South,
    /// Decreasing y.
    North,
}

/// A `width × height` 2-D mesh with dimension-order (X then Y) routing.
///
/// Compute node `i` sits at router `(i % width, i / width)` — the Alewife
/// arrangement for the 32-node machine is an 8×4 mesh. Unidirectional links
/// are identified by dense indices so the network simulator can keep per-link
/// state in a flat vector.
///
/// # Examples
///
/// ```
/// use commsense_mesh::Mesh;
///
/// let mesh = Mesh::new(8, 4);
/// assert_eq!(mesh.num_links(), 2 * (7 * 4 + 3 * 8));
/// assert_eq!(mesh.hops(0, 31), 7 + 3); // opposite corners
/// assert_eq!(mesh.bisection_links().len(), 8); // 4 rows x 2 directions
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, if `width < 2` (a bisection cut
    /// needs at least two columns), or if the node count exceeds
    /// [`Endpoint::MAX_NODES`].
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width >= 2 && height >= 1,
            "mesh {width}x{height} is invalid: need width >= 2 and height >= 1 \
             (a bisection cut needs at least two columns)"
        );
        assert!(
            width as usize * height as usize <= Endpoint::MAX_NODES,
            "mesh {width}x{height} has {} nodes, more than the {} an Endpoint can address",
            width as usize * height as usize,
            Endpoint::MAX_NODES
        );
        Mesh { width, height }
    }

    /// Whether the true bisection is the vertical cut (between columns).
    ///
    /// The bisection of a mesh is its *minimum* equal-halves cut: the
    /// vertical cut crosses `2 * height` channels and the horizontal cut
    /// `2 * width`, so the vertical cut is the bisection exactly when
    /// `width >= height` (tall-narrow meshes are cut between rows).
    fn vertical_cut(&self) -> bool {
        self.width >= self.height
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of compute nodes (routers).
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total number of unidirectional links.
    pub fn num_links(&self) -> usize {
        let h_links = (self.width as usize - 1) * self.height as usize;
        let v_links = (self.height as usize).saturating_sub(1) * self.width as usize;
        2 * (h_links + v_links)
    }

    /// Coordinate of compute node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coord(&self, id: usize) -> RouterCoord {
        assert!(id < self.num_nodes(), "node {id} out of range");
        RouterCoord::new(
            (id % self.width as usize) as u16,
            (id / self.width as usize) as u16,
        )
    }

    /// Node id at a coordinate.
    pub fn node_at(&self, c: RouterCoord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Dense id of the unidirectional link leaving `from` in direction `dir`.
    ///
    /// Layout: eastward links first (`(width-1) * height`), then westward,
    /// then southward (`width * (height-1)`), then northward.
    ///
    /// # Panics
    ///
    /// Panics if the link would leave the mesh.
    pub fn link_id(&self, from: RouterCoord, dir: RouteDir) -> usize {
        let w = self.width as usize;
        let h = self.height as usize;
        let x = from.x as usize;
        let y = from.y as usize;
        let h_count = (w - 1) * h;
        let v_count = w * h.saturating_sub(1);
        match dir {
            RouteDir::East => {
                assert!(x + 1 < w, "east link off mesh at {from:?}");
                y * (w - 1) + x
            }
            RouteDir::West => {
                assert!(x >= 1, "west link off mesh at {from:?}");
                h_count + y * (w - 1) + (x - 1)
            }
            RouteDir::South => {
                assert!(y + 1 < h, "south link off mesh at {from:?}");
                2 * h_count + y * w + x
            }
            RouteDir::North => {
                assert!(y >= 1, "north link off mesh at {from:?}");
                2 * h_count + v_count + (y - 1) * w + x
            }
        }
    }

    /// Inverts [`Mesh::link_id`]: the source coordinate and direction of a
    /// dense link id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link_endpoints(&self, id: usize) -> (RouterCoord, RouteDir) {
        assert!(id < self.num_links(), "link {id} out of range");
        let w = self.width as usize;
        let h = self.height as usize;
        let h_count = (w - 1) * h;
        let v_count = w * h.saturating_sub(1);
        if id < h_count {
            let (y, x) = (id / (w - 1), id % (w - 1));
            (RouterCoord::new(x as u16, y as u16), RouteDir::East)
        } else if id < 2 * h_count {
            let i = id - h_count;
            let (y, x) = (i / (w - 1), i % (w - 1));
            (RouterCoord::new((x + 1) as u16, y as u16), RouteDir::West)
        } else if id < 2 * h_count + v_count {
            let i = id - 2 * h_count;
            let (y, x) = (i / w, i % w);
            (RouterCoord::new(x as u16, y as u16), RouteDir::South)
        } else {
            let i = id - 2 * h_count - v_count;
            let (y, x) = (i / w, i % w);
            (RouterCoord::new(x as u16, (y + 1) as u16), RouteDir::North)
        }
    }

    /// A human-readable label for link `id`, e.g. `"E(2,1)"` for the
    /// eastward link leaving router `(2,1)`. Used for per-link tracks in
    /// trace exports and utilization tables.
    pub fn link_label(&self, id: usize) -> String {
        let (from, dir) = self.link_endpoints(id);
        let d = match dir {
            RouteDir::East => 'E',
            RouteDir::West => 'W',
            RouteDir::South => 'S',
            RouteDir::North => 'N',
        };
        format!("{d}({},{})", from.x, from.y)
    }

    /// Whether link `id` crosses the bisection cut.
    ///
    /// For wide meshes (`width >= height`, including Alewife's 8×4) the cut
    /// runs between columns `width/2 - 1` and `width/2`; for tall-narrow
    /// meshes the horizontal cut between rows `height/2 - 1` and `height/2`
    /// is the true (minimum) bisection, so that cut is used instead.
    pub fn crosses_bisection(&self, id: usize) -> bool {
        let w = self.width as usize;
        let h = self.height as usize;
        let h_count = (w - 1) * h;
        let v_count = w * h.saturating_sub(1);
        if self.vertical_cut() {
            let cut_x = w / 2 - 1; // east links at column cut_x cross the cut
            if id < h_count {
                // Eastward link from (x, y) where id = y*(w-1)+x.
                id % (w - 1) == cut_x
            } else if id < 2 * h_count {
                // Westward link from (x+1, y) to (x, y) where (id-h) = y*(w-1)+x.
                (id - h_count) % (w - 1) == cut_x
            } else {
                false
            }
        } else {
            let cut_y = h / 2 - 1; // south links from row cut_y cross the cut
            if id < 2 * h_count {
                false
            } else if id < 2 * h_count + v_count {
                // Southward link from (x, y) where (id - 2h) = y*w+x.
                (id - 2 * h_count) / w == cut_y
            } else {
                // Northward link from (x, y+1) to (x, y) where the index
                // encodes y; it crosses when it lands on row cut_y.
                (id - 2 * h_count - v_count) / w == cut_y
            }
        }
    }

    /// The ids of all links crossing the bisection cut.
    pub fn bisection_links(&self) -> Vec<usize> {
        (0..self.num_links())
            .filter(|&l| self.crosses_bisection(l))
            .collect()
    }

    /// Manhattan hop count between two compute nodes.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as usize
    }

    /// Average hop count over all ordered pairs of distinct nodes.
    pub fn mean_hops(&self) -> f64 {
        let n = self.num_nodes();
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(a, b);
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }

    /// Number of cross-traffic stream pairs the mesh supports: one per row
    /// crossing the vertical cut (wide meshes), one per column crossing the
    /// horizontal cut (tall-narrow meshes).
    pub fn io_streams(&self) -> u16 {
        if self.vertical_cut() {
            self.height
        } else {
            self.width
        }
    }

    /// Dimension-order route between two endpoints, as a list of link ids.
    ///
    /// Compute-node traffic routes X-first then Y. Cross-traffic endpoints
    /// ([`Endpoint::IoWest`]/[`Endpoint::IoEast`]) enter at the edge router
    /// of their stream's row (or column, for tall-narrow meshes whose
    /// bisection is the horizontal cut) and traverse it end to end, leaving
    /// the mesh off the far edge (the final off-edge hop consumes no modeled
    /// link, matching the paper's description that cross-traffic "travels
    /// off the edge of the network without disturbing the compute nodes").
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are identical compute nodes (local traffic
    /// never enters the network) or if an I/O endpoint stream is out of
    /// range.
    pub fn route(&self, src: Endpoint, dst: Endpoint) -> Vec<usize> {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.route_nodes(a as usize, b as usize)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) if self.vertical_cut() => {
                self.row_route(s, RouteDir::East)
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) if self.vertical_cut() => {
                self.row_route(s, RouteDir::West)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => self.col_route(s, RouteDir::South),
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => self.col_route(s, RouteDir::North),
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }

    /// Computed route length between two endpoints, without materializing
    /// the route. Agrees with `self.route(src, dst).len()`.
    ///
    /// # Panics
    ///
    /// As [`Mesh::route`].
    pub fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.hops(a as usize, b as usize)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_))
            | (Endpoint::IoEast(s), Endpoint::IoWest(_)) => {
                assert!(s < self.io_streams(), "I/O stream {s} out of range");
                if self.vertical_cut() {
                    self.width as usize - 1
                } else {
                    self.height as usize - 1
                }
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }

    /// The `hop`'th link id on the route from `src` to `dst`, computed in
    /// O(1). Hop-for-hop identical to [`Mesh::route`] (and therefore to the
    /// legacy [`RouteTable`]).
    ///
    /// # Panics
    ///
    /// As [`Mesh::route`]; also panics if `hop >= route_len(src, dst)`.
    pub fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.dor_hop(a as usize, b as usize, hop)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) if self.vertical_cut() => {
                self.link_id(RouterCoord::new(hop as u16, s), RouteDir::East)
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) if self.vertical_cut() => self.link_id(
                RouterCoord::new(self.width - 1 - hop as u16, s),
                RouteDir::West,
            ),
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => {
                self.link_id(RouterCoord::new(s, hop as u16), RouteDir::South)
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => self.link_id(
                RouterCoord::new(s, self.height - 1 - hop as u16),
                RouteDir::North,
            ),
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }

    /// The `hop`'th link of the X-first dimension-order route `a -> b`.
    fn dor_hop(&self, a: usize, b: usize, hop: usize) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = ca.x.abs_diff(cb.x) as usize;
        if hop < dx {
            let hop = hop as u16;
            if ca.x < cb.x {
                self.link_id(RouterCoord::new(ca.x + hop, ca.y), RouteDir::East)
            } else {
                self.link_id(RouterCoord::new(ca.x - hop, ca.y), RouteDir::West)
            }
        } else {
            let v = (hop - dx) as u16;
            assert!(
                (hop - dx) < ca.y.abs_diff(cb.y) as usize,
                "hop {hop} past end of route {a}->{b}"
            );
            if ca.y < cb.y {
                self.link_id(RouterCoord::new(cb.x, ca.y + v), RouteDir::South)
            } else {
                self.link_id(RouterCoord::new(cb.x, ca.y - v), RouteDir::North)
            }
        }
    }

    fn route_nodes(&self, a: usize, b: usize) -> Vec<usize> {
        let mut cur = self.coord(a);
        let target = self.coord(b);
        let mut links = Vec::with_capacity(self.hops(a, b));
        while cur.x != target.x {
            let dir = if cur.x < target.x {
                RouteDir::East
            } else {
                RouteDir::West
            };
            links.push(self.link_id(cur, dir));
            cur.x = if cur.x < target.x {
                cur.x + 1
            } else {
                cur.x - 1
            };
        }
        while cur.y != target.y {
            let dir = if cur.y < target.y {
                RouteDir::South
            } else {
                RouteDir::North
            };
            links.push(self.link_id(cur, dir));
            cur.y = if cur.y < target.y {
                cur.y + 1
            } else {
                cur.y - 1
            };
        }
        links
    }

    fn row_route(&self, row: u16, dir: RouteDir) -> Vec<usize> {
        assert!(row < self.height, "I/O row {row} out of range");
        let w = self.width;
        (0..w - 1)
            .map(|i| {
                let x = match dir {
                    RouteDir::East => i,
                    RouteDir::West => w - 1 - i,
                    _ => unreachable!(),
                };
                self.link_id(RouterCoord::new(x, row), dir)
            })
            .collect()
    }

    fn col_route(&self, col: u16, dir: RouteDir) -> Vec<usize> {
        assert!(col < self.width, "I/O column {col} out of range");
        let h = self.height;
        (0..h - 1)
            .map(|i| {
                let y = match dir {
                    RouteDir::South => i,
                    RouteDir::North => h - 1 - i,
                    _ => unreachable!(),
                };
                self.link_id(RouterCoord::new(col, y), dir)
            })
            .collect()
    }
}

/// Every dimension-order route of a mesh, precomputed.
///
/// **Legacy reference oracle.** The network simulator no longer consults
/// this table — routing is computed per hop via [`Mesh::route_hop`], which
/// is O(1) and needs no O(N²) storage — but the table is retained so
/// property tests can verify the computed routing is hop-for-hop identical
/// to the precomputed routes it replaced. Covers all ordered compute-node
/// pairs plus the cross-traffic routes of each I/O stream
/// ([`Endpoint::IoWest`]/[`Endpoint::IoEast`]).
///
/// # Examples
///
/// ```
/// use commsense_mesh::{Endpoint, Mesh, RouteTable};
///
/// let mesh = Mesh::new(8, 4);
/// let table = RouteTable::new(&mesh);
/// let key = table.key(Endpoint::node(0), Endpoint::node(31));
/// assert_eq!(table.route(key).len(), mesh.hops(0, 31));
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    nodes: usize,
    io_streams: usize,
    /// All routes back to back, as link ids.
    arena: Vec<u32>,
    /// `(offset, len)` into `arena` per route key.
    spans: Vec<(u32, u32)>,
}

impl RouteTable {
    /// Precomputes every route of `mesh`.
    pub fn new(mesh: &Mesh) -> Self {
        let n = mesh.num_nodes();
        let h = mesh.io_streams() as usize;
        let mut arena = Vec::new();
        let mut spans = Vec::with_capacity(n * n + 2 * h);
        let push = |arena: &mut Vec<u32>, links: Vec<usize>| {
            let span = (arena.len() as u32, links.len() as u32);
            arena.extend(links.into_iter().map(|l| l as u32));
            span
        };
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    // Local traffic never enters the network; keep the
                    // keys dense with an empty span.
                    spans.push((arena.len() as u32, 0));
                } else {
                    let links = mesh.route(Endpoint::node(a), Endpoint::node(b));
                    spans.push(push(&mut arena, links));
                }
            }
        }
        for row in 0..h as u16 {
            let links = mesh.route(Endpoint::IoWest(row), Endpoint::IoEast(row));
            spans.push(push(&mut arena, links));
        }
        for row in 0..h as u16 {
            let links = mesh.route(Endpoint::IoEast(row), Endpoint::IoWest(row));
            spans.push(push(&mut arena, links));
        }
        RouteTable {
            nodes: n,
            io_streams: h,
            arena,
            spans,
        }
    }

    /// The table key of the `src -> dst` route.
    ///
    /// # Panics
    ///
    /// Panics on the route kinds [`Mesh::route`] rejects: identical
    /// compute nodes, out-of-range I/O rows, and unsupported endpoint
    /// combinations.
    pub fn key(&self, src: Endpoint, dst: Endpoint) -> u32 {
        let k = match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                a as usize * self.nodes + b as usize
            }
            (Endpoint::IoWest(row), Endpoint::IoEast(_)) => {
                assert!(
                    (row as usize) < self.io_streams,
                    "I/O row {row} out of range"
                );
                self.nodes * self.nodes + row as usize
            }
            (Endpoint::IoEast(row), Endpoint::IoWest(_)) => {
                assert!(
                    (row as usize) < self.io_streams,
                    "I/O row {row} out of range"
                );
                self.nodes * self.nodes + self.io_streams + row as usize
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        };
        k as u32
    }

    /// The route behind a key, as link ids.
    pub fn route(&self, key: u32) -> &[u32] {
        let (off, len) = self.spans[key as usize];
        &self.arena[off as usize..(off + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alewife() -> Mesh {
        Mesh::new(8, 4)
    }

    #[test]
    fn link_count_matches_formula() {
        let m = alewife();
        assert_eq!(m.num_links(), 2 * (7 * 4) + 2 * (3 * 8));
    }

    #[test]
    fn link_ids_are_dense_and_unique() {
        let m = alewife();
        let mut seen = vec![false; m.num_links()];
        for y in 0..4 {
            for x in 0..8 {
                let c = RouterCoord::new(x, y);
                for dir in [
                    RouteDir::East,
                    RouteDir::West,
                    RouteDir::South,
                    RouteDir::North,
                ] {
                    let ok = match dir {
                        RouteDir::East => x + 1 < 8,
                        RouteDir::West => x >= 1,
                        RouteDir::South => y + 1 < 4,
                        RouteDir::North => y >= 1,
                    };
                    if ok {
                        let id = m.link_id(c, dir);
                        assert!(!seen[id], "duplicate link id {id}");
                        seen[id] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all link ids covered");
    }

    #[test]
    fn coord_roundtrip() {
        let m = alewife();
        for id in 0..m.num_nodes() {
            assert_eq!(m.node_at(m.coord(id)), id);
        }
    }

    #[test]
    fn hops_corner_to_corner() {
        let m = alewife();
        assert_eq!(m.hops(0, 31), 10);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
    }

    #[test]
    fn route_length_equals_hops() {
        let m = alewife();
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                if a != b {
                    let r = m.route(Endpoint::node(a), Endpoint::node(b));
                    assert_eq!(r.len(), m.hops(a, b), "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn route_is_x_first() {
        let m = alewife();
        // 0 (0,0) -> 25 (1,3): one east link then three south links.
        let r = m.route(Endpoint::node(0), Endpoint::node(25));
        assert_eq!(r[0], m.link_id(RouterCoord::new(0, 0), RouteDir::East));
        assert_eq!(r[1], m.link_id(RouterCoord::new(1, 0), RouteDir::South));
    }

    #[test]
    fn bisection_links_count() {
        let m = alewife();
        let cut = m.bisection_links();
        assert_eq!(cut.len(), 8, "4 rows x 2 directions");
        for l in cut {
            assert!(m.crosses_bisection(l));
        }
    }

    #[test]
    fn cross_traffic_route_crosses_bisection() {
        let m = alewife();
        let east = m.route(Endpoint::IoWest(2), Endpoint::IoEast(2));
        assert_eq!(east.len(), 7);
        assert_eq!(east.iter().filter(|&&l| m.crosses_bisection(l)).count(), 1);
        let west = m.route(Endpoint::IoEast(1), Endpoint::IoWest(1));
        assert_eq!(west.len(), 7);
        assert_eq!(west.iter().filter(|&&l| m.crosses_bisection(l)).count(), 1);
    }

    #[test]
    fn mean_hops_is_sane() {
        let m = alewife();
        let mh = m.mean_hops();
        assert!(mh > 3.0 && mh < 5.0, "mean hops {mh}");
    }

    #[test]
    #[should_panic(expected = "local traffic")]
    fn local_route_panics() {
        let m = alewife();
        let _ = m.route(Endpoint::node(3), Endpoint::node(3));
    }

    #[test]
    fn route_table_matches_fresh_routes() {
        let m = alewife();
        let table = RouteTable::new(&m);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                if a == b {
                    continue;
                }
                let fresh: Vec<u32> = m
                    .route(Endpoint::node(a), Endpoint::node(b))
                    .into_iter()
                    .map(|l| l as u32)
                    .collect();
                let key = table.key(Endpoint::node(a), Endpoint::node(b));
                assert_eq!(table.route(key), &fresh[..], "{a}->{b}");
            }
        }
        for row in 0..m.height() {
            for (src, dst) in [
                (Endpoint::IoWest(row), Endpoint::IoEast(row)),
                (Endpoint::IoEast(row), Endpoint::IoWest(row)),
            ] {
                let fresh: Vec<u32> = m.route(src, dst).into_iter().map(|l| l as u32).collect();
                assert_eq!(table.route(table.key(src, dst)), &fresh[..]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "local traffic")]
    fn route_table_local_key_panics() {
        let table = RouteTable::new(&alewife());
        let _ = table.key(Endpoint::node(3), Endpoint::node(3));
    }
}

/// The interconnect-topology contract the network simulator routes through.
///
/// Implementations describe a fabric of `num_nodes` compute endpoints joined
/// by `num_links` unidirectional channels with dense ids, and provide
/// *computed* deterministic routing: [`Topology::route_hop`] derives the
/// `hop`'th link of a route arithmetically, so no per-(src,dst) state exists
/// and route storage stays O(1) regardless of machine size.
///
/// Contract, relied on by the simulator and the property suite:
///
/// * Routes are deterministic and minimal for the topology's routing
///   algorithm (dimension-order, up-down, or minimal-group).
/// * `route_len(src, dst)` equals the number of valid hops; `route_hop`
///   panics past the end.
/// * Consecutive hops are link-continuous: the `to` vertex of hop `h`
///   (see [`Topology::link_ends`]) is the `from` vertex of hop `h + 1`,
///   starting at `node_vertex(src)` and ending at `node_vertex(dst)` for
///   compute-node routes.
/// * Cross-traffic streams (`Endpoint::IoWest(s)` → `Endpoint::IoEast(s)`
///   and the reverse, `s < io_streams()`) cross the bisection cut exactly
///   once and are absorbed off-fabric, never occupying a compute node's
///   ejection port.
pub trait Topology {
    /// Short kind label: `"mesh"`, `"torus"`, `"fat-tree"`, `"dragonfly"`.
    fn kind(&self) -> &'static str;
    /// Human-readable shape, e.g. `"mesh 8x4 (32 nodes)"`.
    fn describe(&self) -> String;
    /// Number of compute nodes.
    fn num_nodes(&self) -> usize;
    /// Number of unidirectional links, densely numbered from 0.
    fn num_links(&self) -> usize;
    /// Hop count of the route between compute nodes `a` and `b` (0 for
    /// `a == b`).
    fn hops(&self, a: usize, b: usize) -> usize;
    /// Average hop count over all ordered pairs of distinct nodes.
    fn mean_hops(&self) -> f64;
    /// Route length between two endpoints; see [`Mesh::route_len`] for the
    /// panic contract.
    fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize;
    /// The `hop`'th link id on the `src -> dst` route, computed on the fly.
    fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize;
    /// Appends the full `src -> dst` route to `out` as dense link ids,
    /// hop-for-hop identical to calling [`Topology::route_hop`] for each
    /// hop. The network materializes each packet's route once at injection
    /// (into a pooled buffer) so the per-hop hot path is an array read, not
    /// repeated routing arithmetic.
    fn route_into(&self, src: Endpoint, dst: Endpoint, out: &mut Vec<u32>) {
        let len = self.route_len(src, dst);
        out.reserve(len);
        for hop in 0..len {
            out.push(self.route_hop(src, dst, hop) as u32);
        }
    }
    /// Human-readable label for link `id` (trace exports, heatmaps).
    fn link_label(&self, id: usize) -> String;
    /// Abstract `(from, to)` vertex ids of link `id`, for route-continuity
    /// verification. Vertices are opaque: compute nodes map to
    /// [`Topology::node_vertex`]; internal switches (fat-tree) get their own
    /// ids.
    fn link_ends(&self, id: usize) -> (u64, u64);
    /// The vertex id at which compute node `node` attaches.
    fn node_vertex(&self, node: usize) -> u64;
    /// Whether link `id` crosses the bisection cut.
    fn crosses_bisection(&self, id: usize) -> bool;
    /// Number of unidirectional channels crossing the bisection cut (both
    /// directions), used for bandwidth calibration.
    fn bisection_channels(&self) -> usize;
    /// Number of cross-traffic stream pairs the topology supports.
    fn io_streams(&self) -> u16;
    /// The ids of all links crossing the bisection cut.
    fn bisection_links(&self) -> Vec<usize> {
        (0..self.num_links())
            .filter(|&l| self.crosses_bisection(l))
            .collect()
    }
}

impl Topology for Mesh {
    fn kind(&self) -> &'static str {
        "mesh"
    }
    fn describe(&self) -> String {
        format!(
            "mesh {}x{} ({} nodes)",
            self.width,
            self.height,
            self.num_nodes()
        )
    }
    fn num_nodes(&self) -> usize {
        Mesh::num_nodes(self)
    }
    fn num_links(&self) -> usize {
        Mesh::num_links(self)
    }
    fn hops(&self, a: usize, b: usize) -> usize {
        Mesh::hops(self, a, b)
    }
    fn mean_hops(&self) -> f64 {
        Mesh::mean_hops(self)
    }
    fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        Mesh::route_len(self, src, dst)
    }
    fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        Mesh::route_hop(self, src, dst, hop)
    }
    fn link_label(&self, id: usize) -> String {
        Mesh::link_label(self, id)
    }
    fn link_ends(&self, id: usize) -> (u64, u64) {
        let (from, dir) = self.link_endpoints(id);
        let to = match dir {
            RouteDir::East => RouterCoord::new(from.x + 1, from.y),
            RouteDir::West => RouterCoord::new(from.x - 1, from.y),
            RouteDir::South => RouterCoord::new(from.x, from.y + 1),
            RouteDir::North => RouterCoord::new(from.x, from.y - 1),
        };
        (self.node_at(from) as u64, self.node_at(to) as u64)
    }
    fn node_vertex(&self, node: usize) -> u64 {
        assert!(node < Mesh::num_nodes(self), "node {node} out of range");
        node as u64
    }
    fn crosses_bisection(&self, id: usize) -> bool {
        Mesh::crosses_bisection(self, id)
    }
    fn bisection_channels(&self) -> usize {
        2 * self.width.min(self.height) as usize
    }
    fn io_streams(&self) -> u16 {
        Mesh::io_streams(self)
    }
    fn bisection_links(&self) -> Vec<usize> {
        Mesh::bisection_links(self)
    }
}

/// A `width × height` 2-D torus: the mesh plus wraparound channels, routed
/// dimension-order with shortest-direction selection per ring (ties break
/// toward East/South, deterministically).
///
/// Link layout: four blocks of `width * height` ids — East (`y*w + x` from
/// router `(x, y)`), then West, South, North at offsets `n`, `2n`, `3n`.
/// Every router has all four outgoing channels (wraparound closes the
/// rings), unlike the mesh where edge routers lack off-edge links.
#[derive(Debug, Clone)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive shape message if either dimension is below
    /// 2 (a ring needs two routers) or the node count exceeds
    /// [`Endpoint::MAX_NODES`].
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "torus {width}x{height} is invalid: both dimensions must be >= 2 to close the rings"
        );
        assert!(
            width as usize * height as usize <= Endpoint::MAX_NODES,
            "torus {width}x{height} has {} nodes, more than the {} an Endpoint can address",
            width as usize * height as usize,
            Endpoint::MAX_NODES
        );
        Torus { width, height }
    }

    /// Torus width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Torus height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    fn vertical_cut(&self) -> bool {
        self.width >= self.height
    }

    /// Minimum ring steps from `from` to `to` on a ring of `len`, and
    /// whether the positive (East/South) direction is taken. Ties break
    /// positive.
    fn ring_steps(from: usize, to: usize, len: usize) -> (usize, bool) {
        let fwd = (to + len - from) % len;
        if fwd == 0 {
            (0, true)
        } else if fwd <= len - fwd {
            (fwd, true)
        } else {
            (len - fwd, false)
        }
    }

    /// Sum of min ring distances over all ordered pairs on a ring of `len`.
    fn ring_sum(len: usize) -> usize {
        (1..len).map(|d| len * d.min(len - d)).sum()
    }

    fn coords(&self, id: usize) -> (usize, usize) {
        assert!(id < Topology::num_nodes(self), "node {id} out of range");
        (id % self.width as usize, id / self.width as usize)
    }

    /// Hops of one half-ring I/O route. Direct streams (`s` below the ring
    /// count) take the half covering the central cut; wrap streams take the
    /// complementary half covering the wraparound boundary. The halves are
    /// link-disjoint, so the streams together can saturate every channel of
    /// the ring — routing both streams the full way round would stack them
    /// on the same channels and halve the consumable bisection.
    fn io_route_hop(&self, s: u16, westbound: bool, hop: usize) -> usize {
        assert!(
            s < Topology::io_streams(self),
            "I/O stream {s} out of range"
        );
        let w = self.width as usize;
        let h = self.height as usize;
        let n = w * h;
        let s = s as usize;
        if self.vertical_cut() {
            assert!(
                hop < self.io_route_len(s),
                "hop {hop} past end of I/O route"
            );
            if !westbound {
                // Eastbound: direct rows cover columns [0, w/2), crossing
                // the central cut; wrap rows cover [w/2, w), crossing the
                // wraparound boundary.
                if s < h {
                    s * w + hop
                } else {
                    (s - h) * w + (w / 2 + hop)
                }
            } else if s < h {
                // Westbound direct: columns w/2 down to 1 (central cut).
                n + s * w + (w / 2 - hop)
            } else {
                // Westbound wrap: column 0, then w-1 down to w/2+1.
                n + (s - h) * w + (w - hop) % w
            }
        } else {
            assert!(
                hop < self.io_route_len(s),
                "hop {hop} past end of I/O route"
            );
            if !westbound {
                if s < w {
                    2 * n + hop * w + s
                } else {
                    2 * n + (h / 2 + hop) * w + (s - w)
                }
            } else if s < w {
                3 * n + (h / 2 - hop) * w + s
            } else {
                3 * n + ((h - hop) % h) * w + (s - w)
            }
        }
    }

    /// Length of stream `s`'s half-ring I/O route: `cut/2` hops for direct
    /// streams, the remaining `cut - cut/2` for wrap streams (they differ
    /// only on odd rings).
    fn io_route_len(&self, s: usize) -> usize {
        let cut = if self.vertical_cut() {
            self.width as usize
        } else {
            self.height as usize
        };
        if s < self.width.min(self.height) as usize {
            cut / 2
        } else {
            cut - cut / 2
        }
    }
}

impl Topology for Torus {
    fn kind(&self) -> &'static str {
        "torus"
    }
    fn describe(&self) -> String {
        format!(
            "torus {}x{} ({} nodes)",
            self.width,
            self.height,
            Topology::num_nodes(self)
        )
    }
    fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }
    fn num_links(&self) -> usize {
        4 * Topology::num_nodes(self)
    }
    fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let (sx, _) = Self::ring_steps(ax, bx, self.width as usize);
        let (sy, _) = Self::ring_steps(ay, by, self.height as usize);
        sx + sy
    }
    fn mean_hops(&self) -> f64 {
        let w = self.width as usize;
        let h = self.height as usize;
        let n = w * h;
        let total = h * h * Self::ring_sum(w) + w * w * Self::ring_sum(h);
        total as f64 / (n * (n - 1)) as f64
    }
    fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.hops(a as usize, b as usize)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_))
            | (Endpoint::IoEast(s), Endpoint::IoWest(_)) => {
                assert!(
                    s < Topology::io_streams(self),
                    "I/O stream {s} out of range"
                );
                self.io_route_len(s as usize)
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }
    fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                let w = self.width as usize;
                let h = self.height as usize;
                let n = w * h;
                let (ax, ay) = self.coords(a as usize);
                let (bx, by) = self.coords(b as usize);
                let (sx, east) = Self::ring_steps(ax, bx, w);
                if hop < sx {
                    if east {
                        ay * w + (ax + hop) % w
                    } else {
                        n + ay * w + (ax + w - hop) % w
                    }
                } else {
                    let v = hop - sx;
                    let (sy, south) = Self::ring_steps(ay, by, h);
                    assert!(v < sy, "hop {hop} past end of route {a}->{b}");
                    if south {
                        2 * n + ((ay + v) % h) * w + bx
                    } else {
                        3 * n + ((ay + h - v) % h) * w + bx
                    }
                }
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => self.io_route_hop(s, false, hop),
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => self.io_route_hop(s, true, hop),
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }
    fn link_label(&self, id: usize) -> String {
        let (from, _) = Topology::link_ends(self, id);
        let n = Topology::num_nodes(self);
        let w = self.width as usize;
        let d = match id / n {
            0 => 'E',
            1 => 'W',
            2 => 'S',
            _ => 'N',
        };
        format!("{d}({},{})", from as usize % w, from as usize / w)
    }
    fn link_ends(&self, id: usize) -> (u64, u64) {
        let n = Topology::num_nodes(self);
        assert!(id < 4 * n, "link {id} out of range");
        let w = self.width as usize;
        let h = self.height as usize;
        let (x, y) = ((id % n) % w, (id % n) / w);
        let (tx, ty) = match id / n {
            0 => ((x + 1) % w, y),
            1 => ((x + w - 1) % w, y),
            2 => (x, (y + 1) % h),
            _ => (x, (y + h - 1) % h),
        };
        ((y * w + x) as u64, (ty * w + tx) as u64)
    }
    fn node_vertex(&self, node: usize) -> u64 {
        assert!(node < Topology::num_nodes(self), "node {node} out of range");
        node as u64
    }
    fn crosses_bisection(&self, id: usize) -> bool {
        let n = Topology::num_nodes(self);
        let w = self.width as usize;
        let h = self.height as usize;
        if self.vertical_cut() {
            // Both the central cut (w/2-1 <-> w/2) and the wrap boundary
            // (w-1 <-> 0) separate the two halves of the ring.
            match id / n {
                0 => {
                    let x = (id % n) % w;
                    x == w / 2 - 1 || x == w - 1
                }
                1 => {
                    let x = (id % n) % w;
                    x == w / 2 || x == 0
                }
                _ => false,
            }
        } else {
            match id / n {
                2 => {
                    let y = (id % n) / w;
                    y == h / 2 - 1 || y == h - 1
                }
                3 => {
                    let y = (id % n) / w;
                    y == h / 2 || y == 0
                }
                _ => false,
            }
        }
    }
    fn bisection_channels(&self) -> usize {
        // Two boundaries x two directions per row (or column) of the cut
        // dimension: twice the equivalent mesh.
        4 * self.width.min(self.height) as usize
    }
    fn io_streams(&self) -> u16 {
        // One direct pair per row loading the central cut plus one wrap
        // pair loading the wraparound boundary (columns for tall shapes).
        2 * self.width.min(self.height)
    }
}

/// A full-bandwidth fat tree with `arity^levels` leaf compute nodes
/// (CM-5 style), routed up to the lowest common ancestor and back down.
///
/// The bandwidth between adjacent levels never thins: each level boundary
/// carries one up channel and one down channel *per leaf*. Up channels are
/// owned by the source leaf and down channels by the destination leaf, so
/// two packets share a channel only when they share that endpoint — the
/// idealized Clos behavior. Link layout: up links first (`level * leaves +
/// channel` for `level < levels`), then down links at offset
/// `levels * leaves`.
#[derive(Debug, Clone)]
pub struct FatTree {
    arity: u16,
    levels: u16,
    leaves: usize,
}

impl FatTree {
    /// Creates a fat tree with `arity^levels` leaves.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive shape message if `arity < 2`, `levels < 1`,
    /// or the leaf count exceeds [`Endpoint::MAX_NODES`].
    pub fn new(arity: u16, levels: u16) -> Self {
        assert!(
            arity >= 2,
            "fat-tree arity {arity} is invalid: internal switches need at least 2 children"
        );
        assert!(
            levels >= 1,
            "fat-tree with {levels} levels is invalid: need at least one switch level"
        );
        let leaves = (arity as usize)
            .checked_pow(levels as u32)
            .filter(|&n| n <= Endpoint::MAX_NODES)
            .unwrap_or_else(|| {
                panic!(
                    "fat-tree arity {arity} depth {levels} has more than the {} nodes an \
                     Endpoint can address",
                    Endpoint::MAX_NODES
                )
            });
        FatTree {
            arity,
            levels,
            leaves,
        }
    }

    /// Tree arity (children per switch).
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Number of switch levels above the leaves.
    pub fn levels(&self) -> u16 {
        self.levels
    }

    /// The level of the lowest common ancestor of two leaves (0 when equal).
    fn lca(&self, a: usize, b: usize) -> usize {
        let ar = self.arity as usize;
        let (mut a, mut b, mut m) = (a, b, 0);
        while a != b {
            a /= ar;
            b /= ar;
            m += 1;
        }
        m
    }

    /// The leaf pair behind a cross-traffic stream: leaf `s` and its mirror
    /// in the opposite top-level subtree.
    fn io_pair(&self, s: u16) -> (usize, usize) {
        assert!(
            s < Topology::io_streams(self),
            "I/O stream {s} out of range"
        );
        (s as usize, self.leaves - 1 - s as usize)
    }

    fn node_route_len(&self, a: usize, b: usize) -> usize {
        2 * self.lca(a, b)
    }

    fn node_route_hop(&self, a: usize, b: usize, hop: usize) -> usize {
        let m = self.lca(a, b);
        if hop < m {
            // Climbing: the up channel owned by the source leaf.
            hop * self.leaves + a
        } else {
            let j = hop - m;
            assert!(j < m, "hop {hop} past end of route {a}->{b}");
            // Descending: the down channel owned by the destination leaf.
            self.levels as usize * self.leaves + (m - 1 - j) * self.leaves + b
        }
    }
}

impl Topology for FatTree {
    fn kind(&self) -> &'static str {
        "fat-tree"
    }
    fn describe(&self) -> String {
        format!(
            "fat-tree arity {} depth {} ({} nodes)",
            self.arity, self.levels, self.leaves
        )
    }
    fn num_nodes(&self) -> usize {
        self.leaves
    }
    fn num_links(&self) -> usize {
        2 * self.levels as usize * self.leaves
    }
    fn hops(&self, a: usize, b: usize) -> usize {
        assert!(a < self.leaves && b < self.leaves, "node out of range");
        self.node_route_len(a, b)
    }
    fn mean_hops(&self) -> f64 {
        let ar = self.leaves as f64;
        let mut per_node = 0.0;
        let mut pow = 1usize;
        for m in 1..=self.levels as usize {
            let prev = pow;
            pow *= self.arity as usize;
            per_node += (2 * m) as f64 * (pow - prev) as f64;
        }
        per_node / (ar - 1.0)
    }
    fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.node_route_len(a as usize, b as usize)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route_len(a, b)
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route_len(b, a)
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }
    fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.node_route_hop(a as usize, b as usize, hop)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route_hop(a, b, hop)
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route_hop(b, a, hop)
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }
    fn link_label(&self, id: usize) -> String {
        assert!(id < Topology::num_links(self), "link {id} out of range");
        let up_total = self.levels as usize * self.leaves;
        if id < up_total {
            format!("U{}:{}", id / self.leaves, id % self.leaves)
        } else {
            let id = id - up_total;
            format!("D{}:{}", id / self.leaves, id % self.leaves)
        }
    }
    fn link_ends(&self, id: usize) -> (u64, u64) {
        assert!(id < Topology::num_links(self), "link {id} out of range");
        let ar = self.arity as usize;
        let up_total = self.levels as usize * self.leaves;
        let switch = |level: usize, channel: usize| -> u64 {
            let mut s = channel;
            for _ in 0..level {
                s /= ar;
            }
            ((level as u64) << 32) | s as u64
        };
        if id < up_total {
            let (l, c) = (id / self.leaves, id % self.leaves);
            (switch(l, c), switch(l + 1, c))
        } else {
            let id = id - up_total;
            let (l, c) = (id / self.leaves, id % self.leaves);
            (switch(l + 1, c), switch(l, c))
        }
    }
    fn node_vertex(&self, node: usize) -> u64 {
        assert!(node < self.leaves, "node {node} out of range");
        node as u64
    }
    fn crosses_bisection(&self, id: usize) -> bool {
        // Every packet between different top-level subtrees climbs exactly
        // one root-boundary up channel; counting only the up side avoids
        // double-counting the matching down channel.
        let root_up = (self.levels as usize - 1) * self.leaves;
        (root_up..self.levels as usize * self.leaves).contains(&id)
    }
    fn bisection_channels(&self) -> usize {
        // Full bandwidth at the root: one channel per leaf each way, so the
        // halves exchange leaves/2 channels per direction.
        self.leaves
    }
    fn io_streams(&self) -> u16 {
        (self.leaves / 2) as u16
    }
}

/// A flattened dragonfly: `groups` fully connected groups of `group_size`
/// routers (one compute node each), with one global channel between every
/// ordered group pair, routed minimally (intra hop, global hop, intra hop).
///
/// The global channel from group `i` to group `j` attaches at router
/// `dense(j) % group_size` of group `i` (where `dense` skips `i` itself),
/// spreading global traffic across routers. Link layout: intra-group links
/// first (`group * a*(a-1)` of them), then the `g*(g-1)` global links.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    groups: u16,
    group_size: u16,
}

impl Dragonfly {
    /// Creates a dragonfly.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive shape message if `groups < 2`,
    /// `group_size < 1`, or the node count exceeds [`Endpoint::MAX_NODES`].
    pub fn new(groups: u16, group_size: u16) -> Self {
        assert!(
            groups >= 2,
            "dragonfly with {groups} groups is invalid: global links need at least 2 groups"
        );
        assert!(
            group_size >= 1,
            "dragonfly group size {group_size} is invalid: groups must hold at least 1 router"
        );
        assert!(
            groups as usize * group_size as usize <= Endpoint::MAX_NODES,
            "dragonfly {groups} groups x {group_size} has {} nodes, more than the {} an \
             Endpoint can address",
            groups as usize * group_size as usize,
            Endpoint::MAX_NODES
        );
        let streams = (groups as usize / 2) * (groups as usize - groups as usize / 2);
        assert!(
            streams <= u16::MAX as usize,
            "dragonfly with {groups} groups needs {streams} cross-traffic streams, more \
             than a u16 stream id can address"
        );
        Dragonfly { groups, group_size }
    }

    /// Number of groups.
    pub fn groups(&self) -> u16 {
        self.groups
    }

    /// Routers (= compute nodes) per group.
    pub fn group_size(&self) -> u16 {
        self.group_size
    }

    fn intra_per_group(&self) -> usize {
        let a = self.group_size as usize;
        a * (a - 1)
    }

    fn intra_total(&self) -> usize {
        self.groups as usize * self.intra_per_group()
    }

    /// Dense index of group `gj` among group `gi`'s peers (skips `gi`).
    fn dense(gi: usize, gj: usize) -> usize {
        if gj < gi {
            gj
        } else {
            gj - 1
        }
    }

    /// The router of group `gi` where the global channel to `gj` attaches.
    fn attach(&self, gi: usize, gj: usize) -> usize {
        Self::dense(gi, gj) % self.group_size as usize
    }

    fn intra_link(&self, group: usize, i: usize, j: usize) -> usize {
        debug_assert_ne!(i, j);
        let a = self.group_size as usize;
        group * self.intra_per_group() + i * (a - 1) + if j < i { j } else { j - 1 }
    }

    fn global_link(&self, gi: usize, gj: usize) -> usize {
        self.intra_total() + gi * (self.groups as usize - 1) + Self::dense(gi, gj)
    }

    /// The (up to 3) links of the minimal route `a -> b`, as
    /// `(len, [l0, l1, l2])`.
    fn node_route(&self, a: usize, b: usize) -> (usize, [usize; 3]) {
        let sz = self.group_size as usize;
        let (gs, ls) = (a / sz, a % sz);
        let (gd, ld) = (b / sz, b % sz);
        if gs == gd {
            return (1, [self.intra_link(gs, ls, ld), 0, 0]);
        }
        let p1 = self.attach(gs, gd);
        let p2 = self.attach(gd, gs);
        let mut links = [0usize; 3];
        let mut len = 0;
        if ls != p1 {
            links[len] = self.intra_link(gs, ls, p1);
            len += 1;
        }
        links[len] = self.global_link(gs, gd);
        len += 1;
        if p2 != ld {
            links[len] = self.intra_link(gd, p2, ld);
            len += 1;
        }
        (len, links)
    }

    /// The node pair behind a cross-traffic stream: one stream per ordered
    /// cross-cut group pair `(gi, gj)` with `gi` in the lower half and `gj`
    /// in the upper, anchored at the two attach routers of their global
    /// channel. Each stream is then a single global hop on a channel no
    /// other stream touches, so together the streams can saturate the full
    /// bisection.
    fn io_pair(&self, s: u16) -> (usize, usize) {
        assert!(
            s < Topology::io_streams(self),
            "I/O stream {s} out of range"
        );
        let g = self.groups as usize;
        let sz = self.group_size as usize;
        let upper = g - g / 2;
        let gi = s as usize / upper;
        let gj = g / 2 + s as usize % upper;
        (gi * sz + self.attach(gi, gj), gj * sz + self.attach(gj, gi))
    }
}

impl Topology for Dragonfly {
    fn kind(&self) -> &'static str {
        "dragonfly"
    }
    fn describe(&self) -> String {
        format!(
            "dragonfly {} groups x {} ({} nodes)",
            self.groups,
            self.group_size,
            Topology::num_nodes(self)
        )
    }
    fn num_nodes(&self) -> usize {
        self.groups as usize * self.group_size as usize
    }
    fn num_links(&self) -> usize {
        self.intra_total() + self.groups as usize * (self.groups as usize - 1)
    }
    fn hops(&self, a: usize, b: usize) -> usize {
        assert!(
            a < Topology::num_nodes(self) && b < Topology::num_nodes(self),
            "node out of range"
        );
        if a == b {
            0
        } else {
            self.node_route(a, b).0
        }
    }
    fn mean_hops(&self) -> f64 {
        let g = self.groups as f64;
        let a = self.group_size as f64;
        let n = g * a;
        // Same-group pairs are 1 hop; cross-group pairs are 1 global hop
        // plus an intra hop at each end unless the endpoint is the attach
        // router ((a-1)/a of the time each).
        let same = g * a * (a - 1.0);
        let cross = g * (g - 1.0) * (a * a + 2.0 * a * (a - 1.0));
        (same + cross) / (n * (n - 1.0))
    }
    fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.node_route(a as usize, b as usize).0
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route(a, b).0
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route(b, a).0
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }
    fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        let (len, links) = match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.node_route(a as usize, b as usize)
            }
            (Endpoint::IoWest(s), Endpoint::IoEast(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route(a, b)
            }
            (Endpoint::IoEast(s), Endpoint::IoWest(_)) => {
                let (a, b) = self.io_pair(s);
                self.node_route(b, a)
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        };
        assert!(hop < len, "hop {hop} past end of route");
        links[hop]
    }
    fn link_label(&self, id: usize) -> String {
        let (from, to) = Topology::link_ends(self, id);
        let sz = self.group_size as u64;
        if id < self.intra_total() {
            format!("G{}:{}>{}", from / sz, from % sz, to % sz)
        } else {
            format!("X{}>{}", from / sz, to / sz)
        }
    }
    fn link_ends(&self, id: usize) -> (u64, u64) {
        assert!(id < Topology::num_links(self), "link {id} out of range");
        let a = self.group_size as usize;
        let g = self.groups as usize;
        if id < self.intra_total() {
            let group = id / self.intra_per_group();
            let rest = id % self.intra_per_group();
            let i = rest / (a - 1);
            let dj = rest % (a - 1);
            let j = if dj < i { dj } else { dj + 1 };
            ((group * a + i) as u64, (group * a + j) as u64)
        } else {
            let rest = id - self.intra_total();
            let gi = rest / (g - 1);
            let gj = {
                let d = rest % (g - 1);
                if d < gi {
                    d
                } else {
                    d + 1
                }
            };
            (
                (gi * a + self.attach(gi, gj)) as u64,
                (gj * a + self.attach(gj, gi)) as u64,
            )
        }
    }
    fn node_vertex(&self, node: usize) -> u64 {
        assert!(node < Topology::num_nodes(self), "node {node} out of range");
        node as u64
    }
    fn crosses_bisection(&self, id: usize) -> bool {
        if id < self.intra_total() {
            return false;
        }
        let g = self.groups as usize;
        let rest = id - self.intra_total();
        let gi = rest / (g - 1);
        let d = rest % (g - 1);
        let gj = if d < gi { d } else { d + 1 };
        (gi < g / 2) != (gj < g / 2)
    }
    fn bisection_channels(&self) -> usize {
        let g = self.groups as usize;
        2 * (g / 2) * (g - g / 2)
    }
    fn io_streams(&self) -> u16 {
        // One stream per cross-cut group pair; see `io_pair`.
        let g = self.groups as usize;
        ((g / 2) * (g - g / 2)) as u16
    }
}

/// A concrete topology instance, statically dispatched.
///
/// The network stores a `Topo` so the hot path pays a match, not a vtable
/// call. Inherent methods mirror the [`Topology`] trait one-for-one.
#[derive(Debug, Clone)]
pub enum Topo {
    /// 2-D mesh (the paper's Alewife machine).
    Mesh(Mesh),
    /// 2-D torus (wraparound mesh).
    Torus(Torus),
    /// Full-bandwidth fat tree.
    FatTree(FatTree),
    /// Flattened dragonfly.
    Dragonfly(Dragonfly),
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            Topo::Mesh($t) => $e,
            Topo::Torus($t) => $e,
            Topo::FatTree($t) => $e,
            Topo::Dragonfly($t) => $e,
        }
    };
}

impl Topo {
    /// See [`Topology::kind`].
    pub fn kind(&self) -> &'static str {
        dispatch!(self, t => Topology::kind(t))
    }
    /// See [`Topology::describe`].
    pub fn describe(&self) -> String {
        dispatch!(self, t => Topology::describe(t))
    }
    /// See [`Topology::num_nodes`].
    pub fn num_nodes(&self) -> usize {
        dispatch!(self, t => Topology::num_nodes(t))
    }
    /// See [`Topology::num_links`].
    pub fn num_links(&self) -> usize {
        dispatch!(self, t => Topology::num_links(t))
    }
    /// See [`Topology::hops`].
    pub fn hops(&self, a: usize, b: usize) -> usize {
        dispatch!(self, t => Topology::hops(t, a, b))
    }
    /// See [`Topology::mean_hops`].
    pub fn mean_hops(&self) -> f64 {
        dispatch!(self, t => Topology::mean_hops(t))
    }
    /// See [`Topology::route_len`].
    pub fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        dispatch!(self, t => Topology::route_len(t, src, dst))
    }
    /// See [`Topology::route_hop`].
    pub fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        dispatch!(self, t => Topology::route_hop(t, src, dst, hop))
    }
    /// See [`Topology::route_into`].
    pub fn route_into(&self, src: Endpoint, dst: Endpoint, out: &mut Vec<u32>) {
        dispatch!(self, t => Topology::route_into(t, src, dst, out))
    }
    /// See [`Topology::link_label`].
    pub fn link_label(&self, id: usize) -> String {
        dispatch!(self, t => Topology::link_label(t, id))
    }
    /// See [`Topology::link_ends`].
    pub fn link_ends(&self, id: usize) -> (u64, u64) {
        dispatch!(self, t => Topology::link_ends(t, id))
    }
    /// See [`Topology::node_vertex`].
    pub fn node_vertex(&self, node: usize) -> u64 {
        dispatch!(self, t => Topology::node_vertex(t, node))
    }
    /// See [`Topology::crosses_bisection`].
    pub fn crosses_bisection(&self, id: usize) -> bool {
        dispatch!(self, t => Topology::crosses_bisection(t, id))
    }
    /// See [`Topology::bisection_channels`].
    pub fn bisection_channels(&self) -> usize {
        dispatch!(self, t => Topology::bisection_channels(t))
    }
    /// See [`Topology::io_streams`].
    pub fn io_streams(&self) -> u16 {
        dispatch!(self, t => Topology::io_streams(t))
    }
    /// See [`Topology::bisection_links`].
    pub fn bisection_links(&self) -> Vec<usize> {
        dispatch!(self, t => Topology::bisection_links(t))
    }
    /// The underlying mesh, if this is a mesh topology.
    pub fn as_mesh(&self) -> Option<&Mesh> {
        match self {
            Topo::Mesh(m) => Some(m),
            _ => None,
        }
    }
}

impl Topology for Topo {
    fn kind(&self) -> &'static str {
        Topo::kind(self)
    }
    fn describe(&self) -> String {
        Topo::describe(self)
    }
    fn num_nodes(&self) -> usize {
        Topo::num_nodes(self)
    }
    fn num_links(&self) -> usize {
        Topo::num_links(self)
    }
    fn hops(&self, a: usize, b: usize) -> usize {
        Topo::hops(self, a, b)
    }
    fn mean_hops(&self) -> f64 {
        Topo::mean_hops(self)
    }
    fn route_len(&self, src: Endpoint, dst: Endpoint) -> usize {
        Topo::route_len(self, src, dst)
    }
    fn route_hop(&self, src: Endpoint, dst: Endpoint, hop: usize) -> usize {
        Topo::route_hop(self, src, dst, hop)
    }
    fn route_into(&self, src: Endpoint, dst: Endpoint, out: &mut Vec<u32>) {
        Topo::route_into(self, src, dst, out)
    }
    fn link_label(&self, id: usize) -> String {
        Topo::link_label(self, id)
    }
    fn link_ends(&self, id: usize) -> (u64, u64) {
        Topo::link_ends(self, id)
    }
    fn node_vertex(&self, node: usize) -> u64 {
        Topo::node_vertex(self, node)
    }
    fn crosses_bisection(&self, id: usize) -> bool {
        Topo::crosses_bisection(self, id)
    }
    fn bisection_channels(&self) -> usize {
        Topo::bisection_channels(self)
    }
    fn io_streams(&self) -> u16 {
        Topo::io_streams(self)
    }
    fn bisection_links(&self) -> Vec<usize> {
        Topo::bisection_links(self)
    }
}

/// A declarative topology shape: the configuration-level counterpart of
/// [`Topo`], cheap to clone, compare, and hash into result-store keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// 2-D mesh.
    Mesh {
        /// Columns.
        width: u16,
        /// Rows.
        height: u16,
    },
    /// 2-D torus.
    Torus {
        /// Columns.
        width: u16,
        /// Rows.
        height: u16,
    },
    /// Full-bandwidth fat tree with `arity^levels` leaves.
    FatTree {
        /// Children per switch.
        arity: u16,
        /// Switch levels above the leaves.
        levels: u16,
    },
    /// Flattened dragonfly.
    Dragonfly {
        /// Number of groups.
        groups: u16,
        /// Routers per group.
        group_size: u16,
    },
}

impl TopoSpec {
    /// The recognized kind labels, in the order used by sweeps.
    pub const KINDS: [&'static str; 4] = ["mesh", "torus", "fat-tree", "dragonfly"];

    /// A 2-D mesh spec.
    pub fn mesh(width: u16, height: u16) -> Self {
        TopoSpec::Mesh { width, height }
    }

    /// A 2-D torus spec.
    pub fn torus(width: u16, height: u16) -> Self {
        TopoSpec::Torus { width, height }
    }

    /// A fat-tree spec.
    pub fn fat_tree(arity: u16, levels: u16) -> Self {
        TopoSpec::FatTree { arity, levels }
    }

    /// A dragonfly spec.
    pub fn dragonfly(groups: u16, group_size: u16) -> Self {
        TopoSpec::Dragonfly { groups, group_size }
    }

    /// The paper's machine: the 8×4 Alewife mesh.
    pub fn alewife() -> Self {
        TopoSpec::mesh(8, 4)
    }

    /// Short kind label: `"mesh"`, `"torus"`, `"fat-tree"`, `"dragonfly"`.
    pub fn kind(&self) -> &'static str {
        match self {
            TopoSpec::Mesh { .. } => "mesh",
            TopoSpec::Torus { .. } => "torus",
            TopoSpec::FatTree { .. } => "fat-tree",
            TopoSpec::Dragonfly { .. } => "dragonfly",
        }
    }

    /// Number of compute nodes the built topology will have.
    pub fn num_nodes(&self) -> usize {
        match *self {
            TopoSpec::Mesh { width, height } | TopoSpec::Torus { width, height } => {
                width as usize * height as usize
            }
            TopoSpec::FatTree { arity, levels } => (arity as usize).pow(levels as u32),
            TopoSpec::Dragonfly { groups, group_size } => groups as usize * group_size as usize,
        }
    }

    /// Human-readable shape, e.g. `"mesh 8x4"`.
    pub fn describe(&self) -> String {
        match *self {
            TopoSpec::Mesh { width, height } => format!("mesh {width}x{height}"),
            TopoSpec::Torus { width, height } => format!("torus {width}x{height}"),
            TopoSpec::FatTree { arity, levels } => format!("fat-tree {arity}^{levels}"),
            TopoSpec::Dragonfly { groups, group_size } => {
                format!("dragonfly {groups}x{group_size}")
            }
        }
    }

    /// Builds the concrete topology.
    ///
    /// # Panics
    ///
    /// Panics with the constructor's descriptive message when the shape is
    /// invalid.
    pub fn build(&self) -> Topo {
        match *self {
            TopoSpec::Mesh { width, height } => Topo::Mesh(Mesh::new(width, height)),
            TopoSpec::Torus { width, height } => Topo::Torus(Torus::new(width, height)),
            TopoSpec::FatTree { arity, levels } => Topo::FatTree(FatTree::new(arity, levels)),
            TopoSpec::Dragonfly { groups, group_size } => {
                Topo::Dragonfly(Dragonfly::new(groups, group_size))
            }
        }
    }

    /// A spec of the given `kind` with (as close as the kind allows)
    /// `nodes` compute nodes, for node-count sweeps.
    ///
    /// Meshes and tori factor `nodes` into the most nearly square
    /// `width x height` with `width >= height`; dragonflies do the same with
    /// `groups >= group_size`; fat trees require a power of 4 (arity-4,
    /// CM-5 style) or a power of 2 (arity-2 fallback).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if `kind` is unknown or `nodes`
    /// cannot form a valid shape of that kind (e.g. a prime node count for
    /// a torus, or a non-power-of-two fat tree).
    pub fn with_nodes(kind: &str, nodes: usize) -> Self {
        assert!(
            (4..=Endpoint::MAX_NODES).contains(&nodes),
            "{nodes} nodes is out of range: need between 4 and {}",
            Endpoint::MAX_NODES
        );
        let (big, small) = near_square(nodes);
        match kind {
            "mesh" => TopoSpec::mesh(big, small),
            "torus" => {
                assert!(
                    small >= 2,
                    "cannot build a torus with {nodes} nodes: it factors as {big}x{small}, \
                     but both torus dimensions must be >= 2"
                );
                TopoSpec::torus(big, small)
            }
            "fat-tree" => {
                if let Some(levels) = log_exact(nodes, 4) {
                    TopoSpec::fat_tree(4, levels)
                } else if let Some(levels) = log_exact(nodes, 2) {
                    TopoSpec::fat_tree(2, levels)
                } else {
                    panic!(
                        "cannot build a fat-tree with {nodes} nodes: \
                         the leaf count must be a power of 4 or of 2"
                    )
                }
            }
            "dragonfly" => {
                assert!(
                    big >= 2,
                    "cannot build a dragonfly with {nodes} nodes: it factors as \
                     {big} groups x {small}, but at least 2 groups are needed"
                );
                TopoSpec::dragonfly(big, small)
            }
            other => panic!(
                "unknown topology kind {other:?} (expected one of {:?})",
                TopoSpec::KINDS
            ),
        }
    }

    /// Feeds the spec into a stable-hash encoder under `prefix`, for
    /// result-store keys. The two shape parameters use the uniform names
    /// `dim_a`/`dim_b`; the `kind` key disambiguates their meaning.
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        let (a, b) = match *self {
            TopoSpec::Mesh { width, height } | TopoSpec::Torus { width, height } => (width, height),
            TopoSpec::FatTree { arity, levels } => (arity, levels),
            TopoSpec::Dragonfly { groups, group_size } => (groups, group_size),
        };
        enc.put(&format!("{prefix}.kind"), self.kind());
        enc.put(&format!("{prefix}.dim_a"), a);
        enc.put(&format!("{prefix}.dim_b"), b);
    }
}

/// Factors `n` into `(big, small)` with `big * small == n`, `big >= small`,
/// and the pair as nearly square as the divisors of `n` allow.
fn near_square(n: usize) -> (u16, u16) {
    let mut small = 1usize;
    while (small + 1) * (small + 1) <= n {
        small += 1;
    }
    while small > 1 && !n.is_multiple_of(small) {
        small -= 1;
    }
    ((n / small) as u16, small as u16)
}

/// `Some(k)` when `n == base^k` exactly (with `k >= 1`).
fn log_exact(n: usize, base: usize) -> Option<u16> {
    let mut pow = base;
    let mut k = 1u16;
    while pow < n {
        pow = pow.checked_mul(base)?;
        k += 1;
    }
    (pow == n).then_some(k)
}

#[cfg(test)]
mod topo_tests {
    use super::*;

    /// Walks every hop of the `a -> b` route checking link continuity from
    /// `a`'s vertex to `b`'s, and that the length matches `hops`.
    fn check_node_route(t: &impl Topology, a: usize, b: usize) {
        let (src, dst) = (Endpoint::node(a), Endpoint::node(b));
        let len = t.route_len(src, dst);
        assert_eq!(
            len,
            t.hops(a, b),
            "route_len disagrees with hops for {a}->{b}"
        );
        let mut at = t.node_vertex(a);
        for h in 0..len {
            let link = t.route_hop(src, dst, h);
            assert!(link < t.num_links(), "hop {h} of {a}->{b} out of range");
            let (from, to) = t.link_ends(link);
            assert_eq!(from, at, "hop {h} of {a}->{b} breaks continuity");
            at = to;
        }
        assert_eq!(at, t.node_vertex(b), "route {a}->{b} ends elsewhere");
    }

    /// Every cross-traffic stream must cross the bisection cut exactly once
    /// in each direction.
    fn check_io_streams(t: &impl Topology) {
        assert!(t.io_streams() > 0, "{} has no I/O streams", t.describe());
        for s in 0..t.io_streams() {
            for (src, dst) in [
                (Endpoint::IoWest(s), Endpoint::IoEast(s)),
                (Endpoint::IoEast(s), Endpoint::IoWest(s)),
            ] {
                let len = t.route_len(src, dst);
                assert!(len >= 1);
                let crossings = (0..len)
                    .filter(|&h| t.crosses_bisection(t.route_hop(src, dst, h)))
                    .count();
                assert_eq!(
                    crossings, 1,
                    "stream {s} {src:?}->{dst:?} crosses the cut {crossings} times"
                );
                // Hops are link-continuous here too.
                let mut at = None;
                for h in 0..len {
                    let (from, to) = t.link_ends(t.route_hop(src, dst, h));
                    if let Some(prev) = at {
                        assert_eq!(from, prev, "I/O stream {s} hop {h} breaks continuity");
                    }
                    at = Some(to);
                }
            }
        }
    }

    /// Links must join distinct vertices, and the bisection link list must
    /// agree with the channel count. Parallel links between the same vertex
    /// pair are legitimate (fat-tree channels, length-2 torus rings), so
    /// uniqueness of vertex pairs is deliberately not required.
    fn check_links_distinct(t: &impl Topology) {
        for id in 0..t.num_links() {
            let ends = t.link_ends(id);
            assert_ne!(ends.0, ends.1, "link {id} is a self-loop");
        }
        assert_eq!(
            t.bisection_links().len(),
            t.bisection_channels(),
            "bisection link list disagrees with channel count for {}",
            t.describe()
        );
    }

    fn sample_pairs(n: usize) -> Vec<(usize, usize)> {
        // Deterministic scatter covering corners, wrap boundaries, and a
        // pseudo-random interior spread.
        let mut pairs = vec![(0, n - 1), (n - 1, 0), (0, n / 2), (n / 2 - 1, n / 2)];
        let mut x = 1usize;
        for _ in 0..64 {
            x = (x * 48271) % 0x7fff_ffff;
            let a = x % n;
            let b = (x / n) % n;
            if a != b {
                pairs.push((a, b));
            }
        }
        pairs
    }

    fn check_topology(t: &impl Topology) {
        check_links_distinct(t);
        check_io_streams(t);
        for (a, b) in sample_pairs(t.num_nodes()) {
            check_node_route(t, a, b);
        }
    }

    #[test]
    fn mesh_topology_contract() {
        check_topology(&Mesh::new(8, 4));
        check_topology(&Mesh::new(2, 8)); // tall-narrow
        check_topology(&Mesh::new(32, 32));
    }

    #[test]
    fn torus_topology_contract() {
        check_topology(&Torus::new(8, 4));
        check_topology(&Torus::new(2, 8)); // tall-narrow
        check_topology(&Torus::new(32, 32));
        check_topology(&Torus::new(3, 5)); // odd rings
    }

    #[test]
    fn fat_tree_topology_contract() {
        check_topology(&FatTree::new(2, 1));
        check_topology(&FatTree::new(4, 3));
        check_topology(&FatTree::new(2, 10)); // 1024 leaves
    }

    #[test]
    fn dragonfly_topology_contract() {
        check_topology(&Dragonfly::new(2, 1));
        check_topology(&Dragonfly::new(8, 4));
        check_topology(&Dragonfly::new(32, 32)); // 1024 nodes
    }

    #[test]
    fn torus_wraparound_shortens_routes() {
        let t = Torus::new(8, 4);
        // Opposite ends of a row: 1 wrap hop instead of the mesh's 7.
        assert_eq!(Topology::hops(&t, 0, 7), 1);
        assert_eq!(Topology::hops(&t, 7, 0), 1);
        // Half-way round an even ring ties; the tie breaks East.
        let (steps, east) = Torus::ring_steps(0, 4, 8);
        assert_eq!((steps, east), (4, true));
        // Torus mean hops beat the mesh's.
        assert!(Topology::mean_hops(&t) < Mesh::new(8, 4).mean_hops());
        // Exhaustive mean check.
        let n = Topology::num_nodes(&t);
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| Topology::hops(&t, a, b))
            .sum();
        let want = total as f64 / (n * (n - 1)) as f64;
        assert!((Topology::mean_hops(&t) - want).abs() < 1e-9);
    }

    #[test]
    fn fat_tree_routes_via_lowest_common_ancestor() {
        let t = FatTree::new(4, 3); // 64 leaves
        assert_eq!(Topology::num_nodes(&t), 64);
        assert_eq!(Topology::hops(&t, 0, 1), 2); // siblings: up 1, down 1
        assert_eq!(Topology::hops(&t, 0, 5), 4); // cousins
        assert_eq!(Topology::hops(&t, 0, 63), 6); // cross-root
        assert_eq!(Topology::hops(&t, 9, 9), 0);
        // Bisection: only root-level up links cross, one per leaf.
        assert_eq!(Topology::bisection_channels(&t), 64);
        // Exhaustive mean check.
        let n = 64;
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| Topology::hops(&t, a, b))
            .sum();
        let want = total as f64 / (n * (n - 1)) as f64;
        assert!((Topology::mean_hops(&t) - want).abs() < 1e-9);
    }

    #[test]
    fn dragonfly_diameter_is_three() {
        let t = Dragonfly::new(8, 4);
        let n = Topology::num_nodes(&t);
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let h = Topology::hops(&t, a, b);
                assert!((1..=3).contains(&h), "{a}->{b} took {h} hops");
                total += h;
            }
        }
        let want = total as f64 / (n * (n - 1)) as f64;
        assert!((Topology::mean_hops(&t) - want).abs() < 1e-9);
    }

    #[test]
    fn hop_symmetry_where_applicable() {
        // Mesh, torus, and fat tree have symmetric hop counts; the
        // dragonfly does not (attach routers are direction-dependent), which
        // is why it is excluded here.
        for t in [
            TopoSpec::mesh(8, 4).build(),
            TopoSpec::torus(8, 4).build(),
            TopoSpec::fat_tree(4, 3).build(),
        ] {
            for (a, b) in sample_pairs(t.num_nodes()) {
                assert_eq!(t.hops(a, b), t.hops(b, a), "{}: {a}<->{b}", t.describe());
            }
        }
    }

    #[test]
    fn tall_narrow_mesh_cuts_between_rows() {
        let m = Mesh::new(2, 8);
        // The true bisection of a 2x8 mesh is the horizontal cut: 2 * width
        // = 4 channels, not the vertical cut's 16.
        let links = m.bisection_links();
        assert_eq!(links.len(), 4);
        for &l in &links {
            let (from, dir) = m.link_endpoints(l);
            assert!(
                matches!((dir, from.y), (RouteDir::South, 3) | (RouteDir::North, 4)),
                "unexpected bisection link {l}: {from:?} {dir:?}"
            );
        }
        assert_eq!(m.io_streams(), 2); // one stream pair per column
    }

    #[test]
    fn topo_spec_builds_and_describes() {
        for (spec, nodes, kind) in [
            (TopoSpec::alewife(), 32, "mesh"),
            (TopoSpec::torus(16, 16), 256, "torus"),
            (TopoSpec::fat_tree(4, 5), 1024, "fat-tree"),
            (TopoSpec::dragonfly(32, 32), 1024, "dragonfly"),
        ] {
            assert_eq!(spec.num_nodes(), nodes);
            assert_eq!(spec.kind(), kind);
            let topo = spec.build();
            assert_eq!(topo.num_nodes(), nodes);
            assert_eq!(topo.kind(), kind);
        }
    }

    #[test]
    fn with_nodes_finds_valid_shapes() {
        assert_eq!(TopoSpec::with_nodes("mesh", 32), TopoSpec::mesh(8, 4));
        assert_eq!(TopoSpec::with_nodes("mesh", 1024), TopoSpec::mesh(32, 32));
        assert_eq!(TopoSpec::with_nodes("torus", 256), TopoSpec::torus(16, 16));
        assert_eq!(
            TopoSpec::with_nodes("fat-tree", 1024),
            TopoSpec::fat_tree(4, 5)
        );
        assert_eq!(
            TopoSpec::with_nodes("fat-tree", 32),
            TopoSpec::fat_tree(2, 5)
        );
        assert_eq!(
            TopoSpec::with_nodes("dragonfly", 1024),
            TopoSpec::dragonfly(32, 32)
        );
        for kind in TopoSpec::KINDS {
            let spec = TopoSpec::with_nodes(kind, 1024);
            assert_eq!(spec.num_nodes(), 1024, "{kind}");
            spec.build();
        }
    }

    #[test]
    #[should_panic(expected = "power of 4 or of 2")]
    fn with_nodes_rejects_non_power_fat_tree() {
        TopoSpec::with_nodes("fat-tree", 48);
    }

    #[test]
    #[should_panic(expected = "unknown topology kind")]
    fn with_nodes_rejects_unknown_kind() {
        TopoSpec::with_nodes("hypercube", 64);
    }

    #[test]
    #[should_panic(expected = "torus 1x8 is invalid")]
    fn torus_rejects_degenerate_ring() {
        Torus::new(1, 8);
    }

    #[test]
    fn stable_encode_distinguishes_topologies() {
        use commsense_des::StableEncoder;
        let hash = |spec: &TopoSpec| {
            let mut enc = StableEncoder::new();
            spec.stable_encode(&mut enc, "net.topo");
            enc.finish_hash()
        };
        let specs = [
            TopoSpec::mesh(8, 4),
            TopoSpec::mesh(4, 8),
            TopoSpec::torus(8, 4),
            TopoSpec::fat_tree(8, 4),
            TopoSpec::dragonfly(8, 4),
        ];
        let hashes: Vec<_> = specs.iter().map(hash).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{:?} vs {:?}", specs[i], specs[j]);
            }
        }
        assert_eq!(hash(&TopoSpec::alewife()), hash(&TopoSpec::mesh(8, 4)));
    }

    #[test]
    fn scale_1024_routing_regression() {
        // The satellite audit target: all four topologies at (or near) 1024
        // nodes with full contract checks, exercising index arithmetic well
        // past the 32-node seed.
        check_topology(&Mesh::new(32, 32));
        check_topology(&Torus::new(32, 32));
        check_topology(&FatTree::new(4, 5));
        check_topology(&Dragonfly::new(32, 32));
        // And the largest addressable meshes don't overflow link ids.
        let big = Mesh::new(256, 256);
        assert_eq!(big.num_nodes(), 65536);
        check_node_route(&big, 0, 65535);
    }
}
