//! Mesh topology and dimension-order routing.

use crate::packet::Endpoint;

/// A router coordinate in the mesh: column `x`, row `y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterCoord {
    /// Column (0 at the west edge).
    pub x: u16,
    /// Row (0 at the north edge).
    pub y: u16,
}

impl RouterCoord {
    /// Creates a coordinate.
    pub const fn new(x: u16, y: u16) -> Self {
        RouterCoord { x, y }
    }
}

/// Direction of a unidirectional mesh channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteDir {
    /// Increasing x.
    East,
    /// Decreasing x.
    West,
    /// Increasing y.
    South,
    /// Decreasing y.
    North,
}

/// A `width × height` 2-D mesh with dimension-order (X then Y) routing.
///
/// Compute node `i` sits at router `(i % width, i / width)` — the Alewife
/// arrangement for the 32-node machine is an 8×4 mesh. Unidirectional links
/// are identified by dense indices so the network simulator can keep per-link
/// state in a flat vector.
///
/// # Examples
///
/// ```
/// use commsense_mesh::Mesh;
///
/// let mesh = Mesh::new(8, 4);
/// assert_eq!(mesh.num_links(), 2 * (7 * 4 + 3 * 8));
/// assert_eq!(mesh.hops(0, 31), 7 + 3); // opposite corners
/// assert_eq!(mesh.bisection_links().len(), 8); // 4 rows x 2 directions
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or if `width < 2` (a bisection cut
    /// needs at least two columns).
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width >= 2 && height >= 1, "mesh must be at least 2x1");
        Mesh { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of compute nodes (routers).
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total number of unidirectional links.
    pub fn num_links(&self) -> usize {
        let h_links = (self.width as usize - 1) * self.height as usize;
        let v_links = (self.height as usize).saturating_sub(1) * self.width as usize;
        2 * (h_links + v_links)
    }

    /// Coordinate of compute node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coord(&self, id: usize) -> RouterCoord {
        assert!(id < self.num_nodes(), "node {id} out of range");
        RouterCoord::new(
            (id % self.width as usize) as u16,
            (id / self.width as usize) as u16,
        )
    }

    /// Node id at a coordinate.
    pub fn node_at(&self, c: RouterCoord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Dense id of the unidirectional link leaving `from` in direction `dir`.
    ///
    /// Layout: eastward links first (`(width-1) * height`), then westward,
    /// then southward (`width * (height-1)`), then northward.
    ///
    /// # Panics
    ///
    /// Panics if the link would leave the mesh.
    pub fn link_id(&self, from: RouterCoord, dir: RouteDir) -> usize {
        let w = self.width as usize;
        let h = self.height as usize;
        let x = from.x as usize;
        let y = from.y as usize;
        let h_count = (w - 1) * h;
        let v_count = w * h.saturating_sub(1);
        match dir {
            RouteDir::East => {
                assert!(x + 1 < w, "east link off mesh at {from:?}");
                y * (w - 1) + x
            }
            RouteDir::West => {
                assert!(x >= 1, "west link off mesh at {from:?}");
                h_count + y * (w - 1) + (x - 1)
            }
            RouteDir::South => {
                assert!(y + 1 < h, "south link off mesh at {from:?}");
                2 * h_count + y * w + x
            }
            RouteDir::North => {
                assert!(y >= 1, "north link off mesh at {from:?}");
                2 * h_count + v_count + (y - 1) * w + x
            }
        }
    }

    /// Inverts [`Mesh::link_id`]: the source coordinate and direction of a
    /// dense link id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link_endpoints(&self, id: usize) -> (RouterCoord, RouteDir) {
        assert!(id < self.num_links(), "link {id} out of range");
        let w = self.width as usize;
        let h = self.height as usize;
        let h_count = (w - 1) * h;
        let v_count = w * h.saturating_sub(1);
        if id < h_count {
            let (y, x) = (id / (w - 1), id % (w - 1));
            (RouterCoord::new(x as u16, y as u16), RouteDir::East)
        } else if id < 2 * h_count {
            let i = id - h_count;
            let (y, x) = (i / (w - 1), i % (w - 1));
            (RouterCoord::new((x + 1) as u16, y as u16), RouteDir::West)
        } else if id < 2 * h_count + v_count {
            let i = id - 2 * h_count;
            let (y, x) = (i / w, i % w);
            (RouterCoord::new(x as u16, y as u16), RouteDir::South)
        } else {
            let i = id - 2 * h_count - v_count;
            let (y, x) = (i / w, i % w);
            (RouterCoord::new(x as u16, (y + 1) as u16), RouteDir::North)
        }
    }

    /// A human-readable label for link `id`, e.g. `"E(2,1)"` for the
    /// eastward link leaving router `(2,1)`. Used for per-link tracks in
    /// trace exports and utilization tables.
    pub fn link_label(&self, id: usize) -> String {
        let (from, dir) = self.link_endpoints(id);
        let d = match dir {
            RouteDir::East => 'E',
            RouteDir::West => 'W',
            RouteDir::South => 'S',
            RouteDir::North => 'N',
        };
        format!("{d}({},{})", from.x, from.y)
    }

    /// Whether link `id` crosses the bisection cut between columns
    /// `width/2 - 1` and `width/2` (either direction).
    pub fn crosses_bisection(&self, id: usize) -> bool {
        let w = self.width as usize;
        let h = self.height as usize;
        let h_count = (w - 1) * h;
        let cut_x = w / 2 - 1; // east links at column cut_x cross the cut
        if id < h_count {
            // Eastward link from (x, y) where id = y*(w-1)+x.
            id % (w - 1) == cut_x
        } else if id < 2 * h_count {
            // Westward link from (x+1, y) to (x, y) where (id-h) = y*(w-1)+x.
            (id - h_count) % (w - 1) == cut_x
        } else {
            false
        }
    }

    /// The ids of all links crossing the bisection cut.
    pub fn bisection_links(&self) -> Vec<usize> {
        (0..self.num_links())
            .filter(|&l| self.crosses_bisection(l))
            .collect()
    }

    /// Manhattan hop count between two compute nodes.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as usize
    }

    /// Average hop count over all ordered pairs of distinct nodes.
    pub fn mean_hops(&self) -> f64 {
        let n = self.num_nodes();
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(a, b);
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }

    /// Dimension-order route between two endpoints, as a list of link ids.
    ///
    /// Compute-node traffic routes X-first then Y. Cross-traffic endpoints
    /// ([`Endpoint::IoWest`]/[`Endpoint::IoEast`]) enter at the edge router
    /// of their row and traverse the full row, leaving the mesh off the far
    /// edge (the final off-edge hop consumes no modeled link, matching the
    /// paper's description that cross-traffic "travels off the edge of the
    /// network without disturbing the compute nodes").
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are identical compute nodes (local traffic
    /// never enters the network) or if an I/O endpoint row is out of range.
    pub fn route(&self, src: Endpoint, dst: Endpoint) -> Vec<usize> {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                self.route_nodes(a as usize, b as usize)
            }
            (Endpoint::IoWest(row), Endpoint::IoEast(_)) => self.row_route(row, RouteDir::East),
            (Endpoint::IoEast(row), Endpoint::IoWest(_)) => self.row_route(row, RouteDir::West),
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        }
    }

    fn route_nodes(&self, a: usize, b: usize) -> Vec<usize> {
        let mut cur = self.coord(a);
        let target = self.coord(b);
        let mut links = Vec::with_capacity(self.hops(a, b));
        while cur.x != target.x {
            let dir = if cur.x < target.x {
                RouteDir::East
            } else {
                RouteDir::West
            };
            links.push(self.link_id(cur, dir));
            cur.x = if cur.x < target.x {
                cur.x + 1
            } else {
                cur.x - 1
            };
        }
        while cur.y != target.y {
            let dir = if cur.y < target.y {
                RouteDir::South
            } else {
                RouteDir::North
            };
            links.push(self.link_id(cur, dir));
            cur.y = if cur.y < target.y {
                cur.y + 1
            } else {
                cur.y - 1
            };
        }
        links
    }

    fn row_route(&self, row: u16, dir: RouteDir) -> Vec<usize> {
        assert!(row < self.height, "I/O row {row} out of range");
        let w = self.width;
        (0..w - 1)
            .map(|i| {
                let x = match dir {
                    RouteDir::East => i,
                    RouteDir::West => w - 1 - i,
                    _ => unreachable!(),
                };
                self.link_id(RouterCoord::new(x, row), dir)
            })
            .collect()
    }
}

/// Every dimension-order route of a mesh, precomputed.
///
/// Dimension-order routes are static, so the network computes each one
/// exactly once up front and hands out `&[u32]` slices into a single flat
/// arena instead of allocating a fresh `Vec` per injected packet. Covers
/// all ordered compute-node pairs plus the full-row cross-traffic routes
/// of each I/O row ([`Endpoint::IoWest`]/[`Endpoint::IoEast`]).
///
/// # Examples
///
/// ```
/// use commsense_mesh::{Endpoint, Mesh, RouteTable};
///
/// let mesh = Mesh::new(8, 4);
/// let table = RouteTable::new(&mesh);
/// let key = table.key(Endpoint::node(0), Endpoint::node(31));
/// assert_eq!(table.route(key).len(), mesh.hops(0, 31));
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    nodes: usize,
    height: usize,
    /// All routes back to back, as link ids.
    arena: Vec<u32>,
    /// `(offset, len)` into `arena` per route key.
    spans: Vec<(u32, u32)>,
}

impl RouteTable {
    /// Precomputes every route of `mesh`.
    pub fn new(mesh: &Mesh) -> Self {
        let n = mesh.num_nodes();
        let h = mesh.height() as usize;
        let mut arena = Vec::new();
        let mut spans = Vec::with_capacity(n * n + 2 * h);
        let push = |arena: &mut Vec<u32>, links: Vec<usize>| {
            let span = (arena.len() as u32, links.len() as u32);
            arena.extend(links.into_iter().map(|l| l as u32));
            span
        };
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    // Local traffic never enters the network; keep the
                    // keys dense with an empty span.
                    spans.push((arena.len() as u32, 0));
                } else {
                    let links = mesh.route(Endpoint::node(a), Endpoint::node(b));
                    spans.push(push(&mut arena, links));
                }
            }
        }
        for row in 0..h as u16 {
            let links = mesh.route(Endpoint::IoWest(row), Endpoint::IoEast(row));
            spans.push(push(&mut arena, links));
        }
        for row in 0..h as u16 {
            let links = mesh.route(Endpoint::IoEast(row), Endpoint::IoWest(row));
            spans.push(push(&mut arena, links));
        }
        RouteTable {
            nodes: n,
            height: h,
            arena,
            spans,
        }
    }

    /// The table key of the `src -> dst` route.
    ///
    /// # Panics
    ///
    /// Panics on the route kinds [`Mesh::route`] rejects: identical
    /// compute nodes, out-of-range I/O rows, and unsupported endpoint
    /// combinations.
    pub fn key(&self, src: Endpoint, dst: Endpoint) -> u32 {
        let k = match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "local traffic must not enter the network");
                a as usize * self.nodes + b as usize
            }
            (Endpoint::IoWest(row), Endpoint::IoEast(_)) => {
                assert!((row as usize) < self.height, "I/O row {row} out of range");
                self.nodes * self.nodes + row as usize
            }
            (Endpoint::IoEast(row), Endpoint::IoWest(_)) => {
                assert!((row as usize) < self.height, "I/O row {row} out of range");
                self.nodes * self.nodes + self.height + row as usize
            }
            (s, d) => panic!("unsupported route {s:?} -> {d:?}"),
        };
        k as u32
    }

    /// The route behind a key, as link ids.
    pub fn route(&self, key: u32) -> &[u32] {
        let (off, len) = self.spans[key as usize];
        &self.arena[off as usize..(off + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alewife() -> Mesh {
        Mesh::new(8, 4)
    }

    #[test]
    fn link_count_matches_formula() {
        let m = alewife();
        assert_eq!(m.num_links(), 2 * (7 * 4) + 2 * (3 * 8));
    }

    #[test]
    fn link_ids_are_dense_and_unique() {
        let m = alewife();
        let mut seen = vec![false; m.num_links()];
        for y in 0..4 {
            for x in 0..8 {
                let c = RouterCoord::new(x, y);
                for dir in [
                    RouteDir::East,
                    RouteDir::West,
                    RouteDir::South,
                    RouteDir::North,
                ] {
                    let ok = match dir {
                        RouteDir::East => x + 1 < 8,
                        RouteDir::West => x >= 1,
                        RouteDir::South => y + 1 < 4,
                        RouteDir::North => y >= 1,
                    };
                    if ok {
                        let id = m.link_id(c, dir);
                        assert!(!seen[id], "duplicate link id {id}");
                        seen[id] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all link ids covered");
    }

    #[test]
    fn coord_roundtrip() {
        let m = alewife();
        for id in 0..m.num_nodes() {
            assert_eq!(m.node_at(m.coord(id)), id);
        }
    }

    #[test]
    fn hops_corner_to_corner() {
        let m = alewife();
        assert_eq!(m.hops(0, 31), 10);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
    }

    #[test]
    fn route_length_equals_hops() {
        let m = alewife();
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                if a != b {
                    let r = m.route(Endpoint::node(a), Endpoint::node(b));
                    assert_eq!(r.len(), m.hops(a, b), "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn route_is_x_first() {
        let m = alewife();
        // 0 (0,0) -> 25 (1,3): one east link then three south links.
        let r = m.route(Endpoint::node(0), Endpoint::node(25));
        assert_eq!(r[0], m.link_id(RouterCoord::new(0, 0), RouteDir::East));
        assert_eq!(r[1], m.link_id(RouterCoord::new(1, 0), RouteDir::South));
    }

    #[test]
    fn bisection_links_count() {
        let m = alewife();
        let cut = m.bisection_links();
        assert_eq!(cut.len(), 8, "4 rows x 2 directions");
        for l in cut {
            assert!(m.crosses_bisection(l));
        }
    }

    #[test]
    fn cross_traffic_route_crosses_bisection() {
        let m = alewife();
        let east = m.route(Endpoint::IoWest(2), Endpoint::IoEast(2));
        assert_eq!(east.len(), 7);
        assert_eq!(east.iter().filter(|&&l| m.crosses_bisection(l)).count(), 1);
        let west = m.route(Endpoint::IoEast(1), Endpoint::IoWest(1));
        assert_eq!(west.len(), 7);
        assert_eq!(west.iter().filter(|&&l| m.crosses_bisection(l)).count(), 1);
    }

    #[test]
    fn mean_hops_is_sane() {
        let m = alewife();
        let mh = m.mean_hops();
        assert!(mh > 3.0 && mh < 5.0, "mean hops {mh}");
    }

    #[test]
    #[should_panic(expected = "local traffic")]
    fn local_route_panics() {
        let m = alewife();
        let _ = m.route(Endpoint::node(3), Endpoint::node(3));
    }

    #[test]
    fn route_table_matches_fresh_routes() {
        let m = alewife();
        let table = RouteTable::new(&m);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                if a == b {
                    continue;
                }
                let fresh: Vec<u32> = m
                    .route(Endpoint::node(a), Endpoint::node(b))
                    .into_iter()
                    .map(|l| l as u32)
                    .collect();
                let key = table.key(Endpoint::node(a), Endpoint::node(b));
                assert_eq!(table.route(key), &fresh[..], "{a}->{b}");
            }
        }
        for row in 0..m.height() {
            for (src, dst) in [
                (Endpoint::IoWest(row), Endpoint::IoEast(row)),
                (Endpoint::IoEast(row), Endpoint::IoWest(row)),
            ] {
                let fresh: Vec<u32> = m.route(src, dst).into_iter().map(|l| l as u32).collect();
                assert_eq!(table.route(table.key(src, dst)), &fresh[..]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "local traffic")]
    fn route_table_local_key_panics() {
        let table = RouteTable::new(&alewife());
        let _ = table.key(Endpoint::node(3), Endpoint::node(3));
    }
}
