//! Property tests for the hostile cross-traffic generators and the
//! 2-class priority virtual channel.
//!
//! The generators must be deterministic replay-exact functions of their
//! config (the litmus fuzzer and the result store both depend on it), must
//! conserve the configured aggregate injection rate, and must honor their
//! pattern parameters exactly — the hotspot fraction via error diffusion,
//! the bursty duty cycle with a drift-free backlog. The priority channel
//! must never let a high-priority packet queue behind low-priority traffic
//! that arrived at a link after it.

use commsense_des::{Clock, EventQueue, Time};
use commsense_mesh::{
    CrossTraffic, CrossTrafficConfig, Endpoint, NetConfig, NetEvent, Network, Packet, PacketClass,
    Priority, TrafficPattern,
};
use proptest::prelude::*;

/// A 32-node hostile config at the paper's 8 bytes/cycle consumption.
fn cfg_with(pattern: TrafficPattern, seed: u64) -> CrossTrafficConfig {
    CrossTrafficConfig::consuming(8.0, Clock::from_mhz(20.0), 64, 4).with_pattern(pattern, 32, seed)
}

/// Runs `ticks` generator ticks, returning each tick's packet batch.
fn emit(ct: &mut CrossTraffic, ticks: usize) -> Vec<Vec<Packet>> {
    (0..ticks)
        .map(|_| {
            let mut out = Vec::new();
            ct.tick_packets_into(&mut out);
            out
        })
        .collect()
}

/// Drives a network to quiescence, returning delivered `(arrival, tag)`.
fn drain(net: &mut Network, mut q: EventQueue<NetEvent>) -> Vec<(Time, u64)> {
    let mut out = Vec::new();
    while let Some((t, ev)) = q.pop() {
        let mut sched = Vec::new();
        if let Some(d) = net.handle(t, ev, &mut |t2, e2| sched.push((t2, e2))) {
            out.push((t, d.packet.tag));
        }
        for (t2, e2) in sched {
            q.schedule(t2, e2);
        }
    }
    out
}

const PATTERNS: [TrafficPattern; 4] = [
    TrafficPattern::Uniform,
    TrafficPattern::Hotspot {
        node: 3,
        fraction: 0.37,
    },
    TrafficPattern::Bursty { on: 3, off: 5 },
    TrafficPattern::Incast { targets: 4 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every pattern replays bit-exactly from its config: same seed, same
    /// packet sequence, tick for tick.
    #[test]
    fn generators_replay_deterministically(seed in 0u64..1_000, ticks in 1usize..64) {
        for pattern in PATTERNS {
            let mut a = CrossTraffic::new(cfg_with(pattern, seed));
            let mut b = CrossTraffic::new(cfg_with(pattern, seed));
            prop_assert_eq!(emit(&mut a, ticks), emit(&mut b, ticks));
        }
    }

    /// Hotspot and incast emit exactly the uniform slot count every tick;
    /// bursty conserves it exactly at every duty-period boundary and never
    /// accumulates more backlog than one off-phase (no drift).
    #[test]
    fn injection_rate_is_conserved(seed in 0u64..1_000, periods in 1usize..12) {
        let slots = 2 * 4usize; // 4 stream pairs
        for pattern in PATTERNS {
            let mut ct = CrossTraffic::new(cfg_with(pattern, seed));
            match pattern {
                TrafficPattern::Bursty { on, off } => {
                    let period = (on + off) as usize;
                    let batches = emit(&mut ct, periods * period);
                    let mut cum = 0usize;
                    for (t, batch) in batches.iter().enumerate() {
                        cum += batch.len();
                        // Backlog never exceeds one off-phase worth, and
                        // the generator never runs ahead of the rate.
                        prop_assert!(cum <= (t + 1) * slots);
                        prop_assert!(cum + off as usize * slots >= (t + 1) * slots);
                        if t % period == on as usize - 1 {
                            // End of each burst: the whole backlog (this
                            // period's off-phase debt) has drained — the
                            // average rate is conserved exactly, no drift.
                            prop_assert_eq!(cum, (t + 1) * slots, "drift at end of burst");
                        }
                    }
                }
                _ => {
                    for batch in emit(&mut ct, periods * 8) {
                        prop_assert_eq!(batch.len(), slots);
                    }
                }
            }
        }
    }

    /// The error-diffusion accumulator redirects exactly `round(n * f)`
    /// (within one) of the first `n` slots at the victim, for any fraction.
    #[test]
    fn hotspot_fraction_is_honored_exactly(
        seed in 0u64..1_000,
        pct in 0u32..101,
        ticks in 1usize..96,
    ) {
        let fraction = pct as f64 / 100.0;
        let pattern = TrafficPattern::Hotspot { node: 5, fraction };
        let mut ct = CrossTraffic::new(cfg_with(pattern, seed));
        let batches = emit(&mut ct, ticks);
        let slots = (ticks * 8) as f64;
        let redirected = batches
            .iter()
            .flatten()
            .filter(|p| p.dst == Endpoint::Node(5))
            .count();
        prop_assert!(
            (redirected as f64 - slots * fraction).abs() < 1.0,
            "redirected {redirected} of {slots} slots at fraction {fraction}"
        );
        // No redirected packet is ever sourced at the victim itself.
        for p in batches.iter().flatten() {
            if p.dst == Endpoint::Node(5) {
                prop_assert!(p.src != Endpoint::Node(5));
            }
        }
    }

    /// Bursty emits only during the on-phase and is silent for the whole
    /// off-phase, tiling time exactly with the configured duty cycle.
    #[test]
    fn bursty_duty_cycle_tiles_time(
        seed in 0u64..1_000,
        on in 1u32..6,
        off in 0u32..6,
        periods in 1usize..8,
    ) {
        let pattern = TrafficPattern::Bursty { on, off };
        let mut ct = CrossTraffic::new(cfg_with(pattern, seed));
        let period = (on + off) as usize;
        let batches = emit(&mut ct, periods * period);
        for (t, batch) in batches.iter().enumerate() {
            let in_burst = t % period < on as usize;
            prop_assert_eq!(
                !batch.is_empty(),
                in_burst,
                "tick {} (phase {}) emitted {} packets",
                t,
                t % period,
                batch.len()
            );
        }
    }

    /// Incast aims every packet at one of the first `targets` nodes,
    /// round-robin, and never sources a packet from a victim aimed at
    /// itself.
    #[test]
    fn incast_targets_only_victims(seed in 0u64..1_000, targets in 1u16..8, ticks in 1usize..32) {
        let pattern = TrafficPattern::Incast { targets };
        let mut ct = CrossTraffic::new(cfg_with(pattern, seed));
        for p in emit(&mut ct, ticks).iter().flatten() {
            let Endpoint::Node(dst) = p.dst else {
                prop_assert!(false, "incast packet with non-node dst");
                return Ok(());
            };
            prop_assert!(dst < targets);
            prop_assert!(p.src != p.dst);
        }
    }

    /// The priority virtual channel never lets a high-priority packet
    /// queue behind low-priority traffic that requested the link after it:
    /// once a high packet is enqueued on a link, no low packet starts
    /// service on that link before it does (non-preemptive vc_depth=1 —
    /// the packet already on the wire finishes).
    #[test]
    fn high_priority_never_queues_behind_later_low(
        pairs in proptest::collection::vec((0usize..32, 0usize..32, 0u8..4), 8..48)
    ) {
        let mut net = Network::new(NetConfig::alewife());
        net.enable_recording(4096);
        let mut q = EventQueue::new();
        let mut pris = Vec::new();
        for (tag, &(src, dst, kind)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            let pri = if kind == 0 { Priority::High } else { Priority::Low };
            let pkt = Packet::protocol(
                Endpoint::node(src),
                Endpoint::node(dst),
                64,
                PacketClass::Data,
                tag as u64,
            )
            .with_priority(pri);
            let mut sched = Vec::new();
            net.inject(Time::ZERO, pkt, &mut |t, e| sched.push((t, e)));
            for (t, e) in sched {
                q.schedule(t, e);
            }
            // Record ids are assigned in injection order.
            pris.push(pri);
        }
        let delivered = drain(&mut net, q);
        prop_assert_eq!(delivered.len(), pris.len());
        let rec = net.take_recording().expect("recording enabled");
        prop_assert_eq!(rec.packets.len(), pris.len());
        for hi in rec.hops.iter().filter(|h| pris[h.packet as usize] == Priority::High) {
            for low in rec
                .hops
                .iter()
                .filter(|h| h.link == hi.link && pris[h.packet as usize] == Priority::Low)
            {
                prop_assert!(
                    low.start <= hi.enqueued || low.start >= hi.start,
                    "low packet {} started on link {} at {} while high packet {} \
                     waited (enqueued {}, started {})",
                    low.packet,
                    hi.link,
                    low.start,
                    hi.packet,
                    hi.enqueued,
                    hi.start
                );
            }
        }
    }

    /// An all-low workload (the baseline variant's traffic) never touches
    /// the priority machinery: no bypasses, no starvation on any link.
    #[test]
    fn baseline_traffic_never_triggers_priority_channel(
        pairs in proptest::collection::vec((0usize..32, 0usize..32), 8..48)
    ) {
        let mut net = Network::new(NetConfig::alewife());
        let mut q = EventQueue::new();
        let mut injected = 0;
        for (tag, &(src, dst)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            let pkt = Packet::protocol(
                Endpoint::node(src),
                Endpoint::node(dst),
                64,
                PacketClass::Data,
                tag as u64,
            );
            let mut sched = Vec::new();
            net.inject(Time::ZERO, pkt, &mut |t, e| sched.push((t, e)));
            for (t, e) in sched {
                q.schedule(t, e);
            }
            injected += 1;
        }
        let delivered = drain(&mut net, q);
        prop_assert_eq!(delivered.len(), injected);
        prop_assert_eq!(net.stats().priority_bypasses, 0);
        prop_assert_eq!(net.stats().low_bypassed, 0);
        for link in 0..net.num_links() {
            prop_assert_eq!(net.link_starvation(link), 0);
        }
    }
}

/// Directed witness: a high-priority packet overtakes an already-queued
/// low-priority packet on a contended link, and the starvation counters
/// see it.
#[test]
fn high_priority_bypasses_queued_low() {
    let mut net = Network::new(NetConfig::alewife());
    net.enable_recording(64);
    let mut q = EventQueue::new();
    // Nodes 0 and 1 both route through the 1->2 link to reach node 2 in
    // the 8x4 dimension-order mesh. A huge low packet from node 1 holds
    // the link long enough for node 0's two small packets to arrive and
    // queue behind it — the high one must go first when the link frees.
    let inject = |net: &mut Network, q: &mut EventQueue<NetEvent>, src, tag, bytes, pri| {
        let pkt = Packet::protocol(
            Endpoint::node(src),
            Endpoint::node(2),
            bytes,
            PacketClass::Data,
            tag,
        )
        .with_priority(pri);
        let mut sched = Vec::new();
        net.inject(Time::ZERO, pkt, &mut |t, e| sched.push((t, e)));
        for (t, e) in sched {
            q.schedule(t, e);
        }
    };
    inject(&mut net, &mut q, 1, 0, 16_384, Priority::Low);
    inject(&mut net, &mut q, 0, 1, 64, Priority::Low);
    inject(&mut net, &mut q, 0, 2, 64, Priority::High);
    let delivered = drain(&mut net, q);
    assert_eq!(delivered.len(), 3);
    let arrival = |tag: u64| delivered.iter().find(|&&(_, t)| t == tag).unwrap().0;
    assert!(
        arrival(2) < arrival(1),
        "high packet (tag 2) must arrive before the low packet (tag 1) queued ahead of it: \
         high at {}, low at {}",
        arrival(2),
        arrival(1)
    );
    assert!(net.stats().priority_bypasses >= 1);
    assert!(net.stats().low_bypassed >= 1);
    assert!((0..net.num_links()).any(|l| net.link_starvation(l) > 0));
}
