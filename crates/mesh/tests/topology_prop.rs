//! Property tests for the topology layer: computed routing must agree with
//! the legacy `RouteTable` oracle on the paper's mesh, and every topology
//! must satisfy the routing contract (minimality, continuity, symmetry
//! where applicable) on random node pairs.

use commsense_mesh::{
    Dragonfly, Endpoint, FatTree, Mesh, RouteTable, Topo, TopoSpec, Topology, Torus,
};
use proptest::prelude::*;

/// Walks the computed route `src -> dst` and returns its link ids.
fn computed_route(t: &impl Topology, src: Endpoint, dst: Endpoint) -> Vec<usize> {
    (0..t.route_len(src, dst))
        .map(|h| t.route_hop(src, dst, h))
        .collect()
}

/// Asserts the full routing contract for one node pair.
fn assert_route_contract(t: &Topo, a: usize, b: usize) {
    let route = computed_route(t, Endpoint::node(a), Endpoint::node(b));
    assert_eq!(route.len(), t.hops(a, b), "{}: {a}->{b}", t.describe());
    let mut at = t.node_vertex(a);
    for (h, &link) in route.iter().enumerate() {
        assert!(link < t.num_links());
        let (from, to) = t.link_ends(link);
        assert_eq!(from, at, "{}: hop {h} of {a}->{b}", t.describe());
        at = to;
    }
    assert_eq!(at, t.node_vertex(b), "{}: {a}->{b}", t.describe());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The computed dimension-order route is hop-for-hop identical to the
    /// precomputed `RouteTable` on the paper's 8×4 mesh, for compute-node
    /// pairs and both I/O directions.
    #[test]
    fn computed_routing_matches_route_table_oracle(
        src in 0usize..32,
        dst in 0usize..32,
        row in 0u16..4,
    ) {
        let mesh = Mesh::new(8, 4);
        let table = RouteTable::new(&mesh);
        if src != dst {
            let (s, d) = (Endpoint::node(src), Endpoint::node(dst));
            let oracle: Vec<usize> =
                table.route(table.key(s, d)).iter().map(|&l| l as usize).collect();
            prop_assert_eq!(computed_route(&mesh, s, d), oracle, "{}->{}", src, dst);
        }
        for (s, d) in [
            (Endpoint::IoWest(row), Endpoint::IoEast(row)),
            (Endpoint::IoEast(row), Endpoint::IoWest(row)),
        ] {
            let oracle: Vec<usize> =
                table.route(table.key(s, d)).iter().map(|&l| l as usize).collect();
            prop_assert_eq!(computed_route(&mesh, s, d), oracle, "{:?}->{:?}", s, d);
        }
    }

    /// Mesh routes are minimal (Manhattan distance) and symmetric in length.
    #[test]
    fn mesh_routes_minimal_and_symmetric(
        w in 2u16..20, h in 1u16..20, seed in any::<u64>(),
    ) {
        let t = Topo::Mesh(Mesh::new(w, h));
        let n = t.num_nodes();
        let (a, b) = ((seed as usize) % n, (seed >> 32) as usize % n);
        prop_assume!(a != b);
        assert_route_contract(&t, a, b);
        let (ax, ay) = (a % w as usize, a / w as usize);
        let (bx, by) = (b % w as usize, b / w as usize);
        prop_assert_eq!(t.hops(a, b), ax.abs_diff(bx) + ay.abs_diff(by));
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
    }

    /// Torus routes are minimal (ring distance per dimension) and symmetric
    /// in length.
    #[test]
    fn torus_routes_minimal_and_symmetric(
        w in 2u16..20, h in 2u16..20, seed in any::<u64>(),
    ) {
        let t = Topo::Torus(Torus::new(w, h));
        let n = t.num_nodes();
        let (a, b) = ((seed as usize) % n, (seed >> 32) as usize % n);
        prop_assume!(a != b);
        assert_route_contract(&t, a, b);
        let ring = |from: usize, to: usize, len: usize| {
            let fwd = (to + len - from) % len;
            fwd.min(len - fwd)
        };
        let (w, h) = (w as usize, h as usize);
        let want = ring(a % w, b % w, w) + ring(a / w, b / w, h);
        prop_assert_eq!(t.hops(a, b), want);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
    }

    /// Fat-tree routes are minimal (twice the LCA level) and symmetric in
    /// length.
    #[test]
    fn fat_tree_routes_minimal_and_symmetric(
        arity in 2u16..5, levels in 1u16..6, seed in any::<u64>(),
    ) {
        let t = Topo::FatTree(FatTree::new(arity, levels));
        let n = t.num_nodes();
        let (a, b) = ((seed as usize) % n, (seed >> 32) as usize % n);
        prop_assume!(a != b);
        assert_route_contract(&t, a, b);
        let (mut x, mut y, mut lca) = (a, b, 0);
        while x != y {
            x /= arity as usize;
            y /= arity as usize;
            lca += 1;
        }
        prop_assert_eq!(t.hops(a, b), 2 * lca);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
    }

    /// Dragonfly routes are minimal-group routes: at most one intra hop at
    /// each end around a single global hop. Hop *symmetry* is intentionally
    /// not asserted — the global-channel attach router differs per
    /// direction, so a->b and b->a may differ by one intra hop.
    #[test]
    fn dragonfly_routes_are_minimal_group(
        groups in 2u16..12, size in 1u16..12, seed in any::<u64>(),
    ) {
        let t = Topo::Dragonfly(Dragonfly::new(groups, size));
        let n = t.num_nodes();
        let (a, b) = ((seed as usize) % n, (seed >> 32) as usize % n);
        prop_assume!(a != b);
        assert_route_contract(&t, a, b);
        let same_group = a / size as usize == b / size as usize;
        if same_group {
            prop_assert_eq!(t.hops(a, b), 1);
        } else {
            prop_assert!((1..=3).contains(&t.hops(a, b)));
            // Exactly one global hop.
            let route = computed_route(&t, Endpoint::node(a), Endpoint::node(b));
            let globals = route
                .iter()
                .filter(|&&l| {
                    let (from, to) = t.link_ends(l);
                    from / size as u64 != to / size as u64
                })
                .count();
            prop_assert_eq!(globals, 1);
        }
    }

    /// Every topology's cross-traffic streams cross the bisection exactly
    /// once, whichever shape the sweep picks.
    #[test]
    fn io_streams_cross_bisection_once(kind in 0usize..4, nodes_pow in 4u32..10) {
        let nodes = 1usize << nodes_pow;
        let spec = TopoSpec::with_nodes(TopoSpec::KINDS[kind], nodes);
        let t = spec.build();
        for s in 0..t.io_streams() {
            for (src, dst) in [
                (Endpoint::IoWest(s), Endpoint::IoEast(s)),
                (Endpoint::IoEast(s), Endpoint::IoWest(s)),
            ] {
                let crossings = computed_route(&t, src, dst)
                    .iter()
                    .filter(|&&l| t.crosses_bisection(l))
                    .count();
                prop_assert_eq!(crossings, 1, "{} stream {}", t.describe(), s);
            }
        }
    }
}
