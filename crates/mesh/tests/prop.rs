//! Property tests: the network neither loses nor duplicates packets, and
//! delivery times respect the analytic minimum.

use commsense_des::{EventQueue, Time};
use commsense_mesh::{Endpoint, NetConfig, NetEvent, Network, Packet, PacketClass};
use proptest::prelude::*;

/// Drives a network to quiescence, returning `(arrival, tag)` pairs.
fn drain(net: &mut Network, mut q: EventQueue<NetEvent>) -> Vec<(Time, u64)> {
    let mut out = Vec::new();
    while let Some((t, ev)) = q.pop() {
        let mut sched = Vec::new();
        if let Some(d) = net.handle(t, ev, &mut |t2, e2| sched.push((t2, e2))) {
            out.push((t, d.packet.tag));
        }
        for (t2, e2) in sched {
            q.schedule(t2, e2);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every compute-node packet is delivered exactly once, no earlier
    /// than its uncongested minimum (head latency + serialization).
    #[test]
    fn no_loss_no_duplication_no_time_travel(
        pairs in proptest::collection::vec((0usize..32, 0usize..32, 8u32..256), 1..60)
    ) {
        let cfg = NetConfig::alewife();
        let mut net = Network::new(cfg.clone());
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        for (tag, &(src, dst, bytes)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            let pkt = Packet::protocol(
                Endpoint::node(src),
                Endpoint::node(dst),
                bytes.max(8),
                PacketClass::Data,
                tag as u64,
            );
            let mut sched = Vec::new();
            net.inject(Time::ZERO, pkt, &mut |t, e| sched.push((t, e)));
            for (t, e) in sched {
                q.schedule(t, e);
            }
            let hops = net.topo().hops(src, dst) as u64;
            let min = hops * cfg.router_delay_ps
                + bytes.max(8) as u64 * cfg.ps_per_byte;
            expected.push((tag as u64, Time::from_ps(min)));
        }
        let delivered = drain(&mut net, q);
        prop_assert_eq!(delivered.len(), expected.len(), "every packet arrives once");
        let mut tags: Vec<u64> = delivered.iter().map(|&(_, tag)| tag).collect();
        tags.sort_unstable();
        let mut want: Vec<u64> = expected.iter().map(|&(tag, _)| tag).collect();
        want.sort_unstable();
        prop_assert_eq!(tags, want);
        for &(t, tag) in &delivered {
            let (_, min) = expected.iter().find(|&&(w, _)| w == tag).expect("expected tag");
            prop_assert!(t >= *min, "tag {tag} arrived {t} before minimum {min}");
        }
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Cross-traffic floods never deadlock the network or leak flights.
    #[test]
    fn cross_traffic_flood_terminates(rows in 1u16..4, waves in 1usize..12) {
        let mut net = Network::new(NetConfig::alewife());
        let mut q = EventQueue::new();
        for w in 0..waves {
            for row in 0..rows {
                let pkt =
                    Packet::cross_traffic(Endpoint::IoWest(row), Endpoint::IoEast(row), 64);
                let mut sched = Vec::new();
                net.inject(Time::from_ns(w as u64 * 10), pkt, &mut |t, e| sched.push((t, e)));
                for (t, e) in sched {
                    q.schedule(t, e);
                }
            }
        }
        let delivered = drain(&mut net, q);
        prop_assert!(delivered.is_empty(), "cross traffic exits off-edge");
        prop_assert_eq!(net.in_flight(), 0);
        prop_assert_eq!(net.stats().packets_delivered, (rows as u64) * waves as u64);
    }
}
