//! Message-passing substrate: active messages, remote queues, bulk DMA.
//!
//! Alewife supports user-level active messages of the form
//! `send_am(proc, handler, args...)`: the message interrupts the destination
//! processor (or is deferred to an explicit poll under the Remote Queues
//! abstraction) and runs `handler` with `args`. Bulk transfer appends
//! `(address, length)` DMA descriptors to an active message; the CMMU
//! streams the described memory after the handler arguments.
//!
//! This crate provides the data types and cost model for those mechanisms:
//!
//! * [`ActiveMessage`] — handler id + up to fourteen 32-bit argument words
//!   (seven 64-bit words here) + optional DMA payload, with wire-size and
//!   gather/scatter cost computation.
//! * [`RemoteQueue`] — the polled receive queue with occupancy statistics.
//! * [`MsgCosts`] — processor-overhead constants calibrated to the paper's
//!   numbers: a null active message costs 102 cycles end-to-end plus 0.8
//!   cycles per hop; interrupts are expensive relative to polling; gather /
//!   scatter copying costs up to 60 cycles per 16-byte line; DMA requires
//!   double-word alignment (the padding visibly hurts ICCG's small bulk
//!   transfers in Figure 5).
//! * [`BarrierTree`] — the combining tree used by the message-passing
//!   barrier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod barrier;
mod costs;
mod rqueue;

pub use active::{ActiveMessage, HandlerId, MAX_AM_ARGS};
pub use barrier::BarrierTree;
pub use costs::MsgCosts;
pub use rqueue::RemoteQueue;
