//! The Remote Queues polled receive queue.

use std::collections::VecDeque;

use crate::active::ActiveMessage;

/// A polled receive queue of active messages at one node.
///
/// Under the Remote Queues abstraction, arriving user-level messages are
/// deferred until the application reaches an explicit polling point, while
/// system messages are delivered through selective interrupts (the machine
/// layer routes system handlers around this queue).
///
/// # Examples
///
/// ```
/// use commsense_msgpass::{ActiveMessage, HandlerId, RemoteQueue};
///
/// let mut q = RemoteQueue::new();
/// q.push(ActiveMessage::new(0, HandlerId(1), vec![7]));
/// assert_eq!(q.len(), 1);
/// let m = q.pop().unwrap();
/// assert_eq!(m.args, vec![7]);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemoteQueue {
    queue: VecDeque<ActiveMessage>,
    max_depth: usize,
    total_enqueued: u64,
}

impl RemoteQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RemoteQueue::default()
    }

    /// Enqueues an arrived message.
    pub fn push(&mut self, am: ActiveMessage) {
        self.queue.push_back(am);
        self.max_depth = self.max_depth.max(self.queue.len());
        self.total_enqueued += 1;
    }

    /// Dequeues the oldest message, if any.
    pub fn pop(&mut self) -> Option<ActiveMessage> {
        self.queue.pop_front()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Deepest the queue has ever been (network back-pressure indicator).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total messages ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::HandlerId;

    #[test]
    fn fifo_order() {
        let mut q = RemoteQueue::new();
        for i in 0..5 {
            q.push(ActiveMessage::new(0, HandlerId(0), vec![i]));
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().args, vec![i]);
        }
    }

    #[test]
    fn depth_statistics() {
        let mut q = RemoteQueue::new();
        q.push(ActiveMessage::new(0, HandlerId(0), vec![]));
        q.push(ActiveMessage::new(0, HandlerId(0), vec![]));
        q.pop();
        q.push(ActiveMessage::new(0, HandlerId(0), vec![]));
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
