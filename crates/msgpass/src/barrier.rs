//! The combining tree used by the message-passing barrier.

/// A binary combining tree over `n` nodes, rooted at node 0.
///
/// The message-passing barrier sends "arrived" messages up the tree and a
/// "release" broadcast down it: `2(n-1)` messages per barrier episode in
/// `O(log n)` rounds.
///
/// # Examples
///
/// ```
/// use commsense_msgpass::BarrierTree;
///
/// let t = BarrierTree::new(8);
/// assert_eq!(t.parent(0), None);
/// assert_eq!(t.parent(5), Some(2));
/// assert_eq!(t.children(1), vec![3, 4]);
/// assert_eq!(t.expected_arrivals(0), 3); // two children + self
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierTree {
    n: usize,
}

impl BarrierTree {
    /// Creates a tree over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one node");
        BarrierTree { n }
    }

    /// Number of participating nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree is trivial (a single node).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: usize) -> Option<usize> {
        if node == 0 {
            None
        } else {
            Some((node - 1) / 2)
        }
    }

    /// The children of `node` that exist within the tree.
    pub fn children(&self, node: usize) -> Vec<usize> {
        [2 * node + 1, 2 * node + 2]
            .into_iter()
            .filter(|&c| c < self.n)
            .collect()
    }

    /// Arrivals `node` must observe before notifying its parent (its own
    /// arrival plus one message per child subtree).
    pub fn expected_arrivals(&self, node: usize) -> usize {
        1 + self.children(node).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_consistency() {
        let t = BarrierTree::new(32);
        for node in 1..32 {
            let p = t.parent(node).unwrap();
            assert!(t.children(p).contains(&node), "node {node} parent {p}");
        }
    }

    #[test]
    fn every_node_reachable_from_root() {
        let t = BarrierTree::new(13);
        let mut seen = [false; 13];
        let mut stack = vec![0];
        while let Some(n) = stack.pop() {
            assert!(!seen[n], "node visited twice");
            seen[n] = true;
            stack.extend(t.children(n));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaf_expects_only_self() {
        let t = BarrierTree::new(8);
        assert_eq!(t.expected_arrivals(7), 1);
        assert_eq!(t.expected_arrivals(3), 2); // one child (7)
    }

    #[test]
    fn single_node_tree() {
        let t = BarrierTree::new(1);
        assert_eq!(t.parent(0), None);
        assert!(t.children(0).is_empty());
        assert_eq!(t.expected_arrivals(0), 1);
    }
}
