//! Active messages with optional DMA payload.

/// Identifier of a message handler at the receiving node.
///
/// Application handlers use ids below [`HandlerId::SYSTEM_BASE`]; the
/// machine reserves the range above it for system services (the
/// message-passing barrier), which are received via selective interrupts
/// even when the application polls — the behavior the Remote Queues
/// abstraction provides on Alewife.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub u16);

impl HandlerId {
    /// First handler id reserved for machine-internal services.
    pub const SYSTEM_BASE: u16 = 0xFF00;

    /// Whether this handler is a machine-internal service handler.
    pub fn is_system(self) -> bool {
        self.0 >= Self::SYSTEM_BASE
    }
}

/// Maximum number of 64-bit argument words in an active message.
///
/// The Alewife network interface holds up to fourteen 32-bit arguments; we
/// carry seven 64-bit words, the same 56 bytes of argument capacity.
pub const MAX_AM_ARGS: usize = 7;

/// An active message: handler + argument words + optional DMA-appended bulk
/// payload.
///
/// # Examples
///
/// ```
/// use commsense_msgpass::{ActiveMessage, HandlerId};
///
/// // EM3D sends five double-word values plus a base index per message.
/// let am = ActiveMessage::new(3, HandlerId(1), vec![10, 1, 2, 3, 4, 5]);
/// assert_eq!(am.wire_bytes(), 8 + 6 * 8);
/// // A bulk-transfer message appends DMA data, padded to 8 bytes.
/// let bulk = ActiveMessage::with_bulk(3, HandlerId(2), vec![10], 100);
/// assert_eq!(bulk.wire_bytes(), 8 + 8 + 104);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveMessage {
    /// Destination node.
    pub dst: usize,
    /// Handler invoked at the destination.
    pub handler: HandlerId,
    /// Argument words (also the fine-grained data payload).
    pub args: Vec<u64>,
    /// Requested DMA payload bytes (before alignment padding).
    pub bulk_bytes: u32,
    /// The modeled content of the DMA payload, as 64-bit words, so
    /// receivers can compute verifiable results. Wire size is governed by
    /// `bulk_bytes` (which must cover `8 * bulk_data.len()`).
    pub bulk_data: Vec<u64>,
    /// 16-byte lines the sender must gather-copy into a contiguous buffer
    /// before the DMA can stream them (0 when data is already contiguous).
    pub gather_lines: u32,
    /// 16-byte lines the receiver must scatter-copy out of the landing
    /// buffer (0 when data is consumed in place).
    pub scatter_lines: u32,
}

impl ActiveMessage {
    /// Creates a fine-grained active message.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_AM_ARGS`] argument words are supplied.
    pub fn new(dst: usize, handler: HandlerId, args: Vec<u64>) -> Self {
        assert!(
            args.len() <= MAX_AM_ARGS,
            "active message holds at most {MAX_AM_ARGS} words"
        );
        ActiveMessage {
            dst,
            handler,
            args,
            bulk_bytes: 0,
            bulk_data: Vec::new(),
            gather_lines: 0,
            scatter_lines: 0,
        }
    }

    /// Creates a bulk-transfer message with `bulk_bytes` of DMA payload.
    pub fn with_bulk(dst: usize, handler: HandlerId, args: Vec<u64>, bulk_bytes: u32) -> Self {
        let mut am = ActiveMessage::new(dst, handler, args);
        am.bulk_bytes = bulk_bytes;
        am
    }

    /// Attaches modeled DMA payload content (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the declared `bulk_bytes` cannot hold the data.
    pub fn data(mut self, words: Vec<u64>) -> Self {
        assert!(
            8 * words.len() as u32 <= self.padded_bulk_bytes(),
            "bulk_bytes {} too small for {} data words",
            self.bulk_bytes,
            words.len()
        );
        self.bulk_data = words;
        self
    }

    /// Sets the sender-side gather copy cost (builder style).
    pub fn gather(mut self, lines: u32) -> Self {
        self.gather_lines = lines;
        self
    }

    /// Sets the receiver-side scatter copy cost (builder style).
    pub fn scatter(mut self, lines: u32) -> Self {
        self.scatter_lines = lines;
        self
    }

    /// DMA payload bytes after Alewife's double-word alignment padding.
    pub fn padded_bulk_bytes(&self) -> u32 {
        self.bulk_bytes.div_ceil(8) * 8
    }

    /// Total size on the wire: 8-byte header + arguments + padded DMA data.
    pub fn wire_bytes(&self) -> u32 {
        8 + 8 * self.args.len() as u32 + self.padded_bulk_bytes()
    }

    /// Payload bytes (everything except the header) for volume accounting.
    pub fn payload_bytes(&self) -> u32 {
        self.wire_bytes() - 8
    }

    /// Bytes of alignment padding added by DMA (Figure 5 shows this eating
    /// ICCG's header savings).
    pub fn padding_bytes(&self) -> u32 {
        self.padded_bulk_bytes() - self.bulk_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_message_is_header_only() {
        let am = ActiveMessage::new(0, HandlerId(0), vec![]);
        assert_eq!(am.wire_bytes(), 8);
        assert_eq!(am.payload_bytes(), 0);
    }

    #[test]
    fn dma_padding_to_double_words() {
        let am = ActiveMessage::with_bulk(0, HandlerId(0), vec![], 13);
        assert_eq!(am.padded_bulk_bytes(), 16);
        assert_eq!(am.padding_bytes(), 3);
        let aligned = ActiveMessage::with_bulk(0, HandlerId(0), vec![], 16);
        assert_eq!(aligned.padding_bytes(), 0);
    }

    #[test]
    fn gather_scatter_builders() {
        let am = ActiveMessage::with_bulk(1, HandlerId(4), vec![2], 64)
            .gather(4)
            .scatter(4);
        assert_eq!(am.gather_lines, 4);
        assert_eq!(am.scatter_lines, 4);
    }

    #[test]
    fn system_handler_range() {
        assert!(!HandlerId(5).is_system());
        assert!(HandlerId(HandlerId::SYSTEM_BASE).is_system());
        assert!(HandlerId(0xFFFF).is_system());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_args_rejected() {
        let _ = ActiveMessage::new(0, HandlerId(0), vec![0; MAX_AM_ARGS + 1]);
    }
}
