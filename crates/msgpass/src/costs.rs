//! Processor-overhead cost model for message passing.

use crate::active::ActiveMessage;

/// Processor cycle costs of the message-passing mechanisms, calibrated to
/// the Alewife numbers quoted in the paper.
///
/// Calibration targets:
///
/// * Null active message end-to-end ≈ 102 cycles + 0.8 cycles/hop (§3.2):
///   cheap CMMU-mapped sends (`send_base` ≈ 20) plus an expensive receive
///   interrupt (Sparcle trap entry, register-window spill: ≈ 70) and
///   handler dispatch (≈ 12); the mesh model contributes the rest.
/// * `send_per_arg` covers the indirect gather of irregular data into the
///   network send queue that the paper describes for the fine-grained
///   codes (§4.1.1).
/// * Polling cuts total per-message overhead by roughly a third relative
///   to interrupts (ICCG observes ~35%, §4.3.3).
/// * Gather/scatter copying costs up to 60 cycles per 16-byte line (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgCosts {
    /// Cycles to construct and launch a message (header + descriptor).
    pub send_base: u64,
    /// Cycles per 64-bit argument word stored to the network interface.
    pub send_per_arg: u64,
    /// Cycles to take a message interrupt (trap entry + state save/restore).
    pub interrupt_base: u64,
    /// Cycles to dequeue one message from the remote queue under polling.
    pub poll_per_msg: u64,
    /// Cycles for one poll call that finds the queue empty.
    pub poll_empty: u64,
    /// Cycles to decode a message and dispatch its handler.
    pub dispatch: u64,
    /// Cycles to set up a DMA descriptor on send or receive.
    pub dma_setup: u64,
    /// Cycles to gather- or scatter-copy one 16-byte line.
    pub copy_per_line: u64,
    /// Cycles of CMMU occupancy to stream one 16-byte line of DMA data.
    pub dma_per_line: u64,
    /// Cycles to process a machine-internal (barrier) message.
    pub system_msg: u64,
}

impl MsgCosts {
    /// The Alewife calibration.
    pub fn alewife() -> Self {
        MsgCosts {
            send_base: 20,
            send_per_arg: 4,
            interrupt_base: 74,
            poll_per_msg: 16,
            poll_empty: 6,
            dispatch: 12,
            dma_setup: 20,
            copy_per_line: 60,
            dma_per_line: 2,
            system_msg: 10,
        }
    }

    /// Canonical field encoding for content-addressed result caching (see
    /// `commsense_des::stable`).
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        enc.put(&format!("{prefix}.send_base"), self.send_base);
        enc.put(&format!("{prefix}.send_per_arg"), self.send_per_arg);
        enc.put(&format!("{prefix}.interrupt_base"), self.interrupt_base);
        enc.put(&format!("{prefix}.poll_per_msg"), self.poll_per_msg);
        enc.put(&format!("{prefix}.poll_empty"), self.poll_empty);
        enc.put(&format!("{prefix}.dispatch"), self.dispatch);
        enc.put(&format!("{prefix}.dma_setup"), self.dma_setup);
        enc.put(&format!("{prefix}.copy_per_line"), self.copy_per_line);
        enc.put(&format!("{prefix}.dma_per_line"), self.dma_per_line);
        enc.put(&format!("{prefix}.system_msg"), self.system_msg);
    }

    /// Sender-side processor overhead for a message, in cycles.
    pub fn send_cycles(&self, am: &ActiveMessage) -> u64 {
        let mut c = self.send_base + self.send_per_arg * am.args.len() as u64;
        if am.bulk_bytes > 0 {
            c += self.dma_setup + self.copy_per_line * am.gather_lines as u64;
        }
        c
    }

    /// Receiver-side processor overhead, in cycles, given the receive mode.
    pub fn receive_cycles(&self, am: &ActiveMessage, polled: bool) -> u64 {
        let entry = if polled {
            self.poll_per_msg
        } else {
            self.interrupt_base
        };
        let mut c = entry + self.dispatch;
        if am.bulk_bytes > 0 {
            c += self.dma_setup + self.copy_per_line * am.scatter_lines as u64;
        }
        c
    }

    /// Receiver-side network-interface occupancy for draining a message, in
    /// cycles: how long the ejection port is held, which is what lets
    /// shared memory "pull messages out of the network much faster than
    /// message passing" (§5.1).
    pub fn drain_occupancy_cycles(
        &self,
        am: &ActiveMessage,
        polled: bool,
        queue_depth: usize,
    ) -> u64 {
        if am.handler.is_system() {
            return self.system_msg;
        }
        if polled {
            // The hardware queue absorbs bursts cheaply until it backs up.
            if queue_depth > 16 {
                self.poll_per_msg + self.dma_per_line * am.padded_bulk_bytes().div_ceil(16) as u64
            } else {
                4
            }
        } else {
            self.interrupt_base + self.dispatch
        }
    }
}

impl Default for MsgCosts {
    fn default() -> Self {
        MsgCosts::alewife()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::HandlerId;

    #[test]
    fn null_message_fixed_costs_near_calibration() {
        let c = MsgCosts::alewife();
        let am = ActiveMessage::new(0, HandlerId(0), vec![]);
        let fixed = c.send_cycles(&am) + c.receive_cycles(&am, false);
        // ~102-cycle end-to-end for a null AM, a few cycles of which the
        // mesh model contributes as wire/router time.
        assert!((95..=110).contains(&fixed), "fixed AM cost {fixed}");
    }

    #[test]
    fn polling_is_cheaper_than_interrupts() {
        let c = MsgCosts::alewife();
        let am = ActiveMessage::new(0, HandlerId(0), vec![1, 2, 3]);
        let int = c.receive_cycles(&am, false);
        let poll = c.receive_cycles(&am, true);
        assert!(poll < int);
        // Roughly a third cheaper or more (ICCG's ~35% observation).
        assert!(
            (poll as f64) < 0.75 * int as f64,
            "poll {poll} vs int {int}"
        );
    }

    #[test]
    fn bulk_costs_include_gather_and_dma_setup() {
        let c = MsgCosts::alewife();
        let plain = ActiveMessage::new(0, HandlerId(0), vec![1]);
        let bulk = ActiveMessage::with_bulk(0, HandlerId(0), vec![1], 160).gather(10);
        assert_eq!(
            c.send_cycles(&bulk) - c.send_cycles(&plain),
            c.dma_setup + 10 * c.copy_per_line
        );
    }

    #[test]
    fn scatter_costs_on_receive() {
        let c = MsgCosts::alewife();
        let bulk = ActiveMessage::with_bulk(0, HandlerId(0), vec![], 160).scatter(10);
        let rx = c.receive_cycles(&bulk, true);
        assert!(rx >= 10 * c.copy_per_line);
    }

    #[test]
    fn drain_occupancy_modes() {
        let c = MsgCosts::alewife();
        let am = ActiveMessage::new(0, HandlerId(0), vec![]);
        let sys = ActiveMessage::new(0, HandlerId(HandlerId::SYSTEM_BASE), vec![]);
        assert!(c.drain_occupancy_cycles(&am, false, 0) > c.drain_occupancy_cycles(&am, true, 0));
        assert!(c.drain_occupancy_cycles(&am, true, 20) > c.drain_occupancy_cycles(&am, true, 0));
        assert_eq!(c.drain_occupancy_cycles(&sys, true, 0), c.system_msg);
    }
}
