//! The UNSTRUC unstructured 3-D mesh.
//!
//! UNSTRUC simulates fluid flow over an unstructured mesh of nodes, edges,
//! and faces. The paper's MESH2K input has 2000 nodes; each edge costs 75
//! single-precision FLOPs, giving the application a high computation-to-
//! communication ratio. Unlike EM3D's bipartite red/black structure, every
//! node is recomputed every iteration, so old values must be buffered.

use commsense_des::Rng;

use crate::partition::{greedy_graph_growing, Adjacency};

/// How mesh nodes are assigned to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Contiguous index blocks (index order tracks spatial order here).
    #[default]
    Blocked,
    /// Greedy graph growing (a Chaco-style partition of the actual edges).
    GraphGrown,
}

/// UNSTRUC mesh parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UnstrucParams {
    /// Mesh nodes (MESH2K: 2000).
    pub nodes: usize,
    /// Average edges per node.
    pub avg_degree: usize,
    /// FLOPs of edge work (paper: 75 single-precision FLOPs per edge).
    pub flops_per_edge: u64,
    /// Iterations.
    pub iterations: usize,
    /// Generator seed.
    pub seed: u64,
}

impl UnstrucParams {
    /// The paper's MESH2K-like configuration.
    pub fn paper() -> Self {
        UnstrucParams {
            nodes: 2000,
            avg_degree: 7,
            flops_per_edge: 75,
            iterations: 10,
            seed: 0x05,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> Self {
        UnstrucParams {
            nodes: 256,
            avg_degree: 5,
            flops_per_edge: 75,
            iterations: 2,
            seed: 0x05,
        }
    }
}

/// A generated unstructured mesh, partitioned spatially.
#[derive(Debug, Clone)]
pub struct UnstrucMesh {
    /// Parameters used.
    pub params: UnstrucParams,
    /// Processor count it was partitioned for.
    pub nprocs: usize,
    /// Owning processor per node.
    pub owner: Vec<u16>,
    /// Undirected edges (u < v).
    pub edges: Vec<(u32, u32)>,
    /// Edge weights.
    pub weights: Vec<f64>,
    /// Faces (triangles of mesh nodes) — local compute only.
    pub faces: Vec<[u32; 3]>,
    /// Initial node values.
    pub init: Vec<f64>,
}

impl UnstrucMesh {
    /// Generates a jittered-grid mesh partitioned over `nprocs`.
    ///
    /// Points are laid out along a space-filling (row-major 3-D grid)
    /// order and connected to nearby points, so the blocked partition has
    /// spatial locality and a minority of edges cross processors — like a
    /// real partitioned mesh.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer nodes than processors.
    pub fn generate(params: &UnstrucParams, nprocs: usize) -> Self {
        Self::generate_with_partition(params, nprocs, PartitionStrategy::Blocked)
    }

    /// Generates a mesh with an explicit partition strategy.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer nodes than processors.
    pub fn generate_with_partition(
        params: &UnstrucParams,
        nprocs: usize,
        strategy: PartitionStrategy,
    ) -> Self {
        assert!(
            params.nodes >= nprocs,
            "need at least one node per processor"
        );
        let n = params.nodes;
        let mut rng = Rng::new(params.seed);
        let per_proc = n.div_ceil(nprocs);
        let owner: Vec<u16> = (0..n)
            .map(|i| ((i / per_proc).min(nprocs - 1)) as u16)
            .collect();

        // Connect each node to ~avg_degree neighbors drawn from a window of
        // nearby indices (index order == spatial order for a grid walk).
        let window = (per_proc / 2).max(params.avg_degree * 4).max(8);
        let mut edge_set = std::collections::BTreeSet::new();
        let target_edges = n * params.avg_degree / 2;
        let mut guard = 0;
        while edge_set.len() < target_edges && guard < target_edges * 20 {
            guard += 1;
            let u = rng.index(n);
            let lo = u.saturating_sub(window);
            let hi = (u + window + 1).min(n);
            let v = lo + rng.index(hi - lo);
            if u != v {
                let (a, b) = (u.min(v) as u32, u.max(v) as u32);
                edge_set.insert((a, b));
            }
        }
        let edges: Vec<(u32, u32)> = edge_set.into_iter().collect();
        let weights: Vec<f64> = edges.iter().map(|_| rng.f64() * 0.01).collect();

        // Faces: triangles formed by consecutive edge pairs sharing a node.
        let mut faces = Vec::new();
        for w in edges.windows(2) {
            let (a, b) = w[0];
            let (c, d) = w[1];
            if a == c && b != d {
                faces.push([a, b, d]);
            }
        }

        let init: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        let owner = match strategy {
            PartitionStrategy::Blocked => owner,
            PartitionStrategy::GraphGrown => {
                greedy_graph_growing(&Adjacency::from_edges(n, &edges), nprocs)
            }
        };
        UnstrucMesh {
            params: params.clone(),
            nprocs,
            owner,
            edges,
            weights,
            faces,
            init,
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the mesh is empty.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Indices of the nodes owned by processor `p`.
    pub fn nodes_of(&self, p: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.owner[i] as usize == p)
            .collect()
    }

    /// Indices of the edges whose *lower endpoint* is owned by `p` (the
    /// processor that computes the edge).
    pub fn edges_of(&self, p: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&e| self.owner[self.edges[e].0 as usize] as usize == p)
            .collect()
    }

    /// Fraction of edges crossing processors.
    pub fn cut_fraction(&self) -> f64 {
        let cut = self
            .edges
            .iter()
            .filter(|&&(u, v)| self.owner[u as usize] != self.owner[v as usize])
            .count();
        cut as f64 / self.edges.len().max(1) as f64
    }

    /// The per-edge flux kernel: antisymmetric exchange between the two
    /// endpoint values (stands in for the 75-FLOP fluid computation).
    pub fn flux(&self, e: usize, vals: &[f64]) -> f64 {
        let (u, v) = self.edges[e];
        (vals[u as usize] - vals[v as usize]) * self.weights[e]
    }

    /// One sequential iteration: edge phase accumulates fluxes into
    /// forces, node phase integrates them.
    pub fn iterate(&self, vals: &mut [f64]) {
        let old = vals.to_vec();
        let mut force = vec![0.0; self.len()];
        for e in 0..self.edges.len() {
            let f = self.flux(e, &old);
            let (u, v) = self.edges[e];
            force[u as usize] += f;
            force[v as usize] -= f;
        }
        for i in 0..self.len() {
            vals[i] = old[i] + force[i];
        }
    }

    /// The sequential reference: node values after all iterations.
    pub fn reference(&self) -> Vec<f64> {
        let mut vals = self.init.clone();
        for _ in 0..self.params.iterations {
            self.iterate(&mut vals);
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let p = UnstrucParams::small();
        let a = UnstrucMesh::generate(&p, 8);
        let b = UnstrucMesh::generate(&p, 8);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.init, b.init);
    }

    #[test]
    fn edges_are_canonical_and_unique() {
        let m = UnstrucMesh::generate(&UnstrucParams::small(), 8);
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &m.edges {
            assert!(u < v, "canonical order");
            assert!(seen.insert((u, v)), "duplicate edge");
            assert!((v as usize) < m.len());
        }
    }

    #[test]
    fn degree_is_near_target() {
        let m = UnstrucMesh::generate(&UnstrucParams::paper(), 8);
        let avg = 2.0 * m.edges.len() as f64 / m.len() as f64;
        assert!((avg - 7.0).abs() < 1.0, "avg degree {avg}");
    }

    #[test]
    fn cut_fraction_is_a_minority() {
        let m = UnstrucMesh::generate(&UnstrucParams::paper(), 32);
        let f = m.cut_fraction();
        assert!(f > 0.0 && f < 0.5, "cut fraction {f}");
    }

    #[test]
    fn edges_of_partitions_all_edges() {
        let m = UnstrucMesh::generate(&UnstrucParams::small(), 8);
        let total: usize = (0..8).map(|p| m.edges_of(p).len()).sum();
        assert_eq!(total, m.edges.len());
    }

    #[test]
    fn iterate_conserves_total_value() {
        // Fluxes are antisymmetric, so the sum of values is invariant.
        let m = UnstrucMesh::generate(&UnstrucParams::small(), 4);
        let before: f64 = m.init.iter().sum();
        let after: f64 = m.reference().iter().sum();
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn graph_grown_partition_cuts_fewer_edges() {
        let p = UnstrucParams::paper();
        let blocked = UnstrucMesh::generate_with_partition(&p, 32, PartitionStrategy::Blocked);
        let grown = UnstrucMesh::generate_with_partition(&p, 32, PartitionStrategy::GraphGrown);
        assert_eq!(blocked.edges, grown.edges, "same mesh, different partition");
        assert!(
            grown.cut_fraction() <= blocked.cut_fraction() * 1.05,
            "graph growing should not cut more: {} vs {}",
            grown.cut_fraction(),
            blocked.cut_fraction()
        );
    }

    #[test]
    fn faces_reference_valid_nodes() {
        let m = UnstrucMesh::generate(&UnstrucParams::small(), 4);
        for f in &m.faces {
            for &x in f {
                assert!((x as usize) < m.len());
            }
        }
    }
}
