//! The ICCG sparse lower-triangular system and its dataflow schedule.
//!
//! The paper measures the sparse triangular solve kernel of an incomplete-
//! Cholesky-preconditioned conjugate gradient solver on BCSSTK32, a
//! 2-million-element structural matrix from the Harwell–Boeing suite. We
//! do not have that dataset, so this module generates a synthetic
//! banded-plus-fill unit lower-triangular system with a controllable DAG
//! level structure: what drives ICCG's communication behavior is the level
//! schedule (how much parallelism each wavefront has) and the cross-
//! processor edge fraction, both of which the generator exposes.
//!
//! Each graph node performs a 2-FLOP computation per incoming edge
//! (multiply and subtract), then communicates along its outgoing edges —
//! a dataflow computation in the paper's terms.

use commsense_des::Rng;

/// ICCG system parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IccgParams {
    /// Matrix rows (DAG nodes).
    pub rows: usize,
    /// Average strict-lower-triangle nonzeros per row (incoming edges).
    pub avg_band: usize,
    /// Fraction of off-diagonal entries drawn far from the diagonal
    /// (creates irregular long-range dependencies).
    pub far_fraction: f64,
    /// Rows per partition chunk: chunks are dealt round-robin to
    /// processors, so most in-band dependencies stay within a chunk or its
    /// predecessor (the paper notes ICCG's ratio of *remote* data is low
    /// even though the message count is large).
    pub chunk_rows: usize,
    /// Generator seed.
    pub seed: u64,
}

impl IccgParams {
    /// A BCSSTK32-flavoured configuration scaled to simulator size.
    pub fn paper() -> Self {
        IccgParams {
            rows: 6000,
            avg_band: 8,
            far_fraction: 0.08,
            chunk_rows: 64,
            seed: 0x1cc6,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> Self {
        IccgParams {
            rows: 400,
            avg_band: 4,
            far_fraction: 0.08,
            chunk_rows: 16,
            seed: 0x1cc6,
        }
    }
}

/// A unit lower-triangular system `L y = b` with its dataflow structure.
#[derive(Debug, Clone)]
pub struct IccgSystem {
    /// Parameters used.
    pub params: IccgParams,
    /// Processor count it was partitioned for.
    pub nprocs: usize,
    /// CSR row pointers into `cols`/`vals` (strict lower triangle).
    pub rowptr: Vec<u32>,
    /// Column indices of incoming edges (j < i for row i).
    pub cols: Vec<u32>,
    /// Values `L[i][j]` parallel to `cols`.
    pub vals: Vec<f64>,
    /// Outgoing edges per row: the rows that consume this row's solution.
    pub out_edges: Vec<Vec<u32>>,
    /// Right-hand side.
    pub b: Vec<f64>,
    /// Owning processor per row.
    pub owner: Vec<u16>,
    /// Dataflow level of each row (0 = no dependencies).
    pub level: Vec<u32>,
}

impl IccgSystem {
    /// Generates a system partitioned over `nprocs` processors.
    ///
    /// Rows are dealt to processors in contiguous chunks, keeping most
    /// banded dependencies local while the wavefront pipelines across
    /// processors — still "one of the most challenging applications in
    /// the literature" (§4.3): the message count stays high even though
    /// the remote-data ratio is low.
    ///
    /// # Panics
    ///
    /// Panics if `rows < 2`.
    pub fn generate(params: &IccgParams, nprocs: usize) -> Self {
        assert!(params.rows >= 2, "need at least two rows");
        let n = params.rows;
        let mut rng = Rng::new(params.seed);

        let mut rowptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        rowptr.push(0u32);
        for i in 0..n {
            let max_in = i.min(params.avg_band * 2);
            let nnz = if max_in == 0 {
                0
            } else {
                1 + rng.index(max_in.min(params.avg_band * 2 - 1).max(1))
            };
            let mut row = std::collections::BTreeSet::new();
            for _ in 0..nnz {
                let j = if rng.chance(params.far_fraction) {
                    rng.index(i)
                } else {
                    // Near the diagonal: within 2*band below i (structural
                    // finite-element matrices are strongly banded).
                    let w = (params.avg_band * 2).min(i);
                    i - 1 - rng.index(w.max(1)).min(i - 1)
                };
                row.insert(j as u32);
            }
            let nnz_row = row.len().max(1) as f64;
            for j in row {
                cols.push(j);
                // Scaled so |y| stays bounded through deep DAGs.
                vals.push((0.1 + 0.4 * rng.f64()) / nnz_row);
            }
            rowptr.push(cols.len() as u32);
        }

        // Levelization: level(i) = 1 + max level of predecessors.
        let mut level = vec![0u32; n];
        for i in 0..n {
            let (lo, hi) = (rowptr[i] as usize, rowptr[i + 1] as usize);
            let lvl = cols[lo..hi]
                .iter()
                .map(|&j| level[j as usize] + 1)
                .max()
                .unwrap_or(0);
            level[i] = lvl;
        }

        // Chunked round-robin partition: contiguous chunks of rows dealt
        // to processors in order, keeping in-band dependencies mostly
        // local while pipelining the wavefront across processors.
        let chunk = params.chunk_rows.max(1);
        let owner: Vec<u16> = (0..n).map(|i| ((i / chunk) % nprocs) as u16).collect();

        // Outgoing edge lists (CSC of the strict lower triangle).
        let mut out_edges = vec![Vec::new(); n];
        for i in 0..n {
            let (lo, hi) = (rowptr[i] as usize, rowptr[i + 1] as usize);
            for &j in &cols[lo..hi] {
                out_edges[j as usize].push(i as u32);
            }
        }

        let b: Vec<f64> = (0..n).map(|_| rng.f64() * 2.0 - 1.0).collect();
        IccgSystem {
            params: params.clone(),
            nprocs,
            rowptr,
            cols,
            vals,
            out_edges,
            b,
            owner,
            level,
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Nonzero count of the strict lower triangle.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Rows owned by processor `p`, in row order.
    pub fn rows_of(&self, p: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.owner[i] as usize == p)
            .collect()
    }

    /// Incoming edge count of row `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        (self.rowptr[i + 1] - self.rowptr[i]) as usize
    }

    /// Incoming `(col, val)` pairs of row `i`.
    pub fn in_edges(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (lo, hi) = (self.rowptr[i] as usize, self.rowptr[i + 1] as usize);
        self.cols[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Fraction of edges whose endpoints live on different processors.
    pub fn cut_fraction(&self) -> f64 {
        let mut cut = 0usize;
        for i in 0..self.len() {
            for (j, _) in self.in_edges(i) {
                if self.owner[i] != self.owner[j as usize] {
                    cut += 1;
                }
            }
        }
        cut as f64 / self.nnz().max(1) as f64
    }

    /// The sequential reference: solves `L y = b` by forward substitution
    /// (unit diagonal): `y[i] = b[i] - sum_j L[i][j] * y[j]`.
    pub fn reference(&self) -> Vec<f64> {
        let mut y = vec![0.0; self.len()];
        for i in 0..self.len() {
            let mut acc = self.b[i];
            for (j, v) in self.in_edges(i) {
                acc -= v * y[j as usize];
            }
            y[i] = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let p = IccgParams::small();
        let a = IccgSystem::generate(&p, 8);
        let b = IccgSystem::generate(&p, 8);
        assert_eq!(a.cols, b.cols);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn strictly_lower_triangular() {
        let s = IccgSystem::generate(&IccgParams::small(), 8);
        for i in 0..s.len() {
            for (j, _) in s.in_edges(i) {
                assert!((j as usize) < i, "entry ({i},{j}) not strictly lower");
            }
        }
    }

    #[test]
    fn levels_form_topological_order() {
        let s = IccgSystem::generate(&IccgParams::small(), 8);
        for i in 0..s.len() {
            for (j, _) in s.in_edges(i) {
                assert!(s.level[j as usize] < s.level[i], "level order violated");
            }
        }
    }

    #[test]
    fn out_edges_mirror_in_edges() {
        let s = IccgSystem::generate(&IccgParams::small(), 8);
        let mut count = 0;
        for j in 0..s.len() {
            for &i in &s.out_edges[j] {
                count += 1;
                assert!(s.in_edges(i as usize).any(|(c, _)| c == j as u32));
            }
        }
        assert_eq!(count, s.nnz());
    }

    #[test]
    fn partition_is_balanced() {
        let s = IccgSystem::generate(&IccgParams::paper(), 32);
        let counts: Vec<usize> = (0..32).map(|p| s.rows_of(p).len()).collect();
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(max - min <= s.len() / 32, "imbalanced {counts:?}");
    }

    #[test]
    fn cut_fraction_is_moderate_for_chunked_partition() {
        // The paper notes ICCG's ratio of remote data is low even though
        // it sends many messages: the banded structure keeps most
        // dependencies within a chunk, while far fill still crosses.
        let s = IccgSystem::generate(&IccgParams::paper(), 32);
        let f = s.cut_fraction();
        assert!(f > 0.05 && f < 0.5, "cut {f}");
    }

    #[test]
    fn reference_solves_the_system() {
        let s = IccgSystem::generate(&IccgParams::small(), 4);
        let y = s.reference();
        // Verify L y == b.
        for i in 0..s.len() {
            let mut lhs = y[i];
            for (j, v) in s.in_edges(i) {
                lhs += v * y[j as usize];
            }
            assert!((lhs - s.b[i]).abs() < 1e-9, "row {i}: {lhs} != {}", s.b[i]);
        }
    }

    #[test]
    fn first_row_has_no_dependencies() {
        let s = IccgSystem::generate(&IccgParams::small(), 4);
        assert_eq!(s.in_degree(0), 0);
        assert_eq!(s.level[0], 0);
    }
}

/// Error parsing a MatrixMarket file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMatrixError {
    /// The header line is missing or not a coordinate real matrix.
    BadHeader,
    /// The size line is missing or malformed.
    BadSize,
    /// An entry line is malformed or out of bounds (1-based line number).
    BadEntry(usize),
}

impl std::fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseMatrixError::BadHeader => {
                write!(f, "expected a MatrixMarket coordinate real matrix header")
            }
            ParseMatrixError::BadSize => write!(f, "missing or malformed size line"),
            ParseMatrixError::BadEntry(line) => {
                write!(f, "malformed or out-of-bounds entry at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseMatrixError {}

/// A parsed coordinate matrix: `(rows, cols, entries)` with 0-based
/// `(row, col, value)` entries.
pub type ParsedMatrix = (usize, usize, Vec<(u32, u32, f64)>);

/// Parses a MatrixMarket *coordinate real* matrix (`general` or
/// `symmetric`), returning `(rows, cols, entries)` with 0-based indices.
///
/// This is the format the Harwell–Boeing suite (the source of the paper's
/// BCSSTK32 input) is commonly distributed in today.
///
/// # Errors
///
/// Returns [`ParseMatrixError`] for non-coordinate/non-real headers,
/// malformed size or entry lines, or out-of-bounds indices.
///
/// # Examples
///
/// ```
/// use commsense_workloads::sparse::parse_matrix_market;
///
/// let text = "%%MatrixMarket matrix coordinate real symmetric\n\
///             % a 3x3 stiffness-like matrix\n\
///             3 3 4\n\
///             1 1 2.0\n2 1 -1.0\n3 2 -1.0\n3 3 2.0\n";
/// let (rows, cols, entries) = parse_matrix_market(text)?;
/// assert_eq!((rows, cols), (3, 3));
/// assert_eq!(entries.len(), 4);
/// assert_eq!(entries[1], (1, 0, -1.0));
/// # Ok::<(), commsense_workloads::sparse::ParseMatrixError>(())
/// ```
pub fn parse_matrix_market(text: &str) -> Result<ParsedMatrix, ParseMatrixError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseMatrixError::BadHeader)?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket")
        || !h.contains("coordinate")
        || !(h.contains("real") || h.contains("integer"))
    {
        return Err(ParseMatrixError::BadHeader);
    }
    // Skip comments.
    let mut size_line = None;
    for (i, l) in lines.by_ref() {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((i, t));
        break;
    }
    let (_, size) = size_line.ok_or(ParseMatrixError::BadSize)?;
    let mut it = size.split_whitespace();
    let rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseMatrixError::BadSize)?;
    let cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseMatrixError::BadSize)?;
    let nnz: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseMatrixError::BadSize)?;
    let mut entries = Vec::with_capacity(nnz);
    for (i, l) in lines {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseMatrixError::BadEntry(i + 1))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseMatrixError::BadEntry(i + 1))?;
        let v: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseMatrixError::BadEntry(i + 1))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(ParseMatrixError::BadEntry(i + 1));
        }
        entries.push(((r - 1) as u32, (c - 1) as u32, v));
    }
    if entries.len() != nnz {
        return Err(ParseMatrixError::BadSize);
    }
    Ok((rows, cols, entries))
}

impl IccgSystem {
    /// Builds the triangular-solve kernel from a real matrix's entries
    /// (e.g. a parsed Harwell–Boeing matrix): the strict lower triangle
    /// becomes the dependency DAG, entries are magnitude-normalized per
    /// row so the substitution stays bounded (this kernel is a performance
    /// benchmark; see DESIGN.md), and rows are partitioned in chunks as in
    /// [`IccgSystem::generate`].
    ///
    /// # Panics
    ///
    /// Panics if `rows < 2` or `nprocs == 0`.
    pub fn from_entries(
        rows: usize,
        entries: &[(u32, u32, f64)],
        nprocs: usize,
        chunk_rows: usize,
    ) -> Self {
        assert!(rows >= 2 && nprocs > 0, "degenerate system");
        let mut rng = Rng::new(0x1cc6);
        // Collect the strict lower triangle per row.
        let mut per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in entries {
            let (hi, lo) = if r > c { (r, c) } else { (c, r) };
            if hi != lo {
                per_row[hi as usize].push((lo, v));
            }
        }
        let mut rowptr = Vec::with_capacity(rows + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        rowptr.push(0u32);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            row.dedup_by_key(|&mut (c, _)| c);
            let norm: f64 = row
                .iter()
                .map(|&(_, v)| v.abs())
                .fold(0.0, f64::max)
                .max(1e-12)
                * 2.0
                * row.len().max(1) as f64;
            for &(c, v) in row.iter() {
                cols.push(c);
                vals.push(v / norm);
            }
            rowptr.push(cols.len() as u32);
        }
        let mut level = vec![0u32; rows];
        for i in 0..rows {
            let (lo, hi) = (rowptr[i] as usize, rowptr[i + 1] as usize);
            level[i] = cols[lo..hi]
                .iter()
                .map(|&j| level[j as usize] + 1)
                .max()
                .unwrap_or(0);
        }
        let chunk = chunk_rows.max(1);
        let owner: Vec<u16> = (0..rows).map(|i| ((i / chunk) % nprocs) as u16).collect();
        let mut out_edges = vec![Vec::new(); rows];
        for i in 0..rows {
            let (lo, hi) = (rowptr[i] as usize, rowptr[i + 1] as usize);
            for &j in &cols[lo..hi] {
                out_edges[j as usize].push(i as u32);
            }
        }
        let b: Vec<f64> = (0..rows).map(|_| rng.f64() * 2.0 - 1.0).collect();
        IccgSystem {
            params: IccgParams {
                rows,
                avg_band: (cols.len() / rows.max(1)).max(1),
                far_fraction: 0.0,
                chunk_rows: chunk,
                seed: 0x1cc6,
            },
            nprocs,
            rowptr,
            cols,
            vals,
            out_edges,
            b,
            owner,
            level,
        }
    }
}

#[cfg(test)]
mod matrix_market_tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real symmetric\n\
        % small structural-style matrix\n\
        6 6 11\n\
        1 1 4.0\n2 2 4.0\n3 3 4.0\n4 4 4.0\n5 5 4.0\n6 6 4.0\n\
        2 1 -1.5\n3 2 -1.0\n4 3 -2.0\n5 4 -1.0\n6 4 -0.5\n";

    #[test]
    fn parses_sample() {
        let (r, c, e) = parse_matrix_market(SAMPLE).expect("valid");
        assert_eq!((r, c), (6, 6));
        assert_eq!(e.len(), 11);
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(
            parse_matrix_market("%%MatrixMarket matrix array real general\n1 1\n1.0\n"),
            Err(ParseMatrixError::BadHeader)
        );
        assert_eq!(parse_matrix_market(""), Err(ParseMatrixError::BadHeader));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            parse_matrix_market(bad),
            Err(ParseMatrixError::BadEntry(_))
        ));
    }

    #[test]
    fn rejects_wrong_count() {
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert_eq!(parse_matrix_market(bad), Err(ParseMatrixError::BadSize));
    }

    #[test]
    fn error_messages_are_meaningful() {
        assert!(ParseMatrixError::BadEntry(7).to_string().contains("line 7"));
        assert!(!ParseMatrixError::BadHeader.to_string().is_empty());
    }

    #[test]
    fn builds_a_solvable_system() {
        let (rows, _, entries) = parse_matrix_market(SAMPLE).expect("valid");
        let sys = IccgSystem::from_entries(rows, &entries, 4, 2);
        assert_eq!(sys.len(), 6);
        // Strictly lower, leveled, mirrored.
        for i in 0..sys.len() {
            for (j, _) in sys.in_edges(i) {
                assert!((j as usize) < i);
                assert!(sys.level[j as usize] < sys.level[i]);
            }
        }
        // Diagonal entries were dropped; 5 off-diagonals remain.
        assert_eq!(sys.nnz(), 5);
        // Forward substitution is exact.
        let y = sys.reference();
        for i in 0..sys.len() {
            let mut lhs = y[i];
            for (j, v) in sys.in_edges(i) {
                lhs += v * y[j as usize];
            }
            assert!((lhs - sys.b[i]).abs() < 1e-9);
        }
    }
}
