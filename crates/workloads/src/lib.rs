//! Synthetic workload generators for the four applications of the study.
//!
//! The paper's inputs are either public benchmark graphs (EM3D's generated
//! bipartite graph) or datasets we do not have (MESH2K, the BCSSTK32
//! Harwell–Boeing matrix, the MOLDYN molecule set). Each generator here
//! produces a deterministic synthetic equivalent controlled by the
//! parameters that matter to communication behavior: node/edge counts,
//! degree, the fraction of partition-crossing edges, DAG level structure,
//! and spatial locality. Every workload also provides a *sequential
//! reference* computation so the parallel implementations in
//! `commsense-apps` can be verified bit-for-bit (the parallel variants
//! perform the same floating-point operations in a deterministic order).
//!
//! * [`bipartite`] — EM3D's irregular bipartite graph (§4.1: 10000 nodes,
//!   degree 10, 20% non-local edges, span 3).
//! * [`unstruct`] — UNSTRUC's 3-D unstructured mesh (§4.2: MESH2K-like,
//!   75 FLOPs per edge).
//! * [`sparse`] — ICCG's sparse lower-triangular system and its dataflow
//!   level schedule (§4.3: BCSSTK32-like).
//! * [`moldyn`] — MOLDYN's molecules, interaction pairs, and the RCB
//!   partitioner (§4.4).
//!
//! Separately, [`litmus`] generates small seed-reproducible stress
//! programs (false sharing, producer/consumer races, barrier-adjacent
//! stores, DMA overlapping coherent lines) and drives them through the
//! machine's correctness harness across mechanisms and sweep extremes —
//! the engine behind the `litmus` CI binary in `commsense-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod litmus;
pub mod moldyn;
pub mod partition;
pub mod sparse;
pub mod unstruct;
