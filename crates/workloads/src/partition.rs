//! Graph partitioners.
//!
//! The paper's applications arrived with partitions from real tools —
//! Chaco for ICCG (§4.3), RCB for MOLDYN (§4.4). Besides RCB (in
//! [`crate::moldyn`]), this module provides a greedy graph-growing
//! partitioner in the Chaco/Kernighan-Lin family's entry-level spirit:
//! grow each part by breadth-first accretion from a seed, preferring
//! vertices with the most neighbors already inside the part. It also
//! provides quality metrics so partition choices can be compared in
//! ablations.

use std::collections::VecDeque;

/// Adjacency list of an undirected graph.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    /// Neighbor lists per vertex.
    pub neighbors: Vec<Vec<u32>>,
}

impl Adjacency {
    /// Builds an adjacency list from undirected edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut neighbors = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            neighbors[u as usize].push(v);
            neighbors[v as usize].push(u);
        }
        Adjacency { neighbors }
    }

    /// Vertex count.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

/// Greedy graph-growing partition of `adj` into `parts` balanced parts.
///
/// Parts are grown one at a time to their target size: each step admits
/// the frontier vertex with the most already-admitted neighbors (ties by
/// index, so the result is deterministic). Unreached vertices (other
/// components) seed subsequent parts.
///
/// # Panics
///
/// Panics if `parts == 0` or the graph is empty.
///
/// # Examples
///
/// ```
/// use commsense_workloads::partition::{greedy_graph_growing, Adjacency};
///
/// // A path 0-1-2-3-4-5 split in two: contiguous halves.
/// let adj = Adjacency::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
/// let owners = greedy_graph_growing(&adj, 2);
/// assert_eq!(owners[0], owners[2]);
/// assert_eq!(owners[3], owners[5]);
/// assert_ne!(owners[0], owners[5]);
/// ```
pub fn greedy_graph_growing(adj: &Adjacency, parts: usize) -> Vec<u16> {
    assert!(parts > 0 && !adj.is_empty(), "need vertices and parts");
    let n = adj.len();
    let mut owner = vec![u16::MAX; n];
    let mut assigned = 0usize;
    let mut next_seed = 0usize;
    for p in 0..parts {
        // Balanced target for this part.
        let remaining_parts = parts - p;
        let target = (n - assigned).div_ceil(remaining_parts);
        if target == 0 {
            continue;
        }
        // Seed: the unassigned vertex with the smallest index.
        while next_seed < n && owner[next_seed] != u16::MAX {
            next_seed += 1;
        }
        if next_seed == n {
            break;
        }
        let mut in_part = 0usize;
        let mut frontier: VecDeque<u32> = VecDeque::from([next_seed as u32]);
        // Gain = admitted neighbors; recomputed lazily from the frontier.
        while in_part < target {
            // Pick the frontier vertex with the highest gain.
            let pick = frontier
                .iter()
                .enumerate()
                .filter(|(_, &v)| owner[v as usize] == u16::MAX)
                .max_by_key(|(_, &v)| {
                    let gain = adj.neighbors[v as usize]
                        .iter()
                        .filter(|&&w| owner[w as usize] == p as u16)
                        .count();
                    (gain, std::cmp::Reverse(v))
                })
                .map(|(i, _)| i);
            let v = match pick {
                Some(i) => frontier.remove(i).expect("index valid"),
                None => {
                    // Frontier exhausted (component boundary): reseed.
                    match (0..n).find(|&i| owner[i] == u16::MAX) {
                        Some(s) => {
                            frontier.push_back(s as u32);
                            continue;
                        }
                        None => break,
                    }
                }
            };
            if owner[v as usize] != u16::MAX {
                continue;
            }
            owner[v as usize] = p as u16;
            in_part += 1;
            assigned += 1;
            for &w in &adj.neighbors[v as usize] {
                if owner[w as usize] == u16::MAX {
                    frontier.push_back(w);
                }
            }
        }
    }
    // Any stragglers (pathological frontiers) go to the last part.
    for o in &mut owner {
        if *o == u16::MAX {
            *o = (parts - 1) as u16;
        }
    }
    owner
}

/// Partition quality metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionQuality {
    /// Fraction of edges crossing parts.
    pub cut_fraction: f64,
    /// Largest part size divided by the ideal size (1.0 = perfect).
    pub imbalance: f64,
}

/// Evaluates a partition against the edge list it should localize.
///
/// # Panics
///
/// Panics if `owner` is empty or an edge endpoint is out of range.
pub fn partition_quality(owner: &[u16], edges: &[(u32, u32)], parts: usize) -> PartitionQuality {
    assert!(!owner.is_empty(), "empty partition");
    let cut = edges
        .iter()
        .filter(|&&(u, v)| owner[u as usize] != owner[v as usize])
        .count();
    let mut sizes = vec![0usize; parts];
    for &o in owner {
        sizes[o as usize] += 1;
    }
    let ideal = owner.len() as f64 / parts as f64;
    let max = *sizes.iter().max().expect("parts > 0") as f64;
    PartitionQuality {
        cut_fraction: cut as f64 / edges.len().max(1) as f64,
        imbalance: max / ideal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unstruct::{UnstrucMesh, UnstrucParams};

    #[test]
    fn path_graph_splits_contiguously() {
        let adj =
            Adjacency::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let owners = greedy_graph_growing(&adj, 4);
        let q = partition_quality(
            &owners,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
            4,
        );
        assert!(
            (q.imbalance - 1.0).abs() < 1e-9,
            "perfectly balanced: {q:?}"
        );
        // A path cut into 4 parts severs exactly 3 edges.
        assert!((q.cut_fraction - 3.0 / 7.0).abs() < 1e-9, "{q:?}");
    }

    #[test]
    fn every_vertex_is_assigned() {
        let mesh = UnstrucMesh::generate(&UnstrucParams::small(), 8);
        let adj = Adjacency::from_edges(mesh.len(), &mesh.edges);
        let owners = greedy_graph_growing(&adj, 8);
        assert_eq!(owners.len(), mesh.len());
        assert!(owners.iter().all(|&o| (o as usize) < 8));
    }

    #[test]
    fn beats_random_assignment_on_meshes() {
        let mesh = UnstrucMesh::generate(&UnstrucParams::paper(), 32);
        let adj = Adjacency::from_edges(mesh.len(), &mesh.edges);
        let grown = greedy_graph_growing(&adj, 32);
        let grown_q = partition_quality(&grown, &mesh.edges, 32);
        // Random baseline: owner = index % 32 scrambled.
        let random: Vec<u16> = (0..mesh.len()).map(|i| ((i * 7919) % 32) as u16).collect();
        let random_q = partition_quality(&random, &mesh.edges, 32);
        assert!(
            grown_q.cut_fraction < 0.6 * random_q.cut_fraction,
            "graph growing {grown_q:?} must beat random {random_q:?}"
        );
        assert!(grown_q.imbalance < 1.05, "{grown_q:?}");
    }

    #[test]
    fn disconnected_components_are_handled() {
        // Two disjoint triangles.
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let adj = Adjacency::from_edges(6, &edges);
        let owners = greedy_graph_growing(&adj, 2);
        let q = partition_quality(&owners, &edges, 2);
        assert_eq!(q.cut_fraction, 0.0, "components map to parts: {owners:?}");
        assert!((q.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let mesh = UnstrucMesh::generate(&UnstrucParams::small(), 4);
        let adj = Adjacency::from_edges(mesh.len(), &mesh.edges);
        assert_eq!(greedy_graph_growing(&adj, 4), greedy_graph_growing(&adj, 4));
    }

    #[test]
    #[should_panic(expected = "edge out of range")]
    fn rejects_bad_edges() {
        let _ = Adjacency::from_edges(2, &[(0, 5)]);
    }
}
