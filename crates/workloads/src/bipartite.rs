//! The EM3D irregular bipartite graph.
//!
//! EM3D models electromagnetic wave propagation on a bipartite graph of E
//! (electric field) and H (magnetic field) nodes. Each iteration has two
//! phases: every E node recomputes its value from its H neighbors, then
//! every H node from its E neighbors, with barriers between phases. The
//! per-edge update is two double-precision FLOPs: a coefficient multiply
//! and an accumulate.

use commsense_des::Rng;

/// EM3D graph parameters (paper defaults: 10000 nodes, degree 10, 20%
/// non-local edges, span 3, 50 iterations).
#[derive(Debug, Clone, PartialEq)]
pub struct Em3dParams {
    /// Total graph nodes (split evenly between the E and H sides).
    pub nodes: usize,
    /// Incoming edges per node.
    pub degree: usize,
    /// Fraction of edges whose endpoint lives on another processor.
    pub pct_nonlocal: f64,
    /// Maximum processor distance of a non-local neighbor.
    pub span: usize,
    /// Iterations (each iteration = E phase + H phase).
    pub iterations: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Em3dParams {
    /// The paper's configuration (§4.1).
    pub fn paper() -> Self {
        Em3dParams {
            nodes: 10_000,
            degree: 10,
            pct_nonlocal: 0.2,
            span: 3,
            iterations: 50,
            seed: 0x3d,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> Self {
        Em3dParams {
            nodes: 400,
            degree: 4,
            pct_nonlocal: 0.2,
            span: 3,
            iterations: 3,
            seed: 0x3d,
        }
    }
}

/// One side of the bipartite graph: per-node incoming edge lists.
#[derive(Debug, Clone)]
pub struct Side {
    /// Owning processor of each node.
    pub owner: Vec<u16>,
    /// Incoming neighbor indices (into the opposite side) per node.
    pub edges: Vec<Vec<u32>>,
    /// Coefficient per incoming edge (parallel to `edges`).
    pub coeffs: Vec<Vec<f64>>,
    /// Initial node values.
    pub init: Vec<f64>,
}

impl Side {
    /// Node count on this side.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the side is empty.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Indices of the nodes owned by processor `p`.
    pub fn nodes_of(&self, p: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.owner[i] as usize == p)
            .collect()
    }
}

/// The generated EM3D graph.
#[derive(Debug, Clone)]
pub struct Em3dGraph {
    /// Parameters used.
    pub params: Em3dParams,
    /// Processor count it was partitioned for.
    pub nprocs: usize,
    /// The E side (reads H values).
    pub e: Side,
    /// The H side (reads E values).
    pub h: Side,
}

impl Em3dGraph {
    /// Generates a graph partitioned over `nprocs` processors.
    ///
    /// Nodes are distributed block-wise; each node's incoming neighbors are
    /// drawn from its own processor, except a `pct_nonlocal` fraction drawn
    /// from processors within `span` (ring distance), mirroring the Split-C
    /// generator the paper used.
    ///
    /// # Panics
    ///
    /// Panics if parameters are degenerate (zero nodes/degree, or fewer
    /// than two nodes per side per processor).
    pub fn generate(params: &Em3dParams, nprocs: usize) -> Self {
        assert!(
            params.nodes >= 4 && params.degree >= 1,
            "degenerate EM3D parameters"
        );
        let per_side = params.nodes / 2;
        assert!(
            per_side >= nprocs,
            "need at least one node per processor per side"
        );
        let mut rng = Rng::new(params.seed);
        let e = Self::gen_side(params, nprocs, per_side, &mut rng);
        let h = Self::gen_side(params, nprocs, per_side, &mut rng);
        Em3dGraph {
            params: params.clone(),
            nprocs,
            e,
            h,
        }
    }

    fn gen_side(params: &Em3dParams, nprocs: usize, count: usize, rng: &mut Rng) -> Side {
        // Balanced blocked distribution: processor p owns
        // [p*count/nprocs, (p+1)*count/nprocs), never empty for
        // count >= nprocs.
        let owner: Vec<u16> = (0..count).map(|i| ((i * nprocs) / count) as u16).collect();
        // Node ranges per processor of the *opposite* side; both sides use
        // the same layout, so ranges coincide.
        let range_of = |p: usize| {
            let lo = p * count / nprocs;
            let hi = (p + 1) * count / nprocs;
            (lo, hi)
        };
        let mut edges = Vec::with_capacity(count);
        let mut coeffs = Vec::with_capacity(count);
        let mut init = Vec::with_capacity(count);
        for &o in owner.iter() {
            let p = o as usize;
            let mut ne = Vec::with_capacity(params.degree);
            let mut nc = Vec::with_capacity(params.degree);
            // Neighbors come in adjacent pairs (j, j+1): graphs derived
            // from physical grids have spatial locality, and on Alewife's
            // 16-byte lines (two doubles) this is what lets one line fill
            // serve two neighbor values.
            while ne.len() < params.degree {
                let q = if nprocs > 1 && rng.chance(params.pct_nonlocal) {
                    // A neighbor processor within `span` (ring distance).
                    let span = params.span.clamp(1, nprocs - 1);
                    let d = rng.gen_range(1, span as u64 + 1) as i64;
                    let offset = if rng.chance(0.5) { d } else { -d };
                    (p as i64 + offset).rem_euclid(nprocs as i64) as usize
                } else {
                    p
                };
                let (lo, hi) = range_of(q);
                let j = lo + rng.index(hi - lo);
                ne.push(j as u32);
                nc.push(rng.f64() * 0.1);
                if ne.len() < params.degree {
                    // The line-mate of j within the same owner's range.
                    let mate = if j.is_multiple_of(2) && j + 1 < hi {
                        j + 1
                    } else {
                        j.saturating_sub(1).max(lo)
                    };
                    ne.push(mate as u32);
                    nc.push(rng.f64() * 0.1);
                }
            }
            edges.push(ne);
            coeffs.push(nc);
            init.push(rng.f64());
        }
        Side {
            owner,
            edges,
            coeffs,
            init,
        }
    }

    /// Fraction of edges (both sides) whose endpoint is on another
    /// processor.
    pub fn nonlocal_fraction(&self) -> f64 {
        let mut total = 0usize;
        let mut nonlocal = 0usize;
        for (side, other) in [(&self.e, &self.h), (&self.h, &self.e)] {
            for i in 0..side.len() {
                for &j in &side.edges[i] {
                    total += 1;
                    if side.owner[i] != other.owner[j as usize] {
                        nonlocal += 1;
                    }
                }
            }
        }
        nonlocal as f64 / total.max(1) as f64
    }

    /// One phase of the computation: recompute `vals` from `other_vals`.
    /// `vals[i] -= sum_j coeff_ij * other_vals[edge_ij]` — two FLOPs per
    /// edge, exactly the paper's description.
    pub fn phase(side: &Side, vals: &mut [f64], other_vals: &[f64]) {
        for (i, v) in vals.iter_mut().enumerate() {
            let mut acc = *v;
            for (k, &j) in side.edges[i].iter().enumerate() {
                acc -= side.coeffs[i][k] * other_vals[j as usize];
            }
            *v = acc;
        }
    }

    /// The sequential reference: returns final (E, H) values after
    /// `iterations` red/black iterations.
    pub fn reference(&self) -> (Vec<f64>, Vec<f64>) {
        let mut e_vals = self.e.init.clone();
        let mut h_vals = self.h.init.clone();
        for _ in 0..self.params.iterations {
            Self::phase(&self.e, &mut e_vals, &h_vals);
            Self::phase(&self.h, &mut h_vals, &e_vals);
        }
        (e_vals, h_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = Em3dParams::small();
        let a = Em3dGraph::generate(&p, 8);
        let b = Em3dGraph::generate(&p, 8);
        assert_eq!(a.e.edges, b.e.edges);
        assert_eq!(a.h.init, b.h.init);
    }

    #[test]
    fn degree_is_exact() {
        let g = Em3dGraph::generate(&Em3dParams::small(), 8);
        for i in 0..g.e.len() {
            assert_eq!(g.e.edges[i].len(), g.params.degree);
            assert_eq!(g.e.coeffs[i].len(), g.params.degree);
        }
    }

    #[test]
    fn nonlocal_fraction_tracks_parameter() {
        let mut p = Em3dParams::small();
        p.nodes = 4000;
        let g = Em3dGraph::generate(&p, 8);
        let f = g.nonlocal_fraction();
        assert!((f - 0.2).abs() < 0.05, "nonlocal fraction {f}");
    }

    #[test]
    fn span_limits_neighbor_distance() {
        let mut p = Em3dParams::small();
        p.nodes = 4000;
        p.span = 2;
        let g = Em3dGraph::generate(&p, 8);
        for (side, other) in [(&g.e, &g.h), (&g.h, &g.e)] {
            for i in 0..side.len() {
                for &j in &side.edges[i] {
                    let a = side.owner[i] as i64;
                    let b = other.owner[j as usize] as i64;
                    let d = (a - b).rem_euclid(8).min((b - a).rem_euclid(8));
                    assert!(d <= 2, "edge {a}->{b} exceeds span");
                }
            }
        }
    }

    #[test]
    fn owners_are_balanced() {
        let g = Em3dGraph::generate(&Em3dParams::small(), 8);
        let mut counts = vec![0usize; 8];
        for &o in &g.e.owner {
            counts[o as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1 + g.e.len() / 8, "imbalanced: {counts:?}");
    }

    #[test]
    fn reference_changes_values() {
        let g = Em3dGraph::generate(&Em3dParams::small(), 4);
        let (e, h) = g.reference();
        assert_ne!(e, g.e.init);
        assert_ne!(h, g.h.init);
        assert!(e.iter().all(|v| v.is_finite()));
        assert!(h.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nodes_of_partitions_everything() {
        let g = Em3dGraph::generate(&Em3dParams::small(), 8);
        let total: usize = (0..8).map(|p| g.e.nodes_of(p).len()).sum();
        assert_eq!(total, g.e.len());
    }

    #[test]
    fn single_processor_graph_is_fully_local() {
        let g = Em3dGraph::generate(&Em3dParams::small(), 1);
        assert_eq!(g.nonlocal_fraction(), 0.0);
    }
}
