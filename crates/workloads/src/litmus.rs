//! Deterministic litmus-test generator and fuzzer for the correctness
//! harness.
//!
//! A [`Litmus`] is a small, seed-reproducible multiprocessor program built
//! from the communication patterns most likely to expose protocol bugs:
//! false sharing (several nodes hammering the two words of the same line),
//! producer/consumer races across barriers, stores adjacent to barrier
//! entry, and bulk-DMA messages overlapping lines that are simultaneously
//! kept coherent by the directory protocol. Programs are organised in
//! barrier-separated *rounds*; within a round each node runs a short
//! random memory-op prelude, then launches all of its active messages,
//! then (if it is a receiver this round) waits for message arrival. That
//! send-before-wait discipline makes every generated program deadlock-free
//! by construction, so any deadlock the machine reports is a real bug.
//!
//! [`run_litmus`] executes one program on one mechanism under a sweep
//! [`Extreme`] with the full correctness harness enabled
//! ([`CheckConfig::full`]): the runtime invariant checker, message
//! conservation, and the SC oracle. Failures are caught and classified by
//! their panic marker; [`shrink`] then greedily minimises a failing
//! program while preserving its [`FailureClass`], and [`fuzz`] drives the
//! whole loop over many seeds, mechanisms, and extremes. The `litmus`
//! binary in `commsense-bench` wraps this into the CI entry point with
//! seed-replay support.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use commsense_cache::Heap;
use commsense_des::Rng;
use commsense_machine::{
    CheckConfig, HandlerCtx, LatencyEmulation, Machine, MachineConfig, MachineSpec, Mechanism,
    NodeCtx, Program, ProtoVariant, RmwOp, Step, INVARIANT_MARKER, ORACLE_MARKER,
};
use commsense_mesh::{CrossTrafficConfig, TrafficPattern};
use commsense_msgpass::{ActiveMessage, HandlerId};

/// Application handler id used by litmus messages (any non-system id).
const LITMUS_HANDLER: u16 = 7;

/// One abstract memory-side instruction of a litmus program. Line and word
/// indices refer to the program's own small shared allocation; they are
/// resolved to real addresses at materialisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LitmusOp {
    /// Load one word.
    Load {
        /// Line index within the litmus allocation.
        line: u32,
        /// Word offset (0 or 1).
        off: u8,
    },
    /// Load one word, charged as synchronization (spin) time.
    SpinLoad {
        /// Line index within the litmus allocation.
        line: u32,
        /// Word offset (0 or 1).
        off: u8,
    },
    /// Store a value to one word.
    Store {
        /// Line index within the litmus allocation.
        line: u32,
        /// Word offset (0 or 1).
        off: u8,
        /// The stored value (unique per generated store).
        val: f64,
    },
    /// Atomic read-modify-write on a line.
    Rmw {
        /// Line index within the litmus allocation.
        line: u32,
        /// The operation.
        op: RmwOp,
    },
    /// Non-binding prefetch of a line.
    Prefetch {
        /// Line index within the litmus allocation.
        line: u32,
        /// Request ownership?
        exclusive: bool,
    },
    /// Local computation.
    Compute(u64),
    /// Drain the receive queue (meaningful under polling).
    Poll,
}

/// One active message sent during a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LitmusMsg {
    /// Sending node.
    pub from: u8,
    /// Receiving node (never equal to `from`).
    pub to: u8,
    /// DMA payload bytes (0 for a short message).
    pub bulk_bytes: u32,
    /// Gather/scatter copy lines charged at each end — models DMA staging
    /// that overlaps the coherently shared lines.
    pub dma_lines: u32,
}

/// One barrier-separated phase of a litmus program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Round {
    /// Per-node memory-op preludes (`ops[node]`).
    pub ops: Vec<Vec<LitmusOp>>,
    /// Messages exchanged this round (all sends precede all waits).
    pub msgs: Vec<LitmusMsg>,
}

/// A generated litmus program: a few shared lines and a few rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Litmus {
    /// Node count (must match the machine configuration).
    pub nodes: usize,
    /// Shared lines in the litmus allocation.
    pub lines: usize,
    /// The rounds, each ending in a machine-wide barrier.
    pub rounds: Vec<Round>,
}

impl Litmus {
    /// Generates a random program for `nodes` nodes from `rng`.
    ///
    /// Knobs are chosen to maximise protocol stress per simulated cycle:
    /// 2–4 lines shared by all nodes (false sharing on both words), 1–3
    /// rounds, up to 6 ops per node per round, and up to 3 message pairs
    /// per round with occasional bulk payloads and DMA copy overlap.
    pub fn generate(rng: &mut Rng, nodes: usize) -> Litmus {
        assert!(nodes >= 2, "litmus programs need at least two nodes");
        let lines = rng.gen_range(2, 5) as usize;
        let n_rounds = rng.gen_range(1, 4) as usize;
        // Stored values are globally unique so the SC oracle can attribute
        // every observed load to exactly one writer.
        let mut next_val = 1.0_f64;
        let mut uniq = |rng: &mut Rng| {
            let v = next_val + rng.gen_range(0, 3) as f64 * 0.25;
            next_val += 1.0;
            v
        };
        let rounds = (0..n_rounds)
            .map(|_| {
                let ops = (0..nodes)
                    .map(|_| {
                        let n_ops = rng.index(7);
                        (0..n_ops)
                            .map(|_| {
                                let line = rng.index(lines) as u32;
                                let off = rng.index(2) as u8;
                                match rng.index(10) {
                                    0..=2 => LitmusOp::Load { line, off },
                                    3..=5 => LitmusOp::Store {
                                        line,
                                        off,
                                        val: uniq(rng),
                                    },
                                    6 => LitmusOp::Rmw {
                                        line,
                                        op: match rng.index(4) {
                                            0 => RmwOp::IncW0,
                                            1 => RmwOp::AddW0(uniq(rng)),
                                            2 => RmwOp::SetW0(uniq(rng)),
                                            _ => RmwOp::SubW0DecW1(uniq(rng)),
                                        },
                                    },
                                    7 => LitmusOp::SpinLoad { line, off },
                                    8 => LitmusOp::Prefetch {
                                        line,
                                        exclusive: rng.chance(0.5),
                                    },
                                    _ => {
                                        if rng.chance(0.3) {
                                            LitmusOp::Poll
                                        } else {
                                            LitmusOp::Compute(rng.gen_range(1, 20))
                                        }
                                    }
                                }
                            })
                            .collect()
                    })
                    .collect();
                let n_msgs = rng.index(4);
                let msgs = (0..n_msgs)
                    .map(|_| {
                        let from = rng.index(nodes);
                        let mut to = rng.index(nodes - 1);
                        if to >= from {
                            to += 1;
                        }
                        let bulk = rng.chance(0.4);
                        LitmusMsg {
                            from: from as u8,
                            to: to as u8,
                            bulk_bytes: if bulk {
                                rng.gen_range(1, 9) as u32 * 64
                            } else {
                                0
                            },
                            dma_lines: if bulk && rng.chance(0.5) {
                                rng.gen_range(1, 4) as u32
                            } else {
                                0
                            },
                        }
                    })
                    .collect();
                Round { ops, msgs }
            })
            .collect();
        Litmus {
            nodes,
            lines,
            rounds,
        }
    }

    /// A directed producer/consumer race: every node reads line 0 in
    /// round one (building a wide sharer set), then node 0 overwrites it
    /// in round two, forcing an invalidation to every sharer, then
    /// everyone re-reads.
    ///
    /// This is the canonical detection witness for the seeded
    /// dropped-invalidation mutation
    /// (`Machine::fault_ignore_next_invalidation`): with the fault armed
    /// the run must die with [`FailureClass::Invariant`]; unmutated it
    /// must pass. The `litmus --mutation-smoke` CI gate runs exactly this
    /// program both ways.
    pub fn directed_invalidation(nodes: usize) -> Litmus {
        let all_read = |lines: &[u32]| {
            (0..nodes)
                .map(|_| {
                    lines
                        .iter()
                        .map(|&l| LitmusOp::Load { line: l, off: 0 })
                        .collect()
                })
                .collect::<Vec<Vec<LitmusOp>>>()
        };
        let mut write_round = Round {
            ops: all_read(&[0]),
            msgs: Vec::new(),
        };
        write_round.ops[0].push(LitmusOp::Store {
            line: 0,
            off: 0,
            val: 99.5,
        });
        Litmus {
            nodes,
            lines: 2,
            rounds: vec![
                Round {
                    ops: all_read(&[0, 1]),
                    msgs: Vec::new(),
                },
                write_round,
            ],
        }
    }

    /// Total memory ops across all rounds and nodes.
    pub fn total_ops(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.ops.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Total messages across all rounds.
    pub fn total_msgs(&self) -> usize {
        self.rounds.iter().map(|r| r.msgs.len()).sum()
    }

    /// Builds the runnable machine spec: a heap with the litmus lines
    /// homed round-robin, distinct initial word values, and one replay
    /// program per node following the send-before-wait discipline.
    pub fn materialize(&self) -> MachineSpec {
        let mut heap = Heap::new(self.nodes);
        let shared = heap.alloc(self.lines, |i| i % self.nodes);
        let initial: Vec<f64> = (0..heap.total_words())
            .map(|i| -((i + 1) as f64) * 0.125)
            .collect();
        let programs = (0..self.nodes)
            .map(|node| {
                let mut steps = Vec::new();
                for (r, round) in self.rounds.iter().enumerate() {
                    for op in &round.ops[node] {
                        steps.push(match *op {
                            LitmusOp::Load { line, off } => {
                                Step::Load(shared.word(line as usize, off))
                            }
                            LitmusOp::SpinLoad { line, off } => {
                                Step::SpinLoad(shared.word(line as usize, off))
                            }
                            LitmusOp::Store { line, off, val } => {
                                Step::Store(shared.word(line as usize, off), val)
                            }
                            LitmusOp::Rmw { line, op } => Step::Rmw(shared.line(line as usize), op),
                            LitmusOp::Prefetch { line, exclusive } => Step::Prefetch {
                                line: shared.line(line as usize),
                                exclusive,
                            },
                            LitmusOp::Compute(c) => Step::Compute(c),
                            LitmusOp::Poll => Step::Poll,
                        });
                    }
                    // All sends launch before any wait, so a receiver
                    // blocked in WaitMsg always has its message in flight.
                    for msg in round.msgs.iter().filter(|m| m.from as usize == node) {
                        let args = vec![node as u64, r as u64];
                        let mut am = if msg.bulk_bytes > 0 {
                            ActiveMessage::with_bulk(
                                msg.to as usize,
                                HandlerId(LITMUS_HANDLER),
                                args,
                                msg.bulk_bytes,
                            )
                        } else {
                            ActiveMessage::new(msg.to as usize, HandlerId(LITMUS_HANDLER), args)
                        };
                        if msg.dma_lines > 0 {
                            am = am.gather(msg.dma_lines).scatter(msg.dma_lines);
                        }
                        steps.push(Step::Send(am));
                    }
                    // One wait per receiving node per round: `WaitMsg` is
                    // satisfied by *any* handled message, so waiting once
                    // per incoming message could deadlock when two arrive
                    // back-to-back before the first wait begins.
                    if round.msgs.iter().any(|m| m.to as usize == node) {
                        steps.push(Step::WaitMsg);
                    }
                    steps.push(Step::Barrier);
                }
                Box::new(ReplayProgram { steps, pc: 0 }) as Box<dyn Program>
            })
            .collect();
        MachineSpec {
            heap,
            initial,
            programs,
        }
    }
}

impl fmt::Display for Litmus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "litmus: {} nodes, {} lines, {} rounds, {} ops, {} msgs",
            self.nodes,
            self.lines,
            self.rounds.len(),
            self.total_ops(),
            self.total_msgs()
        )?;
        for (r, round) in self.rounds.iter().enumerate() {
            writeln!(f, "round {r}:")?;
            for (node, ops) in round.ops.iter().enumerate() {
                if ops.is_empty() {
                    continue;
                }
                let rendered: Vec<String> = ops
                    .iter()
                    .map(|op| match *op {
                        LitmusOp::Load { line, off } => format!("Ld L{line}.{off}"),
                        LitmusOp::SpinLoad { line, off } => format!("SpinLd L{line}.{off}"),
                        LitmusOp::Store { line, off, val } => format!("St L{line}.{off}={val}"),
                        LitmusOp::Rmw { line, op } => format!("Rmw L{line} {op:?}"),
                        LitmusOp::Prefetch { line, exclusive } => {
                            format!("Pf{} L{line}", if exclusive { "X" } else { "" })
                        }
                        LitmusOp::Compute(c) => format!("C{c}"),
                        LitmusOp::Poll => "Poll".to_string(),
                    })
                    .collect();
                writeln!(f, "  node {node}: {}", rendered.join("; "))?;
            }
            for m in &round.msgs {
                writeln!(
                    f,
                    "  msg {}->{} bulk={} dma={}",
                    m.from, m.to, m.bulk_bytes, m.dma_lines
                )?;
            }
        }
        Ok(())
    }
}

/// A trivial program that replays a fixed step list, then finishes.
struct ReplayProgram {
    steps: Vec<Step>,
    pc: usize,
}

impl Program for ReplayProgram {
    fn resume(&mut self, _ctx: &mut NodeCtx) -> Step {
        let step = self.steps.get(self.pc).cloned().unwrap_or(Step::Done);
        self.pc += 1;
        step
    }

    fn on_message(&mut self, _handler: u16, args: &[u64], _bulk: &[u64], ctx: &mut HandlerCtx) {
        ctx.charge(2 + args.len() as u64);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// One point of the sweep-extreme grid a litmus program is run under.
///
/// These are the corners of the paper's sensitivity sweeps, where protocol
/// timing is most unusual: a cache small enough to force evictions
/// mid-transaction, cross-traffic consuming bisection bandwidth, uniform
/// high-latency emulation, and a relaxed (buffered) store model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extreme {
    /// The unmodified tiny machine.
    Base,
    /// An 8-line cache: constant conflict evictions.
    TinyCache,
    /// Background cross-traffic eating bisection bandwidth.
    CrossTraffic,
    /// Uniform 400-cycle remote-miss emulation on an ideal network.
    HighLatency,
    /// A 4-entry write buffer (release-consistent stores).
    Relaxed,
    /// The criticality-aware protocol variant under uniform cross-traffic:
    /// demand chains ride the priority channel while background bandwidth
    /// is being consumed.
    Critical,
    /// Criticality-aware variant with hotspot cross-traffic concentrated
    /// on node 0 — the home of the most-contended litmus line.
    Hotspot,
    /// Baseline variant with bursty cross-traffic (congestion arrives in
    /// phases, so protocol timing swings between idle and saturated).
    Bursty,
    /// Criticality-aware variant with incast cross-traffic: several
    /// senders converge on the low-numbered nodes' ejection ports.
    Incast,
}

impl Extreme {
    /// Every extreme, in sweep order.
    pub const ALL: [Extreme; 9] = [
        Extreme::Base,
        Extreme::TinyCache,
        Extreme::CrossTraffic,
        Extreme::HighLatency,
        Extreme::Relaxed,
        Extreme::Critical,
        Extreme::Hotspot,
        Extreme::Bursty,
        Extreme::Incast,
    ];

    /// Short label used on the command line and in failure summaries.
    pub fn label(self) -> &'static str {
        match self {
            Extreme::Base => "base",
            Extreme::TinyCache => "tinycache",
            Extreme::CrossTraffic => "cross",
            Extreme::HighLatency => "lat",
            Extreme::Relaxed => "relaxed",
            Extreme::Critical => "crit",
            Extreme::Hotspot => "hotspot",
            Extreme::Bursty => "bursty",
            Extreme::Incast => "incast",
        }
    }

    /// Parses a label produced by [`Extreme::label`].
    pub fn from_label(s: &str) -> Option<Extreme> {
        Extreme::ALL.into_iter().find(|e| e.label() == s)
    }

    /// How the fuzzer thins the program stream under this extreme: a
    /// stride of `k` runs every `k`-th program. The hostile-traffic
    /// extremes cost several times a base run (the mesh carries the
    /// background load for the whole run), so they take a sparser sample
    /// to hold fuzzing wall-clock; every program still runs under every
    /// original extreme.
    pub fn stride(self) -> usize {
        match self {
            Extreme::Base
            | Extreme::TinyCache
            | Extreme::CrossTraffic
            | Extreme::HighLatency
            | Extreme::Relaxed => 1,
            Extreme::Critical => 2,
            Extreme::Hotspot | Extreme::Bursty | Extreme::Incast => 3,
        }
    }

    /// The machine configuration for this extreme under `mech` (checking
    /// not yet enabled; the runner adds it).
    pub fn config(self, mech: Mechanism) -> MachineConfig {
        let mut cfg = MachineConfig::tiny().with_mechanism(mech);
        let consuming = |cfg: &MachineConfig| {
            CrossTrafficConfig::consuming(0.1, cfg.clock(), 64, cfg.net.topo.build().io_streams())
        };
        let nodes = cfg.nodes as u16;
        match self {
            Extreme::Base => {}
            Extreme::TinyCache => cfg.proto.cache_lines = 8,
            Extreme::CrossTraffic => cfg.cross_traffic = Some(consuming(&cfg)),
            Extreme::HighLatency => cfg.latency_emulation = Some(LatencyEmulation::uniform(400)),
            Extreme::Relaxed => cfg.write_buffer = 4,
            Extreme::Critical => {
                cfg.variant = ProtoVariant::CriticalityAware;
                cfg.cross_traffic = Some(consuming(&cfg));
            }
            Extreme::Hotspot => {
                cfg.variant = ProtoVariant::CriticalityAware;
                cfg.cross_traffic = Some(consuming(&cfg).with_pattern(
                    TrafficPattern::Hotspot {
                        node: 0,
                        fraction: 0.5,
                    },
                    nodes,
                    11,
                ));
            }
            Extreme::Bursty => {
                cfg.cross_traffic = Some(consuming(&cfg).with_pattern(
                    TrafficPattern::Bursty { on: 2, off: 6 },
                    nodes,
                    11,
                ));
            }
            Extreme::Incast => {
                cfg.variant = ProtoVariant::CriticalityAware;
                cfg.cross_traffic = Some(consuming(&cfg).with_pattern(
                    TrafficPattern::Incast { targets: 2 },
                    nodes,
                    11,
                ));
            }
        }
        cfg
    }
}

impl fmt::Display for Extreme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Coarse classification of a failed litmus run, derived from the panic
/// message's marker prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A protocol-invariant or conservation violation
    /// ([`INVARIANT_MARKER`]).
    Invariant,
    /// An SC-oracle violation ([`ORACLE_MARKER`]).
    Oracle,
    /// The machine deadlocked (event queue drained with blocked nodes).
    Deadlock,
    /// Any other panic.
    Other,
}

impl FailureClass {
    /// Classifies a panic message.
    pub fn classify(msg: &str) -> FailureClass {
        if msg.contains(INVARIANT_MARKER) {
            FailureClass::Invariant
        } else if msg.contains(ORACLE_MARKER) {
            FailureClass::Oracle
        } else if msg.contains("deadlock") {
            FailureClass::Deadlock
        } else {
            FailureClass::Other
        }
    }

    /// Short label for failure summaries.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::Invariant => "invariant",
            FailureClass::Oracle => "oracle",
            FailureClass::Deadlock => "deadlock",
            FailureClass::Other => "panic",
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A caught and classified litmus failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What kind of violation the panic message carried.
    pub class: FailureClass,
    /// The full panic message.
    pub detail: String,
}

/// A seeded protocol mutation for the harness's own mutation tests: each
/// arms a deliberate bug the correctness harness must catch loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No mutation: the run must pass.
    #[default]
    None,
    /// Silently drop the next cache invalidation (while still
    /// acknowledging it) — the stale copy trips the directory/cache
    /// consistency invariant when the write completes.
    DropInvalidation,
    /// Smuggle the next high-priority invalidation ack past the tracked
    /// consumption path (a priority-inversion bug in the fast channel) —
    /// end-of-run message conservation must flag it. Dormant under the
    /// baseline variant, which sends no high-priority packets.
    SmugglePriorityAck,
}

/// Runs one litmus program on one mechanism under one extreme with the
/// full correctness harness. Returns the classified failure if the run
/// panicked (invariant/oracle violation, deadlock, or any other panic).
pub fn run_litmus(lit: &Litmus, mech: Mechanism, extreme: Extreme) -> Result<(), Failure> {
    run_litmus_with(lit, mech, extreme, Fault::None)
}

/// [`run_litmus`] with an optional seeded protocol mutation (see
/// [`Fault`]); the checker must catch every armed fault.
pub fn run_litmus_with(
    lit: &Litmus,
    mech: Mechanism,
    extreme: Extreme,
    fault: Fault,
) -> Result<(), Failure> {
    let mut cfg = extreme.config(mech);
    assert_eq!(lit.nodes, cfg.nodes, "litmus node count must match machine");
    cfg.check = Some(CheckConfig::full());
    let spec = lit.materialize();
    match catch_unwind(AssertUnwindSafe(move || {
        let mut m = Machine::new(cfg, spec);
        match fault {
            Fault::None => {}
            Fault::DropInvalidation => m.fault_ignore_next_invalidation(),
            Fault::SmugglePriorityAck => m.fault_smuggle_next_priority_ack(),
        }
        m.run();
    })) {
        Ok(()) => Ok(()),
        Err(payload) => {
            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(Failure {
                class: FailureClass::classify(&detail),
                detail,
            })
        }
    }
}

/// Upper bound on candidate executions during [`shrink`].
const SHRINK_BUDGET: usize = 2_000;

/// Greedily minimises a failing program while preserving its failure
/// class.
///
/// `reproduces` runs a candidate and returns the failure class it dies
/// with (or `None` if it passes); only candidates reproducing `class` are
/// accepted. The pass alternates removing whole rounds, message pairs,
/// and single ops until a fixpoint (or the candidate budget) is reached.
pub fn shrink(
    lit: &Litmus,
    class: FailureClass,
    mut reproduces: impl FnMut(&Litmus) -> Option<FailureClass>,
) -> Litmus {
    let mut cur = lit.clone();
    let mut budget = SHRINK_BUDGET;
    let mut try_accept = |cur: &mut Litmus, cand: Litmus, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if reproduces(&cand) == Some(class) {
            *cur = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut changed = false;
        // Whole rounds (keep at least one).
        let mut i = 0;
        while i < cur.rounds.len() && cur.rounds.len() > 1 {
            let mut cand = cur.clone();
            cand.rounds.remove(i);
            if try_accept(&mut cur, cand, &mut budget) {
                changed = true;
            } else {
                i += 1;
            }
        }
        // Message pairs.
        for r in 0..cur.rounds.len() {
            let mut j = 0;
            while j < cur.rounds[r].msgs.len() {
                let mut cand = cur.clone();
                cand.rounds[r].msgs.remove(j);
                if try_accept(&mut cur, cand, &mut budget) {
                    changed = true;
                } else {
                    j += 1;
                }
            }
        }
        // Individual ops.
        for r in 0..cur.rounds.len() {
            for node in 0..cur.nodes {
                let mut k = 0;
                while k < cur.rounds[r].ops[node].len() {
                    let mut cand = cur.clone();
                    cand.rounds[r].ops[node].remove(k);
                    if try_accept(&mut cur, cand, &mut budget) {
                        changed = true;
                    } else {
                        k += 1;
                    }
                }
            }
        }
        if !changed || budget == 0 {
            break;
        }
    }
    cur
}

/// The litmus program for `(seed, program_index)` — the reproducible unit
/// the fuzzer iterates over and the `--program` replay flag selects.
pub fn litmus_for(seed: u64, program: usize, nodes: usize) -> Litmus {
    // Distinct stream per program index, stable under changes to the
    // number of programs fuzzed.
    let mut rng =
        Rng::new(seed.wrapping_add((program as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    Litmus::generate(&mut rng, nodes)
}

/// One failure found by [`fuzz`], with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The fuzzer seed.
    pub seed: u64,
    /// The program index under that seed.
    pub program: usize,
    /// The mechanism the failure occurred under.
    pub mech: Mechanism,
    /// The sweep extreme the failure occurred under.
    pub extreme: Extreme,
    /// The failure classification.
    pub class: FailureClass,
    /// The panic message.
    pub detail: String,
    /// The generated program.
    pub litmus: Litmus,
    /// The class-preserving minimised program.
    pub minimized: Litmus,
}

/// Result of a [`fuzz`] sweep.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Total `(program, mechanism, extreme)` executions.
    pub runs: u64,
    /// Programs generated.
    pub programs: u64,
    /// All failures found (at most one per `(program, mech, extreme)`).
    pub failures: Vec<FuzzFailure>,
}

/// Fuzzes `programs` generated litmus tests across `mechs` × `extremes`,
/// shrinking every failure to a minimal reproducer of the same class.
pub fn fuzz(
    seed: u64,
    programs: usize,
    nodes: usize,
    mechs: &[Mechanism],
    extremes: &[Extreme],
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for p in 0..programs {
        let lit = litmus_for(seed, p, nodes);
        report.programs += 1;
        for &mech in mechs {
            for &extreme in extremes {
                if p % extreme.stride() != 0 {
                    continue;
                }
                report.runs += 1;
                if let Err(fail) = run_litmus(&lit, mech, extreme) {
                    let minimized = shrink(&lit, fail.class, |cand| {
                        run_litmus(cand, mech, extreme).err().map(|f| f.class)
                    });
                    report.failures.push(FuzzFailure {
                        seed,
                        program: p,
                        mech,
                        extreme,
                        class: fail.class,
                        detail: fail.detail,
                        litmus: lit.clone(),
                        minimized,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = litmus_for(42, 3, 4);
        let b = litmus_for(42, 3, 4);
        assert_eq!(a, b);
        let c = litmus_for(43, 3, 4);
        assert_ne!(a, c, "different seeds should give different programs");
    }

    #[test]
    fn generated_programs_pass_on_every_mechanism_and_extreme() {
        let report = fuzz(7, 4, 4, &Mechanism::ALL, &Extreme::ALL);
        assert_eq!(report.programs, 4);
        let expected_runs: u64 = Extreme::ALL
            .iter()
            .map(|e| (0..4).filter(|p| p % e.stride() == 0).count() as u64)
            .sum::<u64>()
            * Mechanism::ALL.len() as u64;
        assert_eq!(report.runs, expected_runs);
        assert!(
            report.failures.is_empty(),
            "unexpected failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.program, f.mech.label(), f.extreme.label(), f.class))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeded_mutation_is_caught_and_classified() {
        let lit = Litmus::directed_invalidation(4);
        assert!(run_litmus(&lit, Mechanism::SharedMem, Extreme::Base).is_ok());
        let fail = run_litmus_with(
            &lit,
            Mechanism::SharedMem,
            Extreme::Base,
            Fault::DropInvalidation,
        )
        .expect_err("dropped invalidation must be caught");
        assert_eq!(fail.class, FailureClass::Invariant, "{}", fail.detail);
        assert!(fail.detail.contains(INVARIANT_MARKER));
    }

    #[test]
    fn smuggled_priority_ack_is_caught_by_conservation() {
        let lit = Litmus::directed_invalidation(4);
        // Unmutated, the criticality-aware extreme passes the full harness.
        assert!(run_litmus(&lit, Mechanism::SharedMem, Extreme::Critical).is_ok());
        let fail = run_litmus_with(
            &lit,
            Mechanism::SharedMem,
            Extreme::Critical,
            Fault::SmugglePriorityAck,
        )
        .expect_err("smuggled priority ack must be caught");
        assert_eq!(fail.class, FailureClass::Invariant, "{}", fail.detail);
        assert!(
            fail.detail.contains("conservation") || fail.detail.contains("cross-check"),
            "expected a message-conservation violation, got: {}",
            fail.detail
        );
        // The same fault stays dormant under the baseline variant: no
        // high-priority packets exist for it to trigger on.
        assert!(run_litmus_with(
            &lit,
            Mechanism::SharedMem,
            Extreme::Base,
            Fault::SmugglePriorityAck,
        )
        .is_ok());
    }

    #[test]
    fn shrink_preserves_failure_class_and_reduces() {
        let lit = Litmus::directed_invalidation(4);
        let runner = |cand: &Litmus| {
            run_litmus_with(
                cand,
                Mechanism::SharedMem,
                Extreme::Base,
                Fault::DropInvalidation,
            )
            .err()
            .map(|f| f.class)
        };
        let fail = run_litmus_with(
            &lit,
            Mechanism::SharedMem,
            Extreme::Base,
            Fault::DropInvalidation,
        )
        .expect_err("must fail");
        let min = shrink(&lit, fail.class, runner);
        assert!(
            min.total_ops() <= lit.total_ops(),
            "shrinking must not grow the program"
        );
        assert_eq!(
            runner(&min),
            Some(fail.class),
            "minimised program must reproduce the failure class"
        );
    }

    #[test]
    fn classify_matches_markers() {
        assert_eq!(
            FailureClass::classify("PROTOCOL-INVARIANT violated: x"),
            FailureClass::Invariant
        );
        assert_eq!(
            FailureClass::classify("SC-ORACLE violated: y"),
            FailureClass::Oracle
        );
        assert_eq!(
            FailureClass::classify("deadlock: nodes blocked"),
            FailureClass::Deadlock
        );
        assert_eq!(FailureClass::classify("boom"), FailureClass::Other);
    }

    #[test]
    fn extreme_labels_round_trip() {
        for e in Extreme::ALL {
            assert_eq!(Extreme::from_label(e.label()), Some(e));
        }
        assert_eq!(Extreme::from_label("nope"), None);
    }

    #[test]
    fn display_renders_every_op_kind() {
        let lit = litmus_for(1, 0, 4);
        let text = format!("{lit}");
        assert!(text.contains("litmus: 4 nodes"), "{text}");
    }
}
