//! The MOLDYN molecular-dynamics workload and the RCB partitioner.
//!
//! Molecules are uniformly distributed over a cuboidal region with a
//! Maxwellian velocity distribution. A pair list of potentially interacting
//! molecules (within twice the cutoff radius) is rebuilt periodically; the
//! partition comes from recursive coordinate bisection (RCB), following
//! Berger & Bokhari. The high computation-to-communication ratio of the
//! force loop is what masks mechanism differences for this application
//! (§4.4.3).

use commsense_des::Rng;

/// MOLDYN parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MoldynParams {
    /// Number of molecules.
    pub molecules: usize,
    /// Cuboid edge length.
    pub box_size: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
    /// Simulation iterations.
    pub iterations: usize,
    /// Pair list rebuild period (paper: every 20 iterations).
    pub rebuild_every: usize,
    /// Generator seed.
    pub seed: u64,
}

impl MoldynParams {
    /// A paper-flavoured configuration scaled to simulator size. The
    /// cutoff is well below the RCB partition size, so most interactions
    /// stay within a partition — the locality that lets MOLDYN's
    /// shared-memory locks see little contention (§4.4.3).
    pub fn paper() -> Self {
        MoldynParams {
            molecules: 2048,
            box_size: 20.0,
            cutoff: 1.2,
            iterations: 10,
            rebuild_every: 20,
            seed: 0x01d,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> Self {
        MoldynParams {
            molecules: 256,
            box_size: 10.0,
            cutoff: 1.0,
            iterations: 2,
            rebuild_every: 20,
            seed: 0x01d,
        }
    }
}

/// Recursive coordinate bisection: partitions `points` into `parts`
/// spatially compact groups of near-equal size.
///
/// # Panics
///
/// Panics if `parts == 0` or `points` is empty.
///
/// # Examples
///
/// ```
/// use commsense_workloads::moldyn::rcb_partition;
///
/// let pts: Vec<[f64; 3]> = (0..64).map(|i| [i as f64, 0.0, 0.0]).collect();
/// let owners = rcb_partition(&pts, 4);
/// // Contiguous quarters of the line.
/// assert_eq!(owners[0], owners[15]);
/// assert_ne!(owners[0], owners[16]);
/// ```
pub fn rcb_partition(points: &[[f64; 3]], parts: usize) -> Vec<u16> {
    assert!(
        parts > 0 && !points.is_empty(),
        "rcb needs points and parts"
    );
    let mut owner = vec![0u16; points.len()];
    let idx: Vec<usize> = (0..points.len()).collect();
    rcb_rec(points, idx, 0, parts, &mut owner);
    owner
}

fn rcb_rec(points: &[[f64; 3]], mut idx: Vec<usize>, base: usize, parts: usize, owner: &mut [u16]) {
    if parts == 1 {
        for i in idx {
            owner[i] = base as u16;
        }
        return;
    }
    // Split along the widest dimension.
    let mut spans = [(0usize, 0.0f64); 3];
    for (d, span) in spans.iter_mut().enumerate() {
        let lo = idx
            .iter()
            .map(|&i| points[i][d])
            .fold(f64::INFINITY, f64::min);
        let hi = idx
            .iter()
            .map(|&i| points[i][d])
            .fold(f64::NEG_INFINITY, f64::max);
        *span = (d, hi - lo);
    }
    let dim = spans
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("3 dims")
        .0;
    idx.sort_by(|&a, &b| points[a][dim].total_cmp(&points[b][dim]).then(a.cmp(&b)));
    let left_parts = parts / 2;
    let split = idx.len() * left_parts / parts;
    let right = idx.split_off(split);
    rcb_rec(points, idx, base, left_parts, owner);
    rcb_rec(points, right, base + left_parts, parts - left_parts, owner);
}

/// A generated MOLDYN system.
#[derive(Debug, Clone)]
pub struct MoldynSystem {
    /// Parameters used.
    pub params: MoldynParams,
    /// Processor count it was partitioned for.
    pub nprocs: usize,
    /// Molecule positions.
    pub pos: Vec<[f64; 3]>,
    /// Molecule velocities (Maxwellian).
    pub vel: Vec<[f64; 3]>,
    /// Owning processor per molecule (RCB).
    pub owner: Vec<u16>,
    /// Interaction pair list (i < j, within twice the cutoff).
    pub pairs: Vec<(u32, u32)>,
}

impl MoldynSystem {
    /// Generates a system partitioned over `nprocs` processors.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer molecules than processors.
    pub fn generate(params: &MoldynParams, nprocs: usize) -> Self {
        assert!(
            params.molecules >= nprocs,
            "need at least one molecule per processor"
        );
        let mut rng = Rng::new(params.seed);
        let n = params.molecules;
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.f64() * params.box_size,
                    rng.f64() * params.box_size,
                    rng.f64() * params.box_size,
                ]
            })
            .collect();
        let vel: Vec<[f64; 3]> = (0..n)
            .map(|_| [rng.normal() * 0.1, rng.normal() * 0.1, rng.normal() * 0.1])
            .collect();
        let owner = rcb_partition(&pos, nprocs);
        let pairs = build_pairs(&pos, 2.0 * params.cutoff);
        MoldynSystem {
            params: params.clone(),
            nprocs,
            pos,
            vel,
            owner,
            pairs,
        }
    }

    /// Molecule count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Molecules owned by processor `p`.
    pub fn molecules_of(&self, p: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.owner[i] as usize == p)
            .collect()
    }

    /// Pairs whose *lower* molecule is owned by `p` (the computing side).
    pub fn pairs_of(&self, p: usize) -> Vec<usize> {
        (0..self.pairs.len())
            .filter(|&k| self.owner[self.pairs[k].0 as usize] as usize == p)
            .collect()
    }

    /// Fraction of pairs crossing processors.
    pub fn cut_fraction(&self) -> f64 {
        let cut = self
            .pairs
            .iter()
            .filter(|&&(i, j)| self.owner[i as usize] != self.owner[j as usize])
            .count();
        cut as f64 / self.pairs.len().max(1) as f64
    }

    /// The pairwise force kernel: a short-range soft-sphere interaction on
    /// the x-displacement surrogate (stands in for the Lennard-Jones
    /// computation; ~dozens of FLOPs on the real code).
    pub fn pair_force(&self, k: usize, coords: &[f64]) -> f64 {
        let (i, j) = self.pairs[k];
        let d = coords[i as usize] - coords[j as usize];
        let r2 = self.params.cutoff * self.params.cutoff;
        d * (r2 - (d * d).min(r2)) * 1e-3
    }

    /// One sequential iteration over the surrogate 1-D coordinates:
    /// accumulate pair forces, then integrate.
    pub fn iterate(&self, coords: &mut [f64]) {
        let old = coords.to_vec();
        let mut force = vec![0.0; self.len()];
        for k in 0..self.pairs.len() {
            let f = self.pair_force(k, &old);
            let (i, j) = self.pairs[k];
            force[i as usize] += f;
            force[j as usize] -= f;
        }
        for i in 0..self.len() {
            coords[i] = old[i] + force[i];
        }
    }

    /// Initial surrogate coordinates (the x coordinate of each molecule).
    pub fn init_coords(&self) -> Vec<f64> {
        self.pos.iter().map(|p| p[0]).collect()
    }

    /// The sequential reference: surrogate coordinates after all
    /// iterations (the pair list is fixed between rebuilds; with
    /// `iterations <= rebuild_every` a single list is exact).
    pub fn reference(&self) -> Vec<f64> {
        let mut coords = self.init_coords();
        for _ in 0..self.params.iterations {
            self.iterate(&mut coords);
        }
        coords
    }
}

/// Builds the pair list: all `(i, j)` with `i < j` within `radius`.
pub fn build_pairs(pos: &[[f64; 3]], radius: f64) -> Vec<(u32, u32)> {
    // Cell-list construction: O(n) for uniform densities.
    let r2 = radius * radius;
    let cell = radius.max(1e-9);
    let key = |p: &[f64; 3]| {
        (
            (p[0] / cell).floor() as i64,
            (p[1] / cell).floor() as i64,
            (p[2] / cell).floor() as i64,
        )
    };
    let mut cells: std::collections::BTreeMap<(i64, i64, i64), Vec<u32>> =
        std::collections::BTreeMap::new();
    for (i, p) in pos.iter().enumerate() {
        cells.entry(key(p)).or_default().push(i as u32);
    }
    let mut pairs = Vec::new();
    for (&(cx, cy, cz), members) in &cells {
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let Some(other) = cells.get(&(cx + dx, cy + dy, cz + dz)) else {
                        continue;
                    };
                    for &i in members {
                        for &j in other {
                            if i < j {
                                let (a, b) = (&pos[i as usize], &pos[j as usize]);
                                let d2 = (a[0] - b[0]).powi(2)
                                    + (a[1] - b[1]).powi(2)
                                    + (a[2] - b[2]).powi(2);
                                if d2 <= r2 {
                                    pairs.push((i, j));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let p = MoldynParams::small();
        let a = MoldynSystem::generate(&p, 8);
        let b = MoldynSystem::generate(&p, 8);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.owner, b.owner);
    }

    #[test]
    fn rcb_is_balanced() {
        let s = MoldynSystem::generate(&MoldynParams::paper(), 32);
        let counts: Vec<usize> = (0..32).map(|p| s.molecules_of(p).len()).collect();
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(max - min <= 1 + s.len() / 32, "imbalanced {counts:?}");
    }

    #[test]
    fn rcb_handles_non_power_of_two() {
        let pts: Vec<[f64; 3]> = (0..90)
            .map(|i| [i as f64, (i * 7 % 13) as f64, 0.0])
            .collect();
        let owners = rcb_partition(&pts, 6);
        let mut counts = vec![0; 6];
        for &o in &owners {
            counts[o as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 15), "{counts:?}");
    }

    #[test]
    fn rcb_partitions_are_spatially_compact() {
        let s = MoldynSystem::generate(&MoldynParams::paper(), 32);
        // RCB keeps a clear majority of pair volume near the diagonal
        // compared to a random partition (which would cut ~31/32 = 97%).
        let f = s.cut_fraction();
        assert!(f < 0.7, "cut fraction {f}");
        assert!(f > 0.0, "some pairs must cross");
    }

    #[test]
    fn pairs_respect_radius() {
        let s = MoldynSystem::generate(&MoldynParams::small(), 4);
        let r = 2.0 * s.params.cutoff;
        for &(i, j) in &s.pairs {
            assert!(i < j);
            let (a, b) = (&s.pos[i as usize], &s.pos[j as usize]);
            let d2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
            assert!(d2 <= r * r + 1e-12);
        }
    }

    #[test]
    fn pair_list_matches_brute_force() {
        let p = MoldynParams::small();
        let s = MoldynSystem::generate(&p, 4);
        let r = 2.0 * p.cutoff;
        let mut brute = Vec::new();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                let (a, b) = (&s.pos[i], &s.pos[j]);
                let d2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
                if d2 <= r * r {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(s.pairs, brute);
    }

    #[test]
    fn iterate_conserves_total_coordinate() {
        let s = MoldynSystem::generate(&MoldynParams::small(), 4);
        let before: f64 = s.init_coords().iter().sum();
        let after: f64 = s.reference().iter().sum();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn velocities_are_roughly_maxwellian() {
        let s = MoldynSystem::generate(&MoldynParams::paper(), 4);
        let mean: f64 = s.vel.iter().map(|v| v[0]).sum::<f64>() / s.len() as f64;
        assert!(mean.abs() < 0.02, "velocity mean {mean}");
    }
}
