//! Property test: randomly generated programs (with matched barrier
//! counts) always terminate, keep per-node accounting consistent with
//! wall time, and leave the protocol coherent.

use std::any::Any;

use commsense_cache::{Heap, Word};
use commsense_machine::program::{HandlerCtx, NodeCtx, Program, Step};
use commsense_machine::{Machine, MachineConfig, MachineSpec, Mechanism};
use commsense_msgpass::{ActiveMessage, HandlerId};
use proptest::prelude::*;

struct Script(Vec<Step>, usize);

impl Program for Script {
    fn resume(&mut self, _ctx: &mut NodeCtx) -> Step {
        let s = self.0.get(self.1).cloned().unwrap_or(Step::Done);
        self.1 += 1;
        s
    }
    fn on_message(&mut self, _h: u16, _a: &[u64], _b: &[u64], _c: &mut HandlerCtx) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A step chosen from the non-blocking-on-others subset (no WaitMsg, so a
/// random program cannot deadlock on a message that never comes).
#[derive(Debug, Clone, Copy)]
enum GenStep {
    Compute(u8),
    Load(u8),
    Store(u8),
    Rmw(u8),
    Prefetch(u8, bool),
    SpinWait(u8),
    Send(u8),
    Poll,
}

fn gen_step() -> impl Strategy<Value = GenStep> {
    prop_oneof![
        any::<u8>().prop_map(GenStep::Compute),
        any::<u8>().prop_map(GenStep::Load),
        any::<u8>().prop_map(GenStep::Store),
        any::<u8>().prop_map(GenStep::Rmw),
        (any::<u8>(), any::<bool>()).prop_map(|(l, e)| GenStep::Prefetch(l, e)),
        any::<u8>().prop_map(GenStep::SpinWait),
        any::<u8>().prop_map(GenStep::Send),
        Just(GenStep::Poll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_terminate_with_consistent_accounting(
        per_node in proptest::collection::vec(
            proptest::collection::vec(gen_step(), 0..25), 4),
        barriers in 0usize..3,
        mech_idx in 0usize..5,
        write_buffer in 0usize..3,
    ) {
        let mech = Mechanism::ALL[mech_idx];
        let mut cfg = MachineConfig::tiny().with_mechanism(mech);
        cfg.write_buffer = write_buffer * 2;
        let lines = 32;
        let mut heap = Heap::new(cfg.nodes);
        let arr = heap.alloc(lines, |i| i % 4);
        let programs: Vec<Box<dyn Program>> = per_node
            .iter()
            .enumerate()
            .map(|(me, steps)| {
                let mut prog: Vec<Step> = Vec::new();
                let chunk = steps.len() / (barriers + 1);
                for (k, gs) in steps.iter().enumerate() {
                    if barriers > 0 && chunk > 0 && k % chunk == 0 && k > 0
                        && prog.iter().filter(|s| matches!(s, Step::Barrier)).count() < barriers
                    {
                        prog.push(Step::Barrier);
                    }
                    prog.push(match *gs {
                        GenStep::Compute(c) => Step::Compute(1 + c as u64 % 40),
                        GenStep::Load(l) => Step::Load(Word::new(arr.line(l as usize % lines), 0)),
                        GenStep::Store(l) => {
                            Step::Store(Word::new(arr.line(l as usize % lines), 0), l as f64)
                        }
                        GenStep::Rmw(l) => Step::Rmw(
                            arr.line(l as usize % lines),
                            commsense_machine::RmwOp::IncW0,
                        ),
                        GenStep::Prefetch(l, e) => Step::Prefetch {
                            line: arr.line(l as usize % lines),
                            exclusive: e,
                        },
                        GenStep::SpinWait(c) => Step::SpinWait(1 + c as u64 % 30),
                        GenStep::Send(d) => {
                            let dst = (me + 1 + d as usize % 3) % 4;
                            Step::Send(ActiveMessage::new(dst, HandlerId(1), vec![d as u64]))
                        }
                        GenStep::Poll => Step::Poll,
                    });
                }
                // Pad missing barriers so all nodes arrive the same number
                // of times.
                while prog.iter().filter(|s| matches!(s, Step::Barrier)).count() < barriers {
                    prog.push(Step::Barrier);
                }
                Box::new(Script(prog, 0)) as Box<dyn Program>
            })
            .collect();
        let initial = vec![0.0; heap.total_words()];
        let mut m = Machine::new(cfg.clone(), MachineSpec { heap, initial, programs });
        m.enable_trace(100_000);
        let stats = m.run(); // must terminate (deadlock panics)
        let clock = cfg.clock();
        // Accounting: no node accounts more than the run lasted.
        for (i, n) in stats.nodes.iter().enumerate() {
            let total = clock.cycles_at_f64(n.total());
            if total > stats.runtime_cycles as f64 + 1.0 {
                eprintln!("mech={mech:?} wb={} node {i}: sync={:?} ovh={:?} mem={:?} cmp={:?}",
                    cfg.write_buffer, n.sync, n.overhead, n.mem, n.compute);
                eprintln!("{}", m.trace().unwrap().render_node(i, clock));
            }
            prop_assert!(
                total <= stats.runtime_cycles as f64 + 1.0,
                "node {i} accounted {total} > runtime {}",
                stats.runtime_cycles
            );
        }
        // The protocol ends coherent.
        m.protocol().check_invariants((0..lines).map(|i| arr.line(i)));
    }
}
