//! Run statistics: the paper's four-bucket time breakdown plus machine-wide
//! counters.

use commsense_des::{Clock, Time};
use commsense_mesh::VolumeBreakdown;

/// The four execution-time components of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// Barriers, lock acquisition, spin-waiting, waiting for messages.
    Sync,
    /// Processor overhead to send and receive messages (including
    /// gather/scatter copying for bulk transfer).
    MsgOverhead,
    /// Stalls on cache misses and network-interface resources.
    MemWait,
    /// Useful computation.
    Compute,
}

impl Bucket {
    /// All buckets in Figure 4's stacking order.
    pub const ALL: [Bucket; 4] = [
        Bucket::Sync,
        Bucket::MsgOverhead,
        Bucket::MemWait,
        Bucket::Compute,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Sync => "sync",
            Bucket::MsgOverhead => "msg-overhead",
            Bucket::MemWait => "mem+ni-wait",
            Bucket::Compute => "compute",
        }
    }
}

/// Per-node time breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Synchronization time.
    pub sync: Time,
    /// Message send/receive processor overhead.
    pub overhead: Time,
    /// Memory and network-interface stall time.
    pub mem: Time,
    /// Compute time.
    pub compute: Time,
}

impl NodeStats {
    /// Adds `d` to the given bucket.
    pub fn charge(&mut self, bucket: Bucket, d: Time) {
        match bucket {
            Bucket::Sync => self.sync += d,
            Bucket::MsgOverhead => self.overhead += d,
            Bucket::MemWait => self.mem += d,
            Bucket::Compute => self.compute += d,
        }
    }

    /// Value of one bucket.
    pub fn bucket(&self, bucket: Bucket) -> Time {
        match bucket {
            Bucket::Sync => self.sync,
            Bucket::MsgOverhead => self.overhead,
            Bucket::MemWait => self.mem,
            Bucket::Compute => self.compute,
        }
    }

    /// Sum of all buckets (should approximate the node's busy lifetime).
    pub fn total(&self) -> Time {
        self.sync + self.overhead + self.mem + self.compute
    }
}

/// A power-of-two histogram of demand-miss latencies (cycles).
///
/// Bucket `i` counts misses with latency in `[2^i, 2^(i+1))`; the last
/// bucket absorbs everything larger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Counts per power-of-two bucket.
    pub buckets: [u64; 14],
    /// Total observations.
    pub count: u64,
    /// Sum of latencies (cycles) for mean computation.
    pub sum_cycles: u64,
    /// Largest latency recorded (cycles); bounds the overflow bucket,
    /// whose power-of-two edge would otherwise be unknown.
    pub max_cycles: u64,
}

impl LatencyHistogram {
    /// Records one miss of `cycles` latency.
    pub fn record(&mut self, cycles: u64) {
        let idx = (64 - cycles.max(1).leading_zeros() as usize - 1).min(13);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_cycles += cycles;
        self.max_cycles = self.max_cycles.max(cycles);
    }

    /// Mean latency in cycles, if any misses occurred.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_cycles as f64 / self.count as f64)
        }
    }

    /// An upper bound on the `q`-quantile (0..=1), from bucket edges.
    ///
    /// The overflow bucket has no power-of-two edge, so when it decides the
    /// quantile the bound is the largest latency actually recorded rather
    /// than a meaningless `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i + 1 < self.buckets.len() {
                    Some(1u64 << (i + 1))
                } else {
                    Some(self.max_cycles)
                };
            }
        }
        Some(self.max_cycles)
    }
}

/// Results of one machine run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock runtime (last program completion).
    pub runtime: Time,
    /// Runtime in processor cycles at the configured clock.
    pub runtime_cycles: u64,
    /// Per-node breakdowns.
    pub nodes: Vec<NodeStats>,
    /// Application communication volume injected into the network.
    pub volume: VolumeBreakdown,
    /// Bytes that crossed the bisection cut.
    pub bisection: VolumeBreakdown,
    /// Coherence protocol counters.
    pub proto: commsense_cache::ProtoStats,
    /// Application active messages sent.
    pub messages_sent: u64,
    /// Simulation events processed (performance diagnostics).
    pub events: u64,
    /// Mean end-to-end network packet latency, if any packets flowed.
    pub mean_packet_latency: Option<Time>,
    /// Prefetches issued for data that was already local (pure overhead —
    /// the effect that sinks prefetching on ICCG, §4).
    pub useless_prefetches: u64,
    /// Prefetched lines that satisfied a later demand reference.
    pub useful_prefetches: u64,
    /// Aggregate cache (hits, misses) across all nodes.
    pub cache_hit_miss: (u64, u64),
    /// Histogram of remote demand-miss latencies.
    pub miss_latency: LatencyHistogram,
    /// High-priority packets that bypassed queued low-priority traffic at
    /// a link (zero unless the criticality-aware variant sent any
    /// high-priority packets into a contended mesh).
    pub priority_bypasses: u64,
    /// Low-priority packets overtaken by at least one bypass.
    pub low_bypassed: u64,
}

impl RunStats {
    /// Mean per-node value of one bucket, in cycles.
    pub fn mean_bucket_cycles(&self, bucket: Bucket, clock: Clock) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .nodes
            .iter()
            .map(|n| clock.cycles_at_f64(n.bucket(bucket)))
            .sum();
        sum / self.nodes.len() as f64
    }

    /// Mean per-node total accounted time in cycles.
    pub fn mean_total_cycles(&self, clock: Clock) -> f64 {
        Bucket::ALL
            .iter()
            .map(|&b| self.mean_bucket_cycles(b, clock))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut s = NodeStats::default();
        s.charge(Bucket::Sync, Time::from_ns(10));
        s.charge(Bucket::Compute, Time::from_ns(30));
        s.charge(Bucket::MemWait, Time::from_ns(5));
        s.charge(Bucket::MsgOverhead, Time::from_ns(5));
        assert_eq!(s.total(), Time::from_ns(50));
        assert_eq!(s.bucket(Bucket::Compute), Time::from_ns(30));
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for c in [1u64, 3, 40, 45, 70, 5000, 1 << 20] {
            h.record(c);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets[0], 1); // 1
        assert_eq!(h.buckets[1], 1); // 3
        assert_eq!(h.buckets[5], 2); // 40, 45 in [32,64)
        assert_eq!(h.buckets[6], 1); // 70
        assert_eq!(h.buckets[12], 1); // 5000
        assert_eq!(h.buckets[13], 1); // overflow bucket
        assert!(h.mean().unwrap() > 100.0);
        assert!(h.quantile_upper_bound(0.5).unwrap() <= 128);
        assert_eq!(LatencyHistogram::default().mean(), None);
    }

    #[test]
    fn quantile_overflow_bucket_uses_recorded_max() {
        let mut h = LatencyHistogram::default();
        h.record(10);
        h.record(1 << 20); // lands in the overflow bucket
        assert_eq!(h.max_cycles, 1 << 20);
        // The upper quantile is decided by the overflow bucket: the bound
        // must be the recorded maximum, not u64::MAX.
        assert_eq!(h.quantile_upper_bound(1.0), Some(1 << 20));
        // Even all-overflow histograms report a finite bound.
        let mut all_over = LatencyHistogram::default();
        all_over.record(123_456);
        assert_eq!(all_over.quantile_upper_bound(0.5), Some(123_456));
        // Lower quantiles still come from power-of-two edges.
        assert_eq!(h.quantile_upper_bound(0.25), Some(16));
    }

    #[test]
    fn bucket_labels_nonempty() {
        for b in Bucket::ALL {
            assert!(!b.label().is_empty());
        }
    }
}
