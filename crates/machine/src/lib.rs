//! The Alewife-class machine emulator.
//!
//! This crate ties the substrates together into a runnable 32-node (by
//! default) multiprocessor model:
//!
//! * Each node executes a [`Program`]: an abstract
//!   instruction stream of [`Step`]s — compute blocks,
//!   shared-memory accesses, prefetches, active-message sends, polls,
//!   barriers — which the machine charges to the paper's four time buckets
//!   (Synchronization, Message Overhead, Memory + NI Wait, Compute;
//!   Figure 4).
//! * Shared-memory accesses run the LimitLESS directory protocol from
//!   `commsense-cache` over the contention-aware mesh from
//!   `commsense-mesh`; message sends travel the same mesh and are received
//!   by interrupts or polling with `commsense-msgpass` costs.
//! * The machine implements both barrier styles (shared-memory counter +
//!   flag with real coherence traffic; message-passing combining tree) and
//!   both sensitivity knobs of §5: background cross-traffic that consumes
//!   bisection bandwidth, and processor-clock scaling against the
//!   fixed-wall-clock network. A third mode emulates arbitrary uniform
//!   remote-miss latencies on an ideal network (the paper's context-switch
//!   experiment, Figure 10).
//! * An optional observability layer (see [`ObserveConfig`]) records an
//!   epoch-sampled metric time series, a full execution trace, and the
//!   network packet lifecycle, exportable as a Perfetto/Chrome trace via
//!   [`perfetto::export_trace`] — with bit-identical simulated cycle
//!   counts whether recording is on or off.
//! * An optional correctness harness (see [`CheckConfig`]) asserts the
//!   coherence-protocol invariants after every transition, tracks message
//!   conservation against the network recorder, and can replay the applied
//!   load/store stream against a sequential-consistency oracle — also
//!   without perturbing simulated cycles.
//!
//! See `commsense-apps` for complete programs and the crate tests for
//! minimal ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod critpath;
pub mod invariants;
pub mod machine;
pub mod metrics;
pub mod oracle;
pub mod perfetto;
pub mod program;
pub mod stats;
pub mod trace;

pub use config::{
    CheckConfig, CostModel, LatencyEmulation, MachineConfig, Mechanism, ObserveConfig,
    ProtoVariant, ReceiveMode,
};
pub use critpath::{analyze, CritPath, Stage};
pub use invariants::{INVARIANT_MARKER, ORACLE_MARKER};
pub use machine::{DispatchKindProfile, DispatchProfile, Machine, MachineSpec};
pub use metrics::{MetricsSeries, Observation, RunState};
pub use program::{HandlerCtx, NodeCtx, Program, RmwOp, Step};
pub use stats::{Bucket, LatencyHistogram, NodeStats, RunStats};
pub use trace::{Trace, TraceEvent, TraceKind};
