//! Epoch-sampled machine metrics: flat time series recorded while a run
//! executes, answering *when* the Figure-4 buckets, link loads, and queue
//! depths happened rather than only their end-of-run totals.
//!
//! The sampler lives inside the machine's event loop: when observation is
//! enabled (see [`crate::ObserveConfig`]), every popped event whose time has
//! crossed the next epoch boundary triggers one snapshot per elapsed epoch.
//! Sampling reads machine state but never writes it and never schedules
//! events, so simulated cycle counts are bit-identical with observation on
//! or off (the machine's tie-ordering is untouched because no new events
//! enter the queue). When observation is off, the per-pop cost is a single
//! integer comparison against a [`commsense_des::Time::MAX`] sentinel.

use commsense_des::Clock;
use commsense_mesh::NetRecording;

use crate::trace::Trace;

/// What a node was doing at a sample instant — the Figure-4 buckets as an
/// instantaneous state, plus `Done` for retired programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RunState {
    /// Executing application work.
    Compute = 0,
    /// Stalled on a cache miss or a network-interface resource.
    MemWait = 1,
    /// Running a message handler or paying send/receive overhead.
    MsgOverhead = 2,
    /// In a barrier, or waiting for a message.
    Sync = 3,
    /// Program retired.
    Done = 4,
}

impl RunState {
    /// All states, in encoding order.
    pub const ALL: [RunState; 5] = [
        RunState::Compute,
        RunState::MemWait,
        RunState::MsgOverhead,
        RunState::Sync,
        RunState::Done,
    ];

    /// Short label used in reports and trace tracks.
    pub fn label(self) -> &'static str {
        match self {
            RunState::Compute => "compute",
            RunState::MemWait => "mem-wait",
            RunState::MsgOverhead => "msg-overhead",
            RunState::Sync => "sync",
            RunState::Done => "done",
        }
    }

    /// Decodes the byte stored in [`MetricsSeries::node_state`].
    pub fn from_u8(v: u8) -> RunState {
        match v {
            0 => RunState::Compute,
            1 => RunState::MemWait,
            2 => RunState::MsgOverhead,
            3 => RunState::Sync,
            _ => RunState::Done,
        }
    }
}

/// Epoch-sampled metric series for one run.
///
/// All series are flat `Vec`s indexed `sample * width + item` (width =
/// `nodes` for node series, `links` for link series) so recording is a
/// handful of pushes with no per-sample allocation after warmup.
#[derive(Debug, Clone)]
pub struct MetricsSeries {
    /// Number of nodes sampled per epoch.
    pub nodes: usize,
    /// Number of links sampled per epoch.
    pub links: usize,
    /// Sampling period in picoseconds.
    pub epoch_ps: u64,
    /// Sample timestamps (picoseconds); strictly increasing, one entry per
    /// epoch boundary crossed.
    pub at_ps: Vec<u64>,
    /// Per-node [`RunState`] encoded as `u8` (`sample * nodes + node`).
    pub node_state: Vec<u8>,
    /// Per-node outstanding coherence transactions (`sample * nodes + node`).
    pub outstanding: Vec<u16>,
    /// Per-link cumulative busy picoseconds (`sample * links + link`); take
    /// deltas between samples for utilization (see
    /// [`MetricsSeries::link_utilization`]).
    pub link_busy_ps: Vec<u64>,
    /// Per-link queued-waiter count (`sample * links + link`).
    pub link_queue: Vec<u16>,
    /// DES event-queue depth at each sample.
    pub event_queue_depth: Vec<u32>,
    /// Nodes inside the barrier at each sample.
    pub barrier_occupancy: Vec<u32>,
}

impl MetricsSeries {
    pub(crate) fn new(nodes: usize, links: usize, epoch_ps: u64) -> Self {
        MetricsSeries {
            nodes,
            links,
            epoch_ps,
            at_ps: Vec::new(),
            node_state: Vec::new(),
            outstanding: Vec::new(),
            link_busy_ps: Vec::new(),
            link_queue: Vec::new(),
            event_queue_depth: Vec::new(),
            barrier_occupancy: Vec::new(),
        }
    }

    /// Number of samples collected.
    pub fn samples(&self) -> usize {
        self.at_ps.len()
    }

    /// The [`RunState`] of `node` at sample `s`.
    pub fn state(&self, s: usize, node: usize) -> RunState {
        RunState::from_u8(self.node_state[s * self.nodes + node])
    }

    /// Fraction of `link`'s time spent serializing packets during the epoch
    /// ending at sample `s`, in `[0, 1]`.
    pub fn link_utilization(&self, s: usize, link: usize) -> f64 {
        let busy = self.link_busy_ps[s * self.links + link];
        let prev = if s == 0 {
            0
        } else {
            self.link_busy_ps[(s - 1) * self.links + link]
        };
        let span = if s == 0 {
            self.at_ps[0]
        } else {
            self.at_ps[s] - self.at_ps[s - 1]
        };
        if span == 0 {
            return 0.0;
        }
        ((busy - prev) as f64 / span as f64).min(1.0)
    }

    /// Fraction of nodes in `state` at sample `s`.
    pub fn state_fraction(&self, s: usize, state: RunState) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let row = &self.node_state[s * self.nodes..(s + 1) * self.nodes];
        row.iter().filter(|&&v| v == state as u8).count() as f64 / self.nodes as f64
    }
}

/// Everything the observability layer collected during one run, detached
/// from the machine.
///
/// Produced by `Machine::take_observation` after `run` when the machine was
/// configured with an [`crate::ObserveConfig`]; feeds the Perfetto exporter
/// ([`crate::perfetto::export_trace`]) and run manifests.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The epoch-sampled metric series.
    pub series: MetricsSeries,
    /// The full execution trace (send/handler/block/resume events).
    pub trace: Trace,
    /// Network packet-lifecycle records.
    pub net: NetRecording,
    /// The processor clock of the run (for cycle conversions).
    pub clock: Clock,
    /// Node count.
    pub nodes: usize,
    /// Human-readable label per dense link id (e.g. `"E(2,1)"`).
    pub link_labels: Vec<String>,
}

impl Observation {
    /// Mean utilization of `link` over the whole run, in `[0, 1]`.
    pub fn mean_link_utilization(&self, link: usize) -> f64 {
        let n = self.series.samples();
        if n == 0 {
            return 0.0;
        }
        let total = self.series.at_ps[n - 1];
        if total == 0 {
            return 0.0;
        }
        let busy = self.series.link_busy_ps[(n - 1) * self.series.links + link];
        (busy as f64 / total as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_state_roundtrip() {
        for s in RunState::ALL {
            assert_eq!(RunState::from_u8(s as u8), s);
            assert!(!s.label().is_empty());
        }
        assert_eq!(RunState::from_u8(200), RunState::Done);
    }

    #[test]
    fn series_indexing_and_utilization() {
        let mut m = MetricsSeries::new(2, 1, 1_000_000);
        // Sample 1 at t=1us: node0 compute, node1 sync; link busy 250ns.
        m.at_ps.push(1_000_000);
        m.node_state.extend([0u8, 3]);
        m.outstanding.extend([0u16, 2]);
        m.link_busy_ps.push(250_000);
        m.link_queue.push(1);
        m.event_queue_depth.push(5);
        m.barrier_occupancy.push(0);
        // Sample 2 at t=2us: link busy 1.25us cumulative (full epoch busy).
        m.at_ps.push(2_000_000);
        m.node_state.extend([4u8, 4]);
        m.outstanding.extend([0u16, 0]);
        m.link_busy_ps.push(1_250_000);
        m.link_queue.push(0);
        m.event_queue_depth.push(1);
        m.barrier_occupancy.push(0);

        assert_eq!(m.samples(), 2);
        assert_eq!(m.state(0, 1), RunState::Sync);
        assert_eq!(m.state(1, 0), RunState::Done);
        assert!((m.link_utilization(0, 0) - 0.25).abs() < 1e-9);
        assert!((m.link_utilization(1, 0) - 1.0).abs() < 1e-9);
        assert!((m.state_fraction(0, RunState::Compute) - 0.5).abs() < 1e-9);
        assert!((m.state_fraction(1, RunState::Done) - 1.0).abs() < 1e-9);
    }
}
