//! Epoch-sampled machine metrics: flat time series recorded while a run
//! executes, answering *when* the Figure-4 buckets, link loads, and queue
//! depths happened rather than only their end-of-run totals.
//!
//! The sampler lives inside the machine's event loop: when observation is
//! enabled (see [`crate::ObserveConfig`]), every popped event whose time has
//! crossed the next epoch boundary triggers one snapshot per elapsed epoch.
//! Sampling reads machine state but never writes it and never schedules
//! events, so simulated cycle counts are bit-identical with observation on
//! or off (the machine's tie-ordering is untouched because no new events
//! enter the queue). When observation is off, the per-pop cost is a single
//! integer comparison against a [`commsense_des::Time::MAX`] sentinel.

use commsense_des::Clock;
use commsense_mesh::NetRecording;

use crate::trace::Trace;

/// What a node was doing at a sample instant — the Figure-4 buckets as an
/// instantaneous state, plus `Done` for retired programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RunState {
    /// Executing application work.
    Compute = 0,
    /// Stalled on a cache miss or a network-interface resource.
    MemWait = 1,
    /// Running a message handler or paying send/receive overhead.
    MsgOverhead = 2,
    /// In a barrier, or waiting for a message.
    Sync = 3,
    /// Program retired.
    Done = 4,
}

impl RunState {
    /// All states, in encoding order.
    pub const ALL: [RunState; 5] = [
        RunState::Compute,
        RunState::MemWait,
        RunState::MsgOverhead,
        RunState::Sync,
        RunState::Done,
    ];

    /// Short label used in reports and trace tracks.
    pub fn label(self) -> &'static str {
        match self {
            RunState::Compute => "compute",
            RunState::MemWait => "mem-wait",
            RunState::MsgOverhead => "msg-overhead",
            RunState::Sync => "sync",
            RunState::Done => "done",
        }
    }

    /// Decodes the byte stored in [`MetricsSeries::node_state`].
    pub fn from_u8(v: u8) -> RunState {
        match v {
            0 => RunState::Compute,
            1 => RunState::MemWait,
            2 => RunState::MsgOverhead,
            3 => RunState::Sync,
            _ => RunState::Done,
        }
    }
}

/// Epoch-sampled metric series for one run.
///
/// All series are flat `Vec`s indexed `sample * width + item` (width =
/// `nodes` for node series, `links` for link series) so recording is a
/// handful of pushes with no per-sample allocation after warmup.
///
/// Above the configured sparse threshold (see
/// [`crate::ObserveConfig::sparse_threshold`]) the per-node and per-link
/// columns cover a deterministic evenly spaced *sample* of the machine —
/// [`MetricsSeries::node_ids`] / [`MetricsSeries::link_ids`] name the
/// sampled items — while [`MetricsSeries::state_counts`] stays exact over
/// every node. At or below the threshold the sample is the identity and the
/// series are bit-identical with the pre-sparse seed.
#[derive(Debug, Clone)]
pub struct MetricsSeries {
    /// Number of node columns sampled per epoch (`node_ids.len()`).
    pub nodes: usize,
    /// Number of link columns sampled per epoch (`link_ids.len()`).
    pub links: usize,
    /// Total compute nodes in the machine (denominator of
    /// [`MetricsSeries::state_fraction`]; equals `nodes` when dense).
    pub total_nodes: usize,
    /// The node id behind each node column (identity when dense).
    pub node_ids: Vec<u32>,
    /// The dense link id behind each link column (identity when dense).
    pub link_ids: Vec<u32>,
    /// Sampling period in picoseconds.
    pub epoch_ps: u64,
    /// Sample timestamps (picoseconds); strictly increasing, one entry per
    /// epoch boundary crossed.
    pub at_ps: Vec<u64>,
    /// Per-sampled-node [`RunState`] encoded as `u8` (`sample * nodes +
    /// column`).
    pub node_state: Vec<u8>,
    /// Per-sampled-node outstanding coherence transactions (`sample * nodes
    /// + column`).
    pub outstanding: Vec<u16>,
    /// Exact count of nodes in each [`RunState`], over *all* nodes (not
    /// just the sampled ones): `sample * 5 + state as usize`.
    pub state_counts: Vec<u32>,
    /// Per-link cumulative busy picoseconds (`sample * links + link`); take
    /// deltas between samples for utilization (see
    /// [`MetricsSeries::link_utilization`]).
    pub link_busy_ps: Vec<u64>,
    /// Per-link queued-waiter count (`sample * links + link`).
    pub link_queue: Vec<u16>,
    /// DES event-queue depth at each sample.
    pub event_queue_depth: Vec<u32>,
    /// Nodes inside the barrier at each sample.
    pub barrier_occupancy: Vec<u32>,
}

impl MetricsSeries {
    pub(crate) fn new(
        node_ids: Vec<u32>,
        link_ids: Vec<u32>,
        total_nodes: usize,
        epoch_ps: u64,
    ) -> Self {
        MetricsSeries {
            nodes: node_ids.len(),
            links: link_ids.len(),
            total_nodes,
            node_ids,
            link_ids,
            epoch_ps,
            at_ps: Vec::new(),
            node_state: Vec::new(),
            outstanding: Vec::new(),
            state_counts: Vec::new(),
            link_busy_ps: Vec::new(),
            link_queue: Vec::new(),
            event_queue_depth: Vec::new(),
            barrier_occupancy: Vec::new(),
        }
    }

    /// The deterministic evenly spaced sample of `total` items used when a
    /// machine exceeds the sparse threshold: `want` ids at stride
    /// `total/want` (identity when `want >= total`).
    pub(crate) fn sample_ids(total: usize, want: usize) -> Vec<u32> {
        if want >= total {
            (0..total as u32).collect()
        } else {
            (0..want).map(|i| (i * total / want) as u32).collect()
        }
    }

    /// Number of samples collected.
    pub fn samples(&self) -> usize {
        self.at_ps.len()
    }

    /// The [`RunState`] of node column `col` at sample `s` (the node id is
    /// `node_ids[col]`).
    pub fn state(&self, s: usize, col: usize) -> RunState {
        RunState::from_u8(self.node_state[s * self.nodes + col])
    }

    /// Fraction of `link`'s time spent serializing packets during the epoch
    /// ending at sample `s`, in `[0, 1]`.
    pub fn link_utilization(&self, s: usize, link: usize) -> f64 {
        let busy = self.link_busy_ps[s * self.links + link];
        let prev = if s == 0 {
            0
        } else {
            self.link_busy_ps[(s - 1) * self.links + link]
        };
        let span = if s == 0 {
            self.at_ps[0]
        } else {
            self.at_ps[s] - self.at_ps[s - 1]
        };
        if span == 0 {
            return 0.0;
        }
        ((busy - prev) as f64 / span as f64).min(1.0)
    }

    /// Fraction of nodes in `state` at sample `s`. Exact over all nodes
    /// even when the per-node columns are sampled.
    pub fn state_fraction(&self, s: usize, state: RunState) -> f64 {
        if self.total_nodes == 0 {
            return 0.0;
        }
        self.state_counts[s * RunState::ALL.len() + state as usize] as f64 / self.total_nodes as f64
    }
}

/// Everything the observability layer collected during one run, detached
/// from the machine.
///
/// Produced by `Machine::take_observation` after `run` when the machine was
/// configured with an [`crate::ObserveConfig`]; feeds the Perfetto exporter
/// ([`crate::perfetto::export_trace`]) and run manifests.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The epoch-sampled metric series.
    pub series: MetricsSeries,
    /// The full execution trace (send/handler/block/resume events).
    pub trace: Trace,
    /// Network packet-lifecycle records.
    pub net: NetRecording,
    /// The processor clock of the run (for cycle conversions).
    pub clock: Clock,
    /// Node count.
    pub nodes: usize,
    /// Human-readable label per *sampled* link column (aligned with
    /// `series.link_ids`), e.g. `"E(2,1)"`.
    pub link_labels: Vec<String>,
}

impl Observation {
    /// Mean utilization of `link` over the whole run, in `[0, 1]`.
    pub fn mean_link_utilization(&self, link: usize) -> f64 {
        let n = self.series.samples();
        if n == 0 {
            return 0.0;
        }
        let total = self.series.at_ps[n - 1];
        if total == 0 {
            return 0.0;
        }
        let busy = self.series.link_busy_ps[(n - 1) * self.series.links + link];
        (busy as f64 / total as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_state_roundtrip() {
        for s in RunState::ALL {
            assert_eq!(RunState::from_u8(s as u8), s);
            assert!(!s.label().is_empty());
        }
        assert_eq!(RunState::from_u8(200), RunState::Done);
    }

    #[test]
    fn series_indexing_and_utilization() {
        let mut m = MetricsSeries::new(vec![0, 1], vec![0], 2, 1_000_000);
        // Sample 1 at t=1us: node0 compute, node1 sync; link busy 250ns.
        m.at_ps.push(1_000_000);
        m.node_state.extend([0u8, 3]);
        m.outstanding.extend([0u16, 2]);
        m.state_counts.extend([1u32, 0, 0, 1, 0]);
        m.link_busy_ps.push(250_000);
        m.link_queue.push(1);
        m.event_queue_depth.push(5);
        m.barrier_occupancy.push(0);
        // Sample 2 at t=2us: link busy 1.25us cumulative (full epoch busy).
        m.at_ps.push(2_000_000);
        m.node_state.extend([4u8, 4]);
        m.outstanding.extend([0u16, 0]);
        m.state_counts.extend([0u32, 0, 0, 0, 2]);
        m.link_busy_ps.push(1_250_000);
        m.link_queue.push(0);
        m.event_queue_depth.push(1);
        m.barrier_occupancy.push(0);

        assert_eq!(m.samples(), 2);
        assert_eq!(m.state(0, 1), RunState::Sync);
        assert_eq!(m.state(1, 0), RunState::Done);
        assert!((m.link_utilization(0, 0) - 0.25).abs() < 1e-9);
        assert!((m.link_utilization(1, 0) - 1.0).abs() < 1e-9);
        assert!((m.state_fraction(0, RunState::Compute) - 0.5).abs() < 1e-9);
        assert!((m.state_fraction(1, RunState::Done) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_ids_dense_and_sparse() {
        assert_eq!(MetricsSeries::sample_ids(4, 64), vec![0, 1, 2, 3]);
        assert_eq!(
            MetricsSeries::sample_ids(8, 8),
            (0..8).collect::<Vec<u32>>()
        );
        let sparse = MetricsSeries::sample_ids(1024, 64);
        assert_eq!(sparse.len(), 64);
        assert_eq!(sparse[0], 0);
        assert_eq!(sparse[1], 16);
        assert_eq!(sparse[63], 1008);
        // Strictly increasing, all in range.
        assert!(sparse.windows(2).all(|w| w[0] < w[1]));
        assert!(sparse.iter().all(|&id| id < 1024));
    }
}
