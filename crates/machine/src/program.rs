//! The abstract per-node program interface.
//!
//! Applications are expressed as one [`Program`] per node. The machine
//! repeatedly calls [`Program::resume`] to obtain the next [`Step`] —
//! an abstract instruction — and charges its cost to the appropriate time
//! bucket. Incoming active messages invoke [`Program::on_message`] (by
//! interrupt or at poll points, depending on the configured receive mode).
//!
//! The instruction stream carries *real data*: loads deliver the actual
//! shared-memory values, message arguments carry application values as raw
//! `u64` bits, and stores/RMWs update the machine's master copy. This lets
//! every application variant be verified against a sequential reference.

use std::any::Any;

use commsense_cache::{LineId, Word};
use commsense_msgpass::ActiveMessage;

/// An atomic read-modify-write operation on the two 64-bit words of a line.
///
/// Alewife applications piggy-back lock acquisition on the write-ownership
/// request (§4.3.2), so an RMW costs one exclusive acquisition; the op codes
/// here cover the patterns the four applications need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RmwOp {
    /// `w0 += x` — accumulate into a remote value (UNSTRUC/MOLDYN force
    /// updates under a lock).
    AddW0(f64),
    /// `w0 -= x; w1 -= 1` — ICCG producer-computes: accumulate an edge
    /// contribution and decrement the presence counter in one line.
    SubW0DecW1(f64),
    /// `w0 += 1` — fetch-and-increment (barrier counters).
    IncW0,
    /// `w0 = x` — atomic store.
    SetW0(f64),
}

impl RmwOp {
    /// Applies the operation to `(w0, w1)`, returning the new values.
    pub fn apply(self, w0: f64, w1: f64) -> (f64, f64) {
        match self {
            RmwOp::AddW0(x) => (w0 + x, w1),
            RmwOp::SubW0DecW1(x) => (w0 - x, w1 - 1.0),
            RmwOp::IncW0 => (w0 + 1.0, w1),
            RmwOp::SetW0(x) => (x, w1),
        }
    }
}

/// One abstract instruction of a node program.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Execute `cycles` of local computation (private data accesses are
    /// folded in). Zero is clamped to one cycle.
    Compute(u64),
    /// Load a shared word; the value is available as
    /// [`NodeCtx::loaded`] at the next resume.
    Load(Word),
    /// Load a shared word while spin-waiting: identical semantics to
    /// [`Step::Load`] but charged to synchronization time.
    SpinLoad(Word),
    /// Spin-wait backoff cycles, charged to synchronization time.
    SpinWait(u64),
    /// Store a value to a shared word.
    Store(Word, f64),
    /// Atomic read-modify-write on a line; results are available as
    /// [`NodeCtx::rmw`] at the next resume.
    Rmw(LineId, RmwOp),
    /// Issue a non-binding prefetch for a line (read or read-exclusive).
    Prefetch {
        /// Line to fetch.
        line: LineId,
        /// Request ownership (write prefetch)?
        exclusive: bool,
    },
    /// Construct and launch an active message.
    Send(ActiveMessage),
    /// Drain the remote queue, running handlers for all queued messages
    /// (meaningful under polling receive mode; a cheap no-op when empty).
    Poll,
    /// Block until at least one application message has been handled since
    /// this step began; blocked time is synchronization time.
    WaitMsg,
    /// Enter the machine-wide barrier.
    Barrier,
    /// The node's program is complete.
    Done,
}

/// Read-only execution context handed to [`Program::resume`].
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx {
    /// This node's id.
    pub node: usize,
    /// Total nodes in the machine.
    pub nodes: usize,
    /// Value delivered by the last completed [`Step::Load`] /
    /// [`Step::SpinLoad`].
    pub loaded: f64,
    /// `(w0, w1)` after the last completed [`Step::Rmw`].
    pub rmw: (f64, f64),
    /// Current simulated time in processor cycles (diagnostics only —
    /// programs must not branch on it if runs are to stay comparable).
    pub now_cycles: u64,
}

/// Context handed to [`Program::on_message`] handlers.
///
/// Handlers run atomically (Alewife handlers are non-interruptible, which
/// is what lets message-passing UNSTRUC skip locks). They may update program
/// state, send further messages, and charge cycles for their work.
#[derive(Debug)]
pub struct HandlerCtx {
    /// This node's id.
    pub node: usize,
    /// Total nodes in the machine.
    pub nodes: usize,
    pub(crate) sends: Vec<ActiveMessage>,
    pub(crate) extra_cycles: u64,
}

impl HandlerCtx {
    pub(crate) fn new(node: usize, nodes: usize) -> Self {
        HandlerCtx {
            node,
            nodes,
            sends: Vec::new(),
            extra_cycles: 0,
        }
    }

    /// Sends an active message from within the handler (charged to message
    /// overhead at this node).
    pub fn send(&mut self, am: ActiveMessage) {
        self.sends.push(am);
    }

    /// Charges `cycles` of handler work (ghost-node writes, counter
    /// bookkeeping, …) to message overhead.
    pub fn charge(&mut self, cycles: u64) {
        self.extra_cycles += cycles;
    }
}

/// A per-node application program.
///
/// Programs are state machines: `resume` returns the next step given the
/// results of the previous one (in `ctx`), and `on_message` reacts to
/// arriving active messages. See `commsense-apps` for full implementations.
pub trait Program {
    /// Produces the next step. Called again after the previous step's cost
    /// (and any blocking) has elapsed.
    fn resume(&mut self, ctx: &mut NodeCtx) -> Step;

    /// Handles an arriving active message (interrupt or poll delivery).
    /// `bulk` is the modeled content of any DMA-appended payload.
    fn on_message(&mut self, handler: u16, args: &[u64], bulk: &[u64], ctx: &mut HandlerCtx);

    /// Downcasting hook so applications can extract final state after a
    /// run (`machine.into_programs()`).
    fn as_any(&self) -> &dyn Any;
}

/// Reinterprets an `f64` as message-argument bits.
pub fn f64_bits(x: f64) -> u64 {
    x.to_bits()
}

/// Reinterprets message-argument bits as an `f64`.
pub fn bits_f64(b: u64) -> f64 {
    f64::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_ops_apply() {
        assert_eq!(RmwOp::AddW0(2.0).apply(1.0, 9.0), (3.0, 9.0));
        assert_eq!(RmwOp::SubW0DecW1(2.0).apply(10.0, 3.0), (8.0, 2.0));
        assert_eq!(RmwOp::IncW0.apply(4.0, 0.0), (5.0, 0.0));
        assert_eq!(RmwOp::SetW0(7.0).apply(1.0, 1.0), (7.0, 1.0));
    }

    #[test]
    fn f64_bits_roundtrip() {
        for x in [0.0, -1.5, std::f64::consts::PI, 1e300] {
            assert_eq!(bits_f64(f64_bits(x)), x);
        }
    }

    #[test]
    fn handler_ctx_accumulates() {
        use commsense_msgpass::{ActiveMessage, HandlerId};
        let mut ctx = HandlerCtx::new(1, 4);
        ctx.charge(5);
        ctx.charge(7);
        ctx.send(ActiveMessage::new(2, HandlerId(0), vec![]));
        assert_eq!(ctx.extra_cycles, 12);
        assert_eq!(ctx.sends.len(), 1);
    }
}
