//! Machine-level tests: tiny hand-written programs exercising every step
//! kind, both receive modes, both barrier styles, and the sensitivity knobs.

use std::any::Any;

use commsense_cache::{Heap, Word};
use commsense_des::Time;
use commsense_mesh::CrossTrafficConfig;
use commsense_msgpass::{ActiveMessage, HandlerId};

use crate::config::{CheckConfig, LatencyEmulation, MachineConfig, Mechanism};
use crate::program::{bits_f64, f64_bits, HandlerCtx, NodeCtx, Program, RmwOp, Step};

use super::{Machine, MachineSpec};

/// A program that replays a fixed list of steps and records messages.
struct Script {
    steps: Vec<Step>,
    pc: usize,
    received: Vec<(u16, Vec<u64>)>,
    last_loaded: f64,
}

impl Script {
    fn new(steps: Vec<Step>) -> Box<Self> {
        Box::new(Script {
            steps,
            pc: 0,
            received: Vec::new(),
            last_loaded: 0.0,
        })
    }
}

impl Program for Script {
    fn resume(&mut self, ctx: &mut NodeCtx) -> Step {
        self.last_loaded = ctx.loaded;
        let step = self.steps.get(self.pc).cloned().unwrap_or(Step::Done);
        self.pc += 1;
        step
    }

    fn on_message(&mut self, handler: u16, args: &[u64], _bulk: &[u64], _ctx: &mut HandlerCtx) {
        self.received.push((handler, args.to_vec()));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn empty_spec(cfg: &MachineConfig, programs: Vec<Box<dyn Program>>) -> MachineSpec {
    MachineSpec {
        heap: Heap::new(cfg.nodes),
        initial: Vec::new(),
        programs,
    }
}

#[test]
fn compute_only_runtime() {
    let cfg = MachineConfig::tiny();
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|_| Script::new(vec![Step::Compute(100)]) as Box<dyn Program>)
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg.clone(), spec);
    let stats = m.run();
    assert_eq!(stats.runtime_cycles, 100);
    for n in &stats.nodes {
        assert_eq!(cfg.clock().cycles_at(n.compute), 100);
        assert_eq!(n.sync, Time::ZERO);
    }
}

#[test]
fn buckets_sum_to_finish_time() {
    // Mixed workload: every charged interval must be accounted exactly.
    let mut heap = Heap::new(4);
    let arr = heap.alloc(8, |i| i % 4);
    let w = |i: usize| Word::new(arr.line(i), 0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            Script::new(vec![
                Step::Compute(50),
                Step::Load(w(n)),           // local
                Step::Load(w((n + 1) % 4)), // remote
                Step::Store(w(n), n as f64),
                Step::Barrier,
                Step::Compute(10 * n as u64 + 1),
            ]) as Box<dyn Program>
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg.clone(),
        MachineSpec {
            heap,
            initial: vec![0.0; 16],
            programs,
        },
    );
    let _ = m.run();
    for i in 0..m.cfg.nodes {
        let finish = m.nodes.finish[i].expect("finished");
        let total = m.nodes.stats[i].total();
        assert_eq!(
            total.as_ps(),
            finish.as_ps(),
            "node {i}: buckets {:?} must sum to finish {finish}",
            m.nodes.stats[i]
        );
    }
}

#[test]
fn local_miss_penalty_near_alewife() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(4, |_| 0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            let steps = if n == 0 {
                vec![Step::Load(Word::new(arr.line(0), 0))]
            } else {
                vec![]
            };
            Script::new(steps) as Box<dyn Program>
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 8],
            programs,
        },
    );
    let stats = m.run();
    // Figure 3: local clean read miss = 11 cycles.
    assert!(
        (8..=20).contains(&stats.runtime_cycles),
        "local clean miss {} cycles",
        stats.runtime_cycles
    );
}

#[test]
fn remote_miss_penalty_near_alewife() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(4, |_| 1);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            let steps = if n == 0 {
                vec![Step::Load(Word::new(arr.line(0), 0))]
            } else {
                vec![]
            };
            Script::new(steps) as Box<dyn Program>
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 8],
            programs,
        },
    );
    let stats = m.run();
    // Figure 3: remote clean read miss = 42 cycles + 1.6/hop.
    assert!(
        (30..=60).contains(&stats.runtime_cycles),
        "remote clean miss {} cycles",
        stats.runtime_cycles
    );
    assert!(stats.volume.requests > 0);
    assert!(stats.volume.data > 0);
}

#[test]
fn store_then_load_transfers_value() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 2);
    let w = Word::new(arr.line(0), 1);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![Step::Store(w, 42.5), Step::Barrier]),
            1 => Script::new(vec![Step::Barrier, Step::Load(w), Step::Compute(1)]),
            _ => Script::new(vec![Step::Barrier]),
        } as Box<dyn Program>)
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let _ = m.run();
    assert_eq!(m.master_word(w), 42.5);
    let progs = m.into_programs();
    let p1 = progs[1].as_any().downcast_ref::<Script>().unwrap();
    assert_eq!(p1.last_loaded, 42.5, "node 1 observed node 0's store");
}

#[test]
fn active_message_delivery_interrupt_mode() {
    let cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgInterrupt);
    let am = ActiveMessage::new(1, HandlerId(7), vec![f64_bits(2.5), 9]);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![Step::Compute(5), Step::Send(am.clone())]),
            1 => Script::new(vec![Step::WaitMsg]),
            _ => Script::new(vec![]),
        } as Box<dyn Program>)
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg, spec);
    let stats = m.run();
    assert_eq!(stats.messages_sent, 1);
    let progs = m.into_programs();
    let p1 = progs[1].as_any().downcast_ref::<Script>().unwrap();
    assert_eq!(p1.received.len(), 1);
    assert_eq!(p1.received[0].0, 7);
    assert_eq!(bits_f64(p1.received[0].1[0]), 2.5);
    assert_eq!(p1.received[0].1[1], 9);
}

#[test]
fn poll_mode_defers_until_poll() {
    let cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgPoll);
    let am = ActiveMessage::new(1, HandlerId(3), vec![1]);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![Step::Send(am.clone())]),
            // Long compute, then poll: message must be handled at the poll.
            1 => Script::new(vec![Step::Compute(5000), Step::Poll]),
            _ => Script::new(vec![]),
        } as Box<dyn Program>)
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg.clone(), spec);
    let stats = m.run();
    let progs = m.into_programs();
    let p1 = progs[1].as_any().downcast_ref::<Script>().unwrap();
    assert_eq!(p1.received.len(), 1);
    // Node 1 ran at least its 5000 compute cycles before finishing.
    assert!(stats.runtime_cycles >= 5000);
    // Receive overhead was charged at node 1.
    assert!(stats.nodes[1].overhead > Time::ZERO);
}

#[test]
fn handlers_can_reply() {
    /// Replies to any message by sending an ack back to node 0.
    struct Replier {
        acked: bool,
    }
    impl Program for Replier {
        fn resume(&mut self, _ctx: &mut NodeCtx) -> Step {
            Step::Done
        }
        fn on_message(&mut self, handler: u16, _args: &[u64], _bulk: &[u64], ctx: &mut HandlerCtx) {
            if handler == 1 {
                ctx.charge(20);
                ctx.send(ActiveMessage::new(0, HandlerId(2), vec![77]));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    let cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgInterrupt);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![
                Step::Send(ActiveMessage::new(1, HandlerId(1), vec![])),
                Step::WaitMsg,
            ]) as Box<dyn Program>,
            1 => Box::new(Replier { acked: false }) as Box<dyn Program>,
            _ => Script::new(vec![]) as Box<dyn Program>,
        })
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg, spec);
    let _ = m.run();
    let progs = m.into_programs();
    let p0 = progs[0].as_any().downcast_ref::<Script>().unwrap();
    assert_eq!(p0.received, vec![(2, vec![77])]);
    let _ = Replier { acked: true }.acked;
}

#[test]
fn barrier_synchronizes_shared_memory_style() {
    barrier_synchronizes(MachineConfig::tiny().with_mechanism(Mechanism::SharedMem));
}

#[test]
fn barrier_synchronizes_message_tree_style() {
    barrier_synchronizes(MachineConfig::tiny().with_mechanism(Mechanism::MsgPoll));
}

fn barrier_synchronizes(cfg: MachineConfig) {
    // Node n computes n*1000 cycles then barriers; afterwards each stores a
    // flag observed... we verify via sync times: fast nodes wait for slow.
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            Script::new(vec![Step::Compute(1 + 1000 * n as u64), Step::Barrier]) as Box<dyn Program>
        })
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg.clone(), spec);
    let stats = m.run();
    // All nodes finish at/after the slowest node's compute.
    assert!(
        stats.runtime_cycles >= 3001,
        "runtime {}",
        stats.runtime_cycles
    );
    // The fastest node spent most of the run synchronizing.
    let sync0 = cfg.clock().cycles_at(stats.nodes[0].sync);
    assert!(sync0 >= 2500, "node 0 sync {sync0}");
    let sync3 = cfg.clock().cycles_at(stats.nodes[3].sync);
    assert!(sync3 < 2500, "node 3 sync {sync3}");
}

#[test]
fn repeated_barriers_do_not_deadlock() {
    for mech in [Mechanism::SharedMem, Mechanism::MsgInterrupt] {
        let cfg = MachineConfig::tiny().with_mechanism(mech);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                let mut steps = Vec::new();
                for it in 0..10 {
                    steps.push(Step::Compute(1 + (n as u64 * 13 + it) % 50));
                    steps.push(Step::Barrier);
                }
                Script::new(steps) as Box<dyn Program>
            })
            .collect();
        let spec = empty_spec(&cfg, programs);
        let mut m = Machine::new(cfg, spec);
        let _ = m.run();
    }
}

#[test]
fn rmw_is_atomic_under_contention() {
    // All four nodes increment the same counter 25 times: final value 100.
    let mut heap = Heap::new(4);
    let arr = heap.alloc(1, |_| 0);
    let line = arr.line(0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|_| {
            let mut steps = Vec::new();
            for _ in 0..25 {
                steps.push(Step::Rmw(line, crate::program::RmwOp::IncW0));
            }
            Script::new(steps) as Box<dyn Program>
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 2],
            programs,
        },
    );
    let _ = m.run();
    assert_eq!(m.master_word(Word::new(line, 0)), 100.0);
}

#[test]
fn prefetch_hides_remote_latency() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(4, |_| 3);
    let run = |prefetch: bool| {
        let mut heap = Heap::new(4);
        let arr2 = heap.alloc(4, |_| 3);
        assert_eq!(arr2.line(0), arr.line(0));
        let mut steps = Vec::new();
        if prefetch {
            steps.push(Step::Prefetch {
                line: arr2.line(0),
                exclusive: false,
            });
        }
        steps.push(Step::Compute(200));
        steps.push(Step::Load(Word::new(arr2.line(0), 0)));
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                if n == 0 {
                    Script::new(steps.clone()) as Box<dyn Program>
                } else {
                    Script::new(vec![]) as Box<dyn Program>
                }
            })
            .collect();
        let cfg = MachineConfig::tiny();
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 8],
                programs,
            },
        );
        m.run().runtime_cycles
    };
    let with = run(true);
    let without = run(false);
    assert!(with < without, "prefetch {with} must beat demand {without}");
}

#[test]
fn useless_prefetch_only_costs_issue() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 0); // local to node 0
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                Script::new(vec![
                    Step::Load(Word::new(arr.line(0), 0)),
                    Step::Prefetch {
                        line: arr.line(0),
                        exclusive: false,
                    },
                    Step::Compute(10),
                ]) as Box<dyn Program>
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let _ = m.run();
    assert_eq!(m.useless_prefetches, 1);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgInterrupt);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                Script::new(vec![
                    Step::Compute(10 + n as u64),
                    Step::Send(ActiveMessage::new(
                        (n + 1) % 4,
                        HandlerId(1),
                        vec![n as u64],
                    )),
                    Step::WaitMsg,
                    Step::Barrier,
                ]) as Box<dyn Program>
            })
            .collect();
        let spec = empty_spec(&cfg, programs);
        let mut m = Machine::new(cfg, spec);
        let s = m.run();
        (s.runtime_cycles, s.events, s.messages_sent)
    };
    assert_eq!(run(), run());
}

#[test]
fn observation_does_not_change_simulated_cycles() {
    // The observability layer must be pure bookkeeping: every stat the
    // simulation produces (cycle counts, event counts, per-node buckets)
    // has to be bit-identical with recording on and off.
    let run = |observe: bool| {
        let mut cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgPoll);
        if observe {
            cfg.observe = Some(crate::config::ObserveConfig {
                epoch_cycles: 50,
                trace_capacity: 1 << 16,
                max_packets: 1 << 16,
                ..Default::default()
            });
        }
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                Script::new(vec![
                    Step::Compute(10 + n as u64),
                    Step::Send(ActiveMessage::new(
                        (n + 1) % 4,
                        HandlerId(1),
                        vec![n as u64],
                    )),
                    Step::WaitMsg,
                    Step::Barrier,
                    Step::Compute(5),
                ]) as Box<dyn Program>
            })
            .collect();
        let spec = empty_spec(&cfg, programs);
        let mut m = Machine::new(cfg, spec);
        let s = m.run();
        format!(
            "{:?}",
            (s.runtime_cycles, s.events, s.messages_sent, s.nodes)
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn observation_collects_series_trace_and_packets() {
    let mut cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgInterrupt);
    cfg.observe = Some(crate::config::ObserveConfig {
        epoch_cycles: 20,
        trace_capacity: 4096,
        max_packets: 4096,
        ..Default::default()
    });
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            Script::new(vec![
                Step::Compute(10 + n as u64),
                Step::Send(ActiveMessage::new(
                    (n + 1) % 4,
                    HandlerId(1),
                    vec![n as u64],
                )),
                Step::WaitMsg,
                Step::Barrier,
            ]) as Box<dyn Program>
        })
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg, spec);
    let _ = m.run();
    let obs = m.take_observation().expect("observation enabled");
    assert!(m.take_observation().is_none(), "observation is taken once");

    let s = &obs.series;
    assert!(s.samples() > 0, "run spans at least one epoch");
    assert_eq!(s.nodes, 4);
    assert_eq!(s.node_state.len(), s.samples() * s.nodes);
    assert_eq!(s.outstanding.len(), s.samples() * s.nodes);
    assert_eq!(s.link_busy_ps.len(), s.samples() * s.links);
    assert_eq!(s.link_queue.len(), s.samples() * s.links);
    assert_eq!(s.event_queue_depth.len(), s.samples());
    assert_eq!(obs.link_labels.len(), s.links);
    // Cumulative link busy time never decreases, and utilization is sane.
    for l in 0..s.links {
        for i in 1..s.samples() {
            assert!(s.link_busy_ps[i * s.links + l] >= s.link_busy_ps[(i - 1) * s.links + l]);
            let u = s.link_utilization(i, l);
            assert!((0.0..=1.0).contains(&u));
        }
    }

    assert!(!obs.trace.events().is_empty());
    assert!(!obs.net.packets.is_empty());
    for p in &obs.net.packets {
        if let Some(d) = p.delivered_at {
            assert!(d >= p.injected_at);
        }
    }
    // Every barrier message and user message got a Send trace event with a
    // live record id, and the matching handler saw the same id.
    use crate::trace::TraceKind;
    use commsense_mesh::NO_RECORD;
    let mut send_ids = Vec::new();
    let mut handler_ids = Vec::new();
    for e in obs.trace.events() {
        match e.kind {
            TraceKind::Send { msg, .. } => send_ids.push(msg),
            TraceKind::Handler { msg, .. } => handler_ids.push(msg),
            _ => {}
        }
    }
    assert!(send_ids.iter().any(|&m| m != NO_RECORD));
    for &m in &send_ids {
        if m != NO_RECORD {
            assert!(
                handler_ids.contains(&m),
                "send record {m} must reach a handler"
            );
        }
    }
}

/// A small mixed workload (sharing, RMW contention, barriers) that feeds
/// the checking tests: `wb` selects the write-buffer depth.
fn checked_run(mech: Mechanism, wb: usize, check: Option<CheckConfig>, fault: bool) -> String {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(8, |i| i % 4);
    let ctr = heap.alloc(1, |_| 0);
    let w = |i: usize| Word::new(arr.line(i), 0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            let mut steps = vec![
                Step::Load(w(4)), // everyone shares line 4...
                Step::Compute(5),
                Step::Rmw(ctr.line(0), crate::program::RmwOp::IncW0),
                Step::Barrier,
            ];
            if n == 0 {
                steps.push(Step::Store(w(4), 9.0)); // ...then node 0 invalidates them
            }
            steps.extend([
                Step::Store(w(n), n as f64),
                Step::Load(w((n + 1) % 4)),
                Step::Barrier,
                Step::Load(w(4)),
                Step::Compute(1),
            ]);
            Script::new(steps) as Box<dyn Program>
        })
        .collect();
    let mut cfg = MachineConfig::tiny().with_mechanism(mech);
    cfg.write_buffer = wb;
    cfg.check = check;
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 18],
            programs,
        },
    );
    if fault {
        m.fault_ignore_next_invalidation();
    }
    let s = m.run();
    if check.is_some() {
        assert!(
            m.checked_transitions().unwrap() > 0,
            "checker saw no transitions"
        );
    }
    format!(
        "{:?}",
        (s.runtime_cycles, s.events, s.messages_sent, s.nodes)
    )
}

#[test]
fn checked_run_is_clean_across_mechanisms_and_buffers() {
    for mech in [Mechanism::SharedMem, Mechanism::MsgPoll] {
        for wb in [0, 4] {
            checked_run(mech, wb, Some(CheckConfig::full()), false);
        }
    }
}

#[test]
fn checking_does_not_change_simulated_cycles() {
    // The harness invariant: the full checker (invariants + conservation +
    // oracle) is pure bookkeeping, so every simulated stat is bit-identical
    // with checking on and off.
    for wb in [0, 4] {
        assert_eq!(
            checked_run(Mechanism::SharedMem, wb, None, false),
            checked_run(Mechanism::SharedMem, wb, Some(CheckConfig::full()), false),
            "wb={wb}: checking changed simulation results"
        );
    }
}

#[test]
#[should_panic(expected = "PROTOCOL-INVARIANT")]
fn seeded_dropped_invalidation_is_caught() {
    // Mutation test for the checker itself: skip one cache invalidation
    // (the ack still flows, so the protocol does not hang) and the
    // single-writer check must trip when the write completes. The clean
    // variant of this exact run passes in
    // `checked_run_is_clean_across_mechanisms_and_buffers`.
    checked_run(Mechanism::SharedMem, 0, Some(CheckConfig::full()), true);
}

#[test]
fn seeded_fault_without_checker_goes_unnoticed() {
    // The same mutated run with checking off completes silently — the
    // checker, not the machine, is what catches the corruption.
    checked_run(Mechanism::SharedMem, 0, None, true);
}

#[test]
fn oracle_log_records_the_applied_stream() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 2);
    let w = Word::new(arr.line(0), 1);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![Step::Store(w, 42.5), Step::Barrier]),
            1 => Script::new(vec![Step::Barrier, Step::Load(w), Step::Compute(1)]),
            _ => Script::new(vec![Step::Barrier]),
        } as Box<dyn Program>)
        .collect();
    let mut cfg = MachineConfig::tiny();
    cfg.check = Some(CheckConfig::full());
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let _ = m.run();
    let log = m.oracle_log().expect("oracle on");
    use crate::oracle::OracleOp;
    let flat = w.flat_index() as u64;
    let store = log
        .events()
        .iter()
        .position(|e| {
            e.node == 0
                && e.op
                    == OracleOp::Write {
                        word: flat,
                        value: 42.5,
                    }
        })
        .expect("store logged");
    let load = log
        .events()
        .iter()
        .position(|e| {
            e.node == 1
                && e.op
                    == OracleOp::Read {
                        word: flat,
                        value: 42.5,
                    }
        })
        .expect("load logged with the stored value");
    assert!(store < load, "store applies before the dependent load");
    // The load is on the far side of the barrier from the store.
    assert!(log.events()[load].epoch > log.events()[store].epoch);
}

#[test]
fn cross_traffic_slows_shared_memory() {
    // Each node reads lines owned by its partner across the bisection, so
    // every miss crosses the contended cut (and no line is shared widely,
    // keeping LimitLESS software handling out of the picture).
    let partner = |n: usize| {
        let (x, y) = (n % 8, n / 8);
        y * 8 + (x + 4) % 8
    };
    let run = |consumed: f64| {
        let mut heap = Heap::new(32);
        // 8 private lines per node, line i homed on node i % 32.
        let arr = heap.alloc(256, |i| i % 32);
        let programs: Vec<Box<dyn Program>> = (0..32)
            .map(|n| {
                let p = partner(n);
                let mut steps = Vec::new();
                for i in 0..128 {
                    steps.push(Step::Load(Word::new(arr.line(p + 32 * (i % 8)), 0)));
                    steps.push(Step::Compute(2));
                }
                Script::new(steps) as Box<dyn Program>
            })
            .collect();
        let mut cfg = MachineConfig::alewife();
        if consumed > 0.0 {
            cfg.cross_traffic = Some(CrossTrafficConfig::consuming(
                consumed,
                cfg.clock(),
                64,
                cfg.net.topo.build().io_streams(),
            ));
        }
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 512],
                programs,
            },
        );
        m.run().runtime_cycles
    };
    let clear = run(0.0);
    let congested = run(16.0); // consume most of the 18 B/cycle bisection
    assert!(
        congested as f64 > 1.2 * clear as f64,
        "cross traffic must slow the run: {congested} vs {clear}"
    );
}

#[test]
fn slower_clock_reduces_relative_network_cost() {
    // A remote-miss-bound program costs fewer *cycles* on a slower clock
    // because the wall-clock network latency converts to fewer cycles.
    let run = |mhz: f64| {
        let mut heap = Heap::new(4);
        let arr = heap.alloc(16, |_| 3);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                if n == 0 {
                    let steps = (0..16)
                        .map(|i| Step::Load(Word::new(arr.line(i), 0)))
                        .collect();
                    Script::new(steps) as Box<dyn Program>
                } else {
                    Script::new(vec![]) as Box<dyn Program>
                }
            })
            .collect();
        let cfg = MachineConfig::tiny().with_cpu_mhz(mhz);
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 32],
                programs,
            },
        );
        m.run().runtime_cycles
    };
    let fast_clock = run(20.0);
    let slow_clock = run(14.0);
    assert!(
        slow_clock < fast_clock,
        "slower clock: {slow_clock} cycles vs {fast_clock}"
    );
}

#[test]
fn latency_emulation_scales_remote_misses() {
    let run = |emu: Option<LatencyEmulation>| {
        let mut heap = Heap::new(4);
        let arr = heap.alloc(16, |_| 3);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                if n == 0 {
                    let steps = (0..16)
                        .map(|i| Step::Load(Word::new(arr.line(i), 0)))
                        .collect();
                    Script::new(steps) as Box<dyn Program>
                } else {
                    Script::new(vec![]) as Box<dyn Program>
                }
            })
            .collect();
        let mut cfg = MachineConfig::tiny();
        cfg.latency_emulation = emu;
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 32],
                programs,
            },
        );
        m.run().runtime_cycles
    };
    let base = run(Some(LatencyEmulation::uniform(50)));
    let slow = run(Some(LatencyEmulation::uniform(500)));
    // 16 remote misses at +450 cycles each.
    assert!(
        slow > base + 16 * 400,
        "emulated latency must dominate: {base} -> {slow}"
    );
}

#[test]
fn ni_backpressure_stalls_sender() {
    // Flood the network interface with large back-to-back bulk messages:
    // the sender must accumulate Memory+NI wait time.
    let cfg = MachineConfig::tiny().with_mechanism(Mechanism::Bulk);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                let steps = (0..20)
                    .map(|_| Step::Send(ActiveMessage::with_bulk(1, HandlerId(1), vec![], 4096)))
                    .collect();
                Script::new(steps) as Box<dyn Program>
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg, spec);
    let stats = m.run();
    assert!(
        stats.nodes[0].mem > Time::ZERO,
        "NI backpressure must appear as mem+NI wait"
    );
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_is_detected() {
    let cfg = MachineConfig::tiny();
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                Script::new(vec![Step::WaitMsg]) as Box<dyn Program> // never satisfied
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg, spec);
    let _ = m.run();
}

#[test]
fn volume_accounting_separates_classes() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 1);
    let w = Word::new(arr.line(0), 0);
    // Node 0 writes (gets exclusive), nodes 2,3 read (share), then node 0
    // writes again (invalidations!).
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![
                Step::Store(w, 1.0),
                Step::Barrier,
                Step::Barrier,
                Step::Store(w, 2.0),
            ]),
            2 | 3 => Script::new(vec![Step::Barrier, Step::Load(w), Step::Barrier]),
            _ => Script::new(vec![Step::Barrier, Step::Barrier]),
        } as Box<dyn Program>)
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let stats = m.run();
    assert!(
        stats.volume.invalidates > 0,
        "second write must invalidate sharers"
    );
    assert!(stats.volume.requests > 0);
    assert!(stats.volume.data > 0);
    assert!(stats.volume.headers > 0);
    assert_eq!(m.master_word(w), 2.0);
}

#[test]
fn write_buffer_overlaps_store_latency() {
    // Relaxed stores to remote lines overlap; sequential consistency
    // stalls on each one.
    let run = |wb: usize| {
        let mut heap = Heap::new(4);
        let arr = heap.alloc(16, |_| 3);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                if n == 0 {
                    let steps = (0..16)
                        .map(|i| Step::Store(Word::new(arr.line(i), 0), i as f64))
                        .collect();
                    Script::new(steps) as Box<dyn Program>
                } else {
                    Script::new(vec![]) as Box<dyn Program>
                }
            })
            .collect();
        let mut cfg = MachineConfig::tiny();
        cfg.write_buffer = wb;
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 32],
                programs,
            },
        );
        let stats = m.run();
        // All values must land in master memory before retirement.
        for i in 0..16 {
            assert_eq!(
                m.master_word(Word::new(arr.line(i), 0)),
                i as f64,
                "wb={wb}"
            );
        }
        stats.runtime_cycles
    };
    let sc = run(0);
    let rc = run(4);
    assert!(
        (rc as f64) < 0.5 * sc as f64,
        "write buffer must overlap stores: rc {rc} vs sc {sc}"
    );
}

#[test]
fn write_buffer_fence_at_barrier() {
    // A store posted just before a barrier must be visible to readers
    // after the barrier (barriers are release fences).
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 2);
    let w = Word::new(arr.line(0), 0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![Step::Store(w, 7.5), Step::Barrier]),
            1 => Script::new(vec![Step::Barrier, Step::Load(w), Step::Compute(1)]),
            _ => Script::new(vec![Step::Barrier]),
        } as Box<dyn Program>)
        .collect();
    let mut cfg = MachineConfig::tiny();
    cfg.write_buffer = 4;
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let _ = m.run();
    let progs = m.into_programs();
    let p1 = progs[1].as_any().downcast_ref::<Script>().unwrap();
    assert_eq!(
        p1.last_loaded, 7.5,
        "fence must order the posted store before the barrier"
    );
}

#[test]
fn write_buffer_read_after_posted_write_merges() {
    // A load of a line with a posted store in flight must return the new
    // value (it merges into the outstanding transaction).
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 3);
    let w = Word::new(arr.line(0), 0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                Script::new(vec![Step::Store(w, 3.25), Step::Load(w), Step::Compute(1)])
                    as Box<dyn Program>
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let mut cfg = MachineConfig::tiny();
    cfg.write_buffer = 4;
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let _ = m.run();
    let progs = m.into_programs();
    let p0 = progs[0].as_any().downcast_ref::<Script>().unwrap();
    assert_eq!(p0.last_loaded, 3.25);
}

#[test]
fn write_buffer_full_stalls() {
    // With a 1-deep buffer, back-to-back remote stores stall, but all
    // values still land.
    let mut heap = Heap::new(4);
    let arr = heap.alloc(8, |_| 1);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                let steps = (0..8)
                    .map(|i| Step::Store(Word::new(arr.line(i), 0), 1.0 + i as f64))
                    .collect();
                Script::new(steps) as Box<dyn Program>
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let mut cfg = MachineConfig::tiny();
    cfg.write_buffer = 1;
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 16],
            programs,
        },
    );
    let stats = m.run();
    for i in 0..8 {
        assert_eq!(m.master_word(Word::new(arr.line(i), 0)), 1.0 + i as f64);
    }
    assert!(stats.nodes[0].mem > Time::ZERO, "full buffer must stall");
}

#[test]
fn spin_loads_charge_sync_not_memory() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 1);
    let w = Word::new(arr.line(0), 0);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                Script::new(vec![
                    Step::SpinLoad(w),
                    Step::SpinWait(50),
                    Step::SpinLoad(w),
                ]) as Box<dyn Program>
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    let stats = m.run();
    assert!(
        stats.nodes[0].sync > Time::ZERO,
        "spin activity is synchronization time"
    );
    assert_eq!(
        stats.nodes[0].mem,
        Time::ZERO,
        "spin misses charge sync, not mem"
    );
}

#[test]
fn congestion_grows_superlinearly() {
    // Halving bandwidth twice (via cross-traffic) must cost more the
    // second time: queueing is nonlinear (the Congestion Dominated region
    // of Figure 1).
    let partner = |n: usize| {
        let (x, y) = (n % 8, n / 8);
        y * 8 + (x + 4) % 8
    };
    let run = |consumed: f64| {
        let mut heap = Heap::new(32);
        let arr = heap.alloc(256, |i| i % 32);
        let programs: Vec<Box<dyn Program>> = (0..32)
            .map(|n| {
                let p = partner(n);
                let mut steps = Vec::new();
                for i in 0..96 {
                    steps.push(Step::Load(Word::new(arr.line(p + 32 * (i % 8)), 0)));
                    steps.push(Step::Compute(2));
                }
                Script::new(steps) as Box<dyn Program>
            })
            .collect();
        let mut cfg = MachineConfig::alewife();
        if consumed > 0.0 {
            cfg.cross_traffic = Some(CrossTrafficConfig::consuming(
                consumed,
                cfg.clock(),
                64,
                cfg.net.topo.build().io_streams(),
            ));
        }
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 512],
                programs,
            },
        );
        m.run().runtime_cycles as f64
    };
    let t0 = run(0.0);
    let t1 = run(9.0); // 18 -> 9 B/cycle
    let t2 = run(13.5); // 9 -> 4.5 B/cycle
    let first_step = t1 - t0;
    let second_step = t2 - t1;
    assert!(
        second_step > first_step,
        "second halving must cost more: +{first_step:.0} then +{second_step:.0}"
    );
}

#[test]
fn trace_records_scheduling_events() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(2, |_| 1);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| match n {
            0 => Script::new(vec![
                Step::Load(Word::new(arr.line(0), 0)),
                Step::Send(ActiveMessage::new(1, HandlerId(3), vec![7])),
                Step::Barrier,
            ]),
            1 => Script::new(vec![Step::WaitMsg, Step::Barrier]),
            _ => Script::new(vec![Step::Barrier]),
        } as Box<dyn Program>)
        .collect();
    let cfg = MachineConfig::tiny().with_mechanism(Mechanism::MsgInterrupt);
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 4],
            programs,
        },
    );
    m.enable_trace(10_000);
    let _ = m.run();
    let trace = m.trace().expect("enabled");
    assert!(!trace.truncated());
    let kinds: Vec<&str> = trace.of_node(0).map(|e| e.kind.label()).collect();
    assert!(
        kinds.contains(&"block-mem"),
        "node 0 missed remotely: {kinds:?}"
    );
    assert!(kinds.contains(&"send"));
    assert!(kinds.contains(&"barrier"));
    assert!(kinds.contains(&"done"));
    let n1: Vec<&str> = trace.of_node(1).map(|e| e.kind.label()).collect();
    assert!(n1.contains(&"handler"), "node 1 ran the handler: {n1:?}");
    // Rendering works and mentions the send.
    let text = trace.render_node(0, MachineConfig::tiny().clock());
    assert!(text.contains("send dst=1"));
}

#[test]
fn miss_latency_histogram_captures_remote_misses() {
    let mut heap = Heap::new(4);
    let arr = heap.alloc(8, |_| 3);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|n| {
            if n == 0 {
                let steps = (0..8)
                    .map(|i| Step::Load(Word::new(arr.line(i), 0)))
                    .collect();
                Script::new(steps) as Box<dyn Program>
            } else {
                Script::new(vec![]) as Box<dyn Program>
            }
        })
        .collect();
    let cfg = MachineConfig::tiny();
    let mut m = Machine::new(
        cfg,
        MachineSpec {
            heap,
            initial: vec![0.0; 16],
            programs,
        },
    );
    let stats = m.run();
    assert_eq!(stats.miss_latency.count, 8, "eight remote demand misses");
    let mean = stats.miss_latency.mean().expect("misses recorded");
    assert!(
        (25.0..90.0).contains(&mean),
        "mean remote miss {mean:.0} cycles"
    );
    assert!(stats.miss_latency.quantile_upper_bound(0.9).unwrap() <= 128);
}

#[test]
fn latency_emulation_delays_prefetch_fills() {
    // In emulation mode a prefetch completes no sooner than the emulated
    // latency after issue, so shallow lookahead cannot hide deep latency.
    let run = |emu_cycles: u64| {
        let mut heap = Heap::new(4);
        let arr = heap.alloc(4, |_| 3);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|n| {
                if n == 0 {
                    Script::new(vec![
                        Step::Prefetch {
                            line: arr.line(0),
                            exclusive: false,
                        },
                        Step::Compute(20), // shallow lookahead
                        Step::Load(Word::new(arr.line(0), 0)),
                    ]) as Box<dyn Program>
                } else {
                    Script::new(vec![]) as Box<dyn Program>
                }
            })
            .collect();
        let mut cfg = MachineConfig::tiny();
        cfg.latency_emulation = Some(LatencyEmulation::uniform(emu_cycles));
        let mut m = Machine::new(
            cfg,
            MachineSpec {
                heap,
                initial: vec![0.0; 8],
                programs,
            },
        );
        m.run().runtime_cycles
    };
    let short = run(30);
    let long = run(400);
    assert!(
        long > short + 300,
        "a 400-cycle emulated miss must defeat a 20-cycle lookahead: {short} -> {long}"
    );
}

#[test]
fn ejection_backpressure_under_message_burst() {
    // 31 nodes flood node 0 under interrupts: drain occupancy must
    // serialize deliveries, so total time far exceeds one message's cost.
    let cfg = {
        let mut c = MachineConfig::alewife().with_mechanism(Mechanism::MsgInterrupt);
        c.nodes = 32;
        c
    };
    struct Sink {
        need: usize,
        got: usize,
    }
    impl Program for Sink {
        fn resume(&mut self, _ctx: &mut NodeCtx) -> Step {
            if self.got >= self.need {
                Step::Done
            } else {
                Step::WaitMsg
            }
        }
        fn on_message(&mut self, _h: u16, _a: &[u64], _b: &[u64], _c: &mut HandlerCtx) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    let programs: Vec<Box<dyn Program>> = (0..32)
        .map(|n| {
            if n == 0 {
                Box::new(Sink { need: 124, got: 0 }) as Box<dyn Program>
            } else {
                let steps = (0..4)
                    .map(|i| Step::Send(ActiveMessage::new(0, HandlerId(1), vec![i])))
                    .collect();
                Script::new(steps) as Box<dyn Program>
            }
        })
        .collect();
    let spec = empty_spec(&cfg, programs);
    let mut m = Machine::new(cfg, spec);
    let stats = m.run();
    // 124 messages x ~(interrupt+dispatch) serialized at node 0's receive
    // side: thousands of cycles, not the ~100 of a single message.
    assert!(
        stats.runtime_cycles > 2_000,
        "receive-side occupancy must serialize the burst: {}",
        stats.runtime_cycles
    );
    let progs = m.into_programs();
    let p0 = progs[0].as_any().downcast_ref::<Sink>().unwrap();
    assert_eq!(p0.got, 124, "no message lost in the burst");
}

/// A mixed workload for the batching identity pin: every node computes,
/// stores to its own slot, barriers, reads a neighbour's slot, and
/// contends on an Rmw counter; message mechanisms additionally exchange
/// an active-message ring. Heavy same-instant traffic, so the batched
/// loop actually coalesces multi-event instants.
fn batching_identity_spec(cfg: &MachineConfig, mech: Mechanism) -> MachineSpec {
    let n = cfg.nodes;
    let mut heap = Heap::new(n);
    let arr = heap.alloc(n, |i| i % n);
    let counter = heap.alloc(1, |_| 0);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|p| {
            let w = Word::new(arr.line(p), 0);
            let neighbour = Word::new(arr.line((p + 1) % n), 0);
            let mut steps = vec![
                Step::Compute(1 + 37 * p as u64),
                Step::Store(w, p as f64),
                Step::Barrier,
                Step::Load(neighbour),
                Step::Rmw(counter.line(0), RmwOp::IncW0),
            ];
            match mech {
                Mechanism::SharedMem | Mechanism::SharedMemPrefetch => {
                    steps.push(Step::Prefetch {
                        line: arr.line((p + 2) % n),
                        exclusive: false,
                    });
                }
                Mechanism::MsgInterrupt | Mechanism::MsgPoll | Mechanism::Bulk => {
                    steps.push(Step::Send(ActiveMessage::new(
                        (p + 1) % n,
                        HandlerId(1),
                        vec![p as u64],
                    )));
                    if mech == Mechanism::MsgPoll {
                        steps.push(Step::Poll);
                    }
                    steps.push(Step::WaitMsg);
                }
            }
            steps.push(Step::Barrier);
            Script::new(steps) as Box<dyn Program>
        })
        .collect();
    let initial = vec![0.0; heap.total_words()];
    MachineSpec {
        heap,
        initial,
        programs,
    }
}

/// Same-cycle batch draining must be invisible in simulated time: for
/// every mechanism, `Machine::run` (batched) and `Machine::run_unbatched`
/// (one event per pop) produce bit-identical `RunStats` — cycles, event
/// counts, per-node buckets, everything in the Debug rendering.
#[test]
fn batched_and_unbatched_runs_are_identical() {
    for mech in Mechanism::ALL {
        let cfg = MachineConfig::tiny().with_mechanism(mech);
        let mut batched = Machine::new(cfg.clone(), batching_identity_spec(&cfg, mech));
        let stats_batched = batched.run();
        let mut unbatched = Machine::new(cfg.clone(), batching_identity_spec(&cfg, mech));
        let stats_unbatched = unbatched.run_unbatched();
        assert!(
            stats_batched.events > 0 && stats_batched.runtime_cycles > 0,
            "{mech:?}: workload must actually run"
        );
        assert_eq!(
            format!("{stats_batched:?}"),
            format!("{stats_unbatched:?}"),
            "{mech:?}: batched and unbatched stats diverge"
        );
    }
}
