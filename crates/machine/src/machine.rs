//! The machine: event loop, node driver, and mechanism orchestration.

use std::collections::VecDeque;

use commsense_cache::{
    AccessKind, AccessOutcome, Heap, LineId, MsgClass, ProtoMsg, ProtoOut, Protocol, TxnToken, Word,
};
use commsense_des::{Clock, EventQueue, Time};
use commsense_mesh::{
    CrossTraffic, Endpoint, NetEvent, Network, Packet, PacketClass, Priority, NO_RECORD,
};
use commsense_msgpass::{ActiveMessage, BarrierTree, HandlerId, RemoteQueue};

use crate::config::{BarrierStyle, MachineConfig, ProtoVariant, ReceiveMode};
use crate::invariants::{Checker, INVARIANT_MARKER, ORACLE_MARKER};
use crate::metrics::{MetricsSeries, Observation, RunState};
use crate::oracle::{OracleLog, OracleOp};
use crate::program::{HandlerCtx, NodeCtx, Program, RmwOp, Step};
use crate::stats::{Bucket, LatencyHistogram, NodeStats, RunStats};
use crate::trace::{Trace, TraceKind};

/// System handler id: message-passing barrier arrival.
const SYS_BAR_ARRIVE: u16 = HandlerId::SYSTEM_BASE;
/// System handler id: message-passing barrier release.
const SYS_BAR_RELEASE: u16 = HandlerId::SYSTEM_BASE + 1;

/// Maximum cycles a node executes inline before yielding to the event loop.
/// Keeps event counts low without letting interrupt timing drift far.
const BATCH_CYCLES: u64 = 120;

/// Everything an application hands to the machine: the shared heap it
/// allocated, initial master-memory contents, and one program per node.
pub struct MachineSpec {
    /// Shared-memory layout (may be empty for pure message-passing apps).
    pub heap: Heap,
    /// Initial values of all shared words (`heap.total_words()` entries).
    pub initial: Vec<f64>,
    /// One program per node.
    pub programs: Vec<Box<dyn Program>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MemOp {
    Read { word: Word, sync: bool },
    Write { word: Word, val: f64 },
    Rmw { line: LineId, op: RmwOp },
}

impl MemOp {
    fn line(self) -> LineId {
        match self {
            MemOp::Read { word, .. } | MemOp::Write { word, .. } => word.line,
            MemOp::Rmw { line, .. } => line,
        }
    }

    fn kind(self) -> AccessKind {
        match self {
            MemOp::Read { .. } => AccessKind::Read,
            MemOp::Write { .. } => AccessKind::Write,
            MemOp::Rmw { .. } => AccessKind::Rmw,
        }
    }

    fn block_bucket(self) -> Bucket {
        match self {
            MemOp::Read { sync: true, .. } | MemOp::Rmw { .. } => Bucket::Sync,
            _ => Bucket::MemWait,
        }
    }
}

/// Result of posting a relaxed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PostOutcome {
    /// Issued (hit, or posted to the buffer); cost in cycles.
    Inline(u64),
    /// Another transaction is in flight for the same line.
    Conflict,
    /// The write buffer is full; the store must stall.
    BufferFull,
}

/// Stages of the shared-memory combining-tree barrier. Each node owns a
/// counter line and a release-flag line (both homed locally), so arrival
/// combining climbs the tree with one remote RMW per hop and waiters spin
/// on their *local* flag — the standard software tree barrier for
/// Alewife-class machines (no wide sharing, no LimitLESS hot spot).
#[derive(Debug, Clone, Copy)]
enum BarStage {
    /// RMW on our own counter (counts our own arrival).
    Arrive,
    /// RMW on the parent's counter (our subtree is complete).
    Notify,
    /// Read of our own flag; we then spin until released.
    WaitFlag,
    /// Write of a child's flag (release propagating downward).
    ReleaseWrite {
        /// The child being released.
        child: u16,
    },
    /// Re-read of our own flag after the release invalidation.
    ResumeRead,
}

#[derive(Debug, Clone, Copy)]
enum Purpose {
    Demand {
        node: usize,
        op: MemOp,
        /// Oracle issue-order sequence number (0 when the oracle is off).
        seq: u64,
    },
    Prefetch {
        node: usize,
        merged: Option<(MemOp, u64)>,
        issued: Time,
    },
    /// A relaxed (release-consistent) store posted to the write buffer:
    /// the processor continues; the value applies at completion.
    Posted {
        node: usize,
        op: MemOp,
        seq: u64,
        merged: Option<(MemOp, u64)>,
    },
    Bar {
        node: usize,
        stage: BarStage,
        parity: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OutKind {
    Demand,
    Prefetch,
    Posted,
    Sys,
}

#[derive(Debug, Clone, Copy)]
struct OutstandingEntry {
    token: u64,
    kind: OutKind,
}

/// Slab of live transaction purposes, indexed directly by token value.
///
/// Tokens are minted from a free list, so values stay small and every
/// lookup is an array index instead of a hash. Values are unique among
/// *live* tokens only (slots are recycled); the protocol treats tokens as
/// opaque completion handles and never orders or arithmetizes them, so
/// recycling cannot change simulated behavior.
#[derive(Debug)]
struct TokenTable {
    slots: Vec<Option<Purpose>>,
    free: Vec<u32>,
}

impl TokenTable {
    fn new() -> Self {
        TokenTable {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Allocates a token for a transaction with the given purpose.
    fn mint(&mut self, purpose: Purpose) -> u64 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(purpose);
                i as u64
            }
            None => {
                self.slots.push(Some(purpose));
                (self.slots.len() - 1) as u64
            }
        }
    }

    fn get(&self, token: u64) -> Option<Purpose> {
        self.slots.get(token as usize).copied().flatten()
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Purpose> {
        self.slots.get_mut(token as usize).and_then(|s| s.as_mut())
    }

    /// Frees a token, returning its purpose (slot goes back on the free
    /// list for the next mint).
    fn remove(&mut self, token: u64) -> Option<Purpose> {
        let p = self.slots.get_mut(token as usize).and_then(Option::take);
        if p.is_some() {
            self.free.push(token as u32);
        }
        p
    }

    /// Live entries, for the deadlock diagnostic.
    fn live(&self) -> impl Iterator<Item = (u64, &Purpose)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (i as u64, p)))
    }
}

/// Outstanding coherence transactions, keyed by `(node, line)`.
///
/// A node has at most a handful outstanding at once (one blocked demand
/// plus the prefetch/write-buffer depth), so a per-node linear vector beats
/// a hash map: lookups are a short scan of a cache-resident array.
#[derive(Debug)]
struct OutstandingTable {
    per_node: Vec<Vec<(u64, OutstandingEntry)>>,
}

impl OutstandingTable {
    fn new(nodes: usize) -> Self {
        OutstandingTable {
            per_node: vec![Vec::new(); nodes],
        }
    }

    fn get(&self, node: usize, line: u64) -> Option<OutstandingEntry> {
        self.per_node[node]
            .iter()
            .find(|(l, _)| *l == line)
            .map(|&(_, e)| e)
    }

    fn contains(&self, node: usize, line: u64) -> bool {
        self.per_node[node].iter().any(|(l, _)| *l == line)
    }

    fn insert(&mut self, node: usize, line: u64, entry: OutstandingEntry) {
        debug_assert!(
            !self.contains(node, line),
            "duplicate outstanding entry for node {node} line {line}"
        );
        self.per_node[node].push((line, entry));
    }

    fn remove(&mut self, node: usize, line: u64) {
        let v = &mut self.per_node[node];
        if let Some(i) = v.iter().position(|(l, _)| *l == line) {
            v.swap_remove(i);
        }
    }

    /// Live entries, for the deadlock diagnostic.
    fn live(&self) -> impl Iterator<Item = (usize, u64, &OutstandingEntry)> {
        self.per_node
            .iter()
            .enumerate()
            .flat_map(|(n, v)| v.iter().map(move |(l, e)| (n, *l, e)))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    /// A wake event is scheduled (or the node is mid-batch).
    Running,
    /// Waiting for a coherence transaction; `bucket` says where the stall
    /// is charged.
    BlockedMem { since: Time, bucket: Bucket },
    /// Stalled on a full network-output port.
    BlockedSend { since: Time },
    /// Blocked in `Step::WaitMsg`.
    BlockedMsg { since: Time },
    /// Inside the barrier.
    InBarrier { since: Time },
    /// Program complete.
    Done,
}

impl Status {
    /// The logical block start, for blocked states.
    fn since(self) -> Option<Time> {
        match self {
            Status::BlockedMem { since, .. }
            | Status::BlockedSend { since }
            | Status::BlockedMsg { since }
            | Status::InBarrier { since } => Some(since),
            Status::Running | Status::Done => None,
        }
    }
}

/// Per-node machine state, struct-of-arrays: one flat `Vec` per field,
/// indexed by node id. Event handlers touch only the fields they need, so
/// each access walks one dense array instead of striding over a fat
/// per-node struct; whole-machine scans (metrics sampling, stat
/// collection) stream a single column.
#[derive(Debug)]
struct Nodes {
    status: Vec<Status>,
    gen: Vec<u64>,
    pending_delay: Vec<Time>,
    handler_in_block: Vec<Time>,
    rq: Vec<RemoteQueue>,
    stats: Vec<NodeStats>,
    waitmsg_handled: Vec<bool>,
    finish: Vec<Option<Time>>,
    ctrl_free_at: Vec<Time>,
    loaded: Vec<f64>,
    rmw: Vec<(f64, f64)>,
    /// Outstanding posted (relaxed) stores.
    posted: Vec<usize>,
    /// A store stalled on a full write buffer, to retry when a slot frees.
    stalled_store: Vec<Option<MemOp>>,
    /// Pending release fence: what to do once `posted` drains to zero.
    fence: Vec<Option<FenceTarget>>,
    /// When the node's current handler activity finishes; a blocked node
    /// cannot resume earlier (handlers occupy the processor).
    handler_busy_until: Vec<Time>,
    /// Packet-record ids parallel to `rq`, correlating queued messages
    /// with their network lifecycle for the trace. Only populated while
    /// tracing (empty otherwise; drains fall back to [`NO_RECORD`]).
    rq_ids: Vec<VecDeque<u32>>,
}

/// What a node does after its write buffer drains.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FenceTarget {
    /// Enter the barrier (barriers are release fences).
    Barrier,
    /// Retire the program.
    Done,
}

impl Nodes {
    fn new(n: usize) -> Self {
        Nodes {
            status: vec![Status::Running; n],
            gen: vec![0; n],
            pending_delay: vec![Time::ZERO; n],
            handler_in_block: vec![Time::ZERO; n],
            rq: (0..n).map(|_| RemoteQueue::new()).collect(),
            stats: vec![NodeStats::default(); n],
            waitmsg_handled: vec![false; n],
            finish: vec![None; n],
            ctrl_free_at: vec![Time::ZERO; n],
            loaded: vec![0.0; n],
            rmw: vec![(0.0, 0.0); n],
            posted: vec![0; n],
            stalled_store: vec![None; n],
            fence: vec![None; n],
            handler_busy_until: vec![Time::ZERO; n],
            rq_ids: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }
}

/// Per-node, per-parity bookkeeping of the shared-memory tree barrier.
#[derive(Debug, Default, Clone, Copy)]
struct SmBar {
    /// Arrivals observed (self + completed child subtrees).
    count: usize,
    /// Our flag read completed before the release reached us.
    waiting: bool,
    /// The release write for this epoch has reached our flag.
    released: bool,
    /// Release writes to children still outstanding.
    pending_writes: usize,
}

#[derive(Debug)]
struct BarrierCtl {
    tree: BarrierTree,
    /// `lines[parity][node]` = `[counter, flag]` lines homed at `node`.
    lines: [Vec<[LineId; 2]>; 2],
    sm: Vec<[SmBar; 2]>,
    node_epoch: Vec<u64>,
    mp_counts: Vec<[usize; 2]>,
}

/// A protocol message in flight (over the network, or on the local /
/// emulated fast path), parked in the [`Machine::penvs`] arena while a
/// 16-byte [`Ev`] handle circulates through the event queue.
#[derive(Debug, Clone, Copy)]
struct PEnv {
    from: u32,
    /// Network priority the message travelled (or would travel) at; protocol
    /// messages emitted while handling this one inherit it, so criticality
    /// propagates through forwarded invalidations, acks, and grants.
    pri: Priority,
    msg: ProtoMsg,
}

/// Packet-tag bit marking an active-message arena handle (clear = a
/// protocol-message handle into [`Machine::penvs`]).
const TAG_AM: u64 = 1 << 63;

/// Event-kind tag: one flat byte per kind, so the pop site dispatches
/// through a single-level jump table — no nested `NetEvent` match, no
/// enum payload wider than the [`Ev`] scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum EvKind {
    /// Resume a node's execution batch: `a` = node, `b` = wake generation.
    Wake,
    /// Network: a packet attempts its next hop; `a` = packet slot.
    NetTryHop,
    /// Network: a link frees; `a` = link id.
    NetLinkFree,
    /// Network: a packet reached its ejection port; `a` = packet slot.
    NetDeliver,
    /// Protocol message arrival: `a` = handling node, `b` = penv slot.
    Proto,
    /// Deferred shared-mode prefetch fill: `a` = token, `b` = line.
    FillPrefetchRd,
    /// Deferred exclusive-mode prefetch fill: `a` = token, `b` = line.
    FillPrefetchEx,
    /// Cross-traffic injector tick.
    CrossTick,
}

/// A queue entry: 16 bytes, `Copy`, cache-dense. Payloads wider than two
/// scalars (protocol messages, active messages) live in arenas and are
/// carried here by slot handle.
#[derive(Debug, Clone, Copy)]
struct Ev {
    kind: EvKind,
    a: u32,
    b: u64,
}

impl Ev {
    fn wake(node: usize, gen: u64) -> Ev {
        Ev {
            kind: EvKind::Wake,
            a: node as u32,
            b: gen,
        }
    }

    fn net(e: NetEvent) -> Ev {
        let (kind, a) = match e {
            NetEvent::TryHop { pkt } => (EvKind::NetTryHop, pkt),
            NetEvent::LinkFree { link } => (EvKind::NetLinkFree, link),
            NetEvent::Deliver { pkt } => (EvKind::NetDeliver, pkt),
        };
        Ev { kind, a, b: 0 }
    }

    fn proto(at: usize, slot: u32) -> Ev {
        Ev {
            kind: EvKind::Proto,
            a: at as u32,
            b: slot as u64,
        }
    }

    /// Token values are slab indices (see [`TokenTable`]), so they fit
    /// `u32` structurally.
    fn fill_prefetch(token: u64, line: LineId, exclusive: bool) -> Ev {
        Ev {
            kind: if exclusive {
                EvKind::FillPrefetchEx
            } else {
                EvKind::FillPrefetchRd
            },
            a: token as u32,
            b: line.0,
        }
    }

    const CROSS_TICK: Ev = Ev {
        kind: EvKind::CrossTick,
        a: 0,
        b: 0,
    };
}

/// The emulated machine. Construct with [`Machine::new`], drive with
/// [`Machine::run`], then inspect [`RunStats`], the master memory, or the
/// final program states.
///
/// # Examples
///
/// A two-node producer/consumer over shared memory:
///
/// ```
/// use std::any::Any;
/// use commsense_cache::{Heap, Word};
/// use commsense_machine::program::{HandlerCtx, NodeCtx, Program, Step};
/// use commsense_machine::{Machine, MachineConfig, MachineSpec};
///
/// struct OneShot(Vec<Step>, usize);
/// impl Program for OneShot {
///     fn resume(&mut self, _ctx: &mut NodeCtx) -> Step {
///         let s = self.0.get(self.1).cloned().unwrap_or(Step::Done);
///         self.1 += 1;
///         s
///     }
///     fn on_message(&mut self, _h: u16, _a: &[u64], _b: &[u64], _c: &mut HandlerCtx) {}
///     fn as_any(&self) -> &dyn Any { self }
/// }
///
/// let cfg = MachineConfig::tiny(); // 2x2 mesh
/// let mut heap = Heap::new(cfg.nodes);
/// let line = heap.alloc(1, |_| 0);
/// let w = line.word(0, 0);
/// let programs: Vec<Box<dyn Program>> = (0..cfg.nodes)
///     .map(|n| Box::new(OneShot(match n {
///         0 => vec![Step::Store(w, 6.5), Step::Barrier],
///         1 => vec![Step::Barrier, Step::Load(w)],
///         _ => vec![Step::Barrier],
///     }, 0)) as Box<dyn Program>)
///     .collect();
/// let initial = vec![0.0; heap.total_words()];
/// let mut machine = Machine::new(cfg, MachineSpec { heap, initial, programs });
/// let stats = machine.run();
/// assert!(stats.runtime_cycles > 0);
/// assert_eq!(machine.master_word(w), 6.5);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    clock: Clock,
    queue: EventQueue<Ev>,
    now: Time,
    net: Network,
    proto: Protocol,
    master: Vec<f64>,
    programs: Vec<Box<dyn Program>>,
    nodes: Nodes,
    /// Arena of in-flight protocol messages; events and packet tags carry
    /// `u32` slots into it. No occupancy flag: slots are minted exactly
    /// once per message and freed exactly once when handled.
    penvs: Vec<PEnv>,
    free_penvs: Vec<u32>,
    /// Arena of in-flight active messages (packet tags carry the slot
    /// with [`TAG_AM`] set).
    ams: Vec<Option<ActiveMessage>>,
    free_ams: Vec<u32>,
    /// Machine packets injected into the network and not yet delivered
    /// (the message-conservation in-flight count; local fast-path
    /// messages mint penv slots but never touch the network).
    net_live: usize,
    tokens: TokenTable,
    outstanding: OutstandingTable,
    /// Pool of scratch buffers for protocol outputs. A pool (not a single
    /// buffer) because processing one batch of outputs can re-enter the
    /// protocol (a grant completes, its fill emits more outputs).
    outs_pool: Vec<Vec<ProtoOut>>,
    barrier: BarrierCtl,
    cross: Option<CrossTraffic>,
    /// Scratch buffer for cross-traffic tick packet batches (reused so the
    /// stateful generators allocate nothing per tick).
    cross_buf: Vec<Packet>,
    /// Criticality of the transaction currently being advanced: set when a
    /// processor issues an access ([`Machine::try_access`]) and when a
    /// controller picks up a message ([`Machine::ev_proto`]), read by
    /// [`Machine::dispatch_proto`] under the criticality-aware variant.
    /// Dead state (always `Low`) under the baseline variant.
    cur_pri: Priority,
    /// Armed priority-inversion fault: the next high-priority invalidation
    /// acknowledgement delivered over the network bypasses the checker's
    /// consumption accounting (see
    /// [`Machine::fault_smuggle_next_priority_ack`]).
    fault_smuggle_ack: bool,
    finished: usize,
    events: u64,
    messages_sent: u64,
    useless_prefetches: u64,
    miss_latency: LatencyHistogram,
    trace: Option<Trace>,
    /// Epoch-sampled metric series (observation mode only).
    metrics: Option<Box<MetricsSeries>>,
    /// Next epoch boundary to sample; [`Time::MAX`] when observation is
    /// off, so the hot loop pays one never-taken comparison.
    metrics_next: Time,
    /// Sampling period (picoseconds).
    metrics_epoch: Time,
    /// Runtime protocol-invariant checker (check mode only).
    checker: Option<Box<Checker>>,
    /// Applied memory-access log for the SC oracle (check mode with
    /// [`crate::CheckConfig::oracle`] only).
    oracle: Option<Box<OracleLog>>,
    /// Per-kind dispatch self-time accumulator (profiled runs only).
    profile: Option<Box<ProfileAccum>>,
}

/// Per-kind counters of a profiled run, accumulated inside the event
/// loop. `EvKind` is `repr(u8)`, so each array is indexed by kind tag.
#[derive(Debug, Default)]
struct ProfileAccum {
    count: [u64; 8],
    nanos: [u64; 8],
    batches: u64,
}

/// Human label per event kind, indexed like [`ProfileAccum`].
const EV_KIND_LABELS: [&str; 8] = [
    "wake",
    "net-try-hop",
    "net-link-free",
    "net-deliver",
    "proto",
    "fill-prefetch-rd",
    "fill-prefetch-ex",
    "cross-tick",
];

/// Self-time per event kind measured by a profiled run (see
/// [`MachineConfig::profile_dispatch`]): how the event loop's wall time
/// splits across dispatch targets, for the `repro perf --profile` CSV.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchProfile {
    /// One row per event kind that fired.
    pub kinds: Vec<DispatchKindProfile>,
    /// Same-instant batches drained.
    pub batches: u64,
}

/// One event kind's share of a profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchKindProfile {
    /// Stable kind label (e.g. `"proto"`, `"net-try-hop"`).
    pub kind: &'static str,
    /// Events of this kind dispatched.
    pub events: u64,
    /// Total self time spent in this kind's dispatch target, in seconds
    /// (excludes queue pop/push bookkeeping between events).
    pub self_secs: f64,
}

impl Machine {
    /// Builds a machine from a configuration and an application spec.
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent, if `spec.initial` does not
    /// match the heap size, or if the program count differs from the node
    /// count.
    pub fn new(cfg: MachineConfig, spec: MachineSpec) -> Self {
        cfg.validate();
        let MachineSpec {
            mut heap,
            mut initial,
            programs,
        } = spec;
        assert_eq!(
            initial.len(),
            heap.total_words(),
            "initial values must cover the heap"
        );
        assert_eq!(programs.len(), cfg.nodes, "one program per node");
        assert_eq!(
            heap.nodes(),
            cfg.nodes,
            "heap node count must match machine"
        );

        // Machine-internal barrier lines: per node, [counter, flag] x 2
        // parities, homed at the owning node (combining-tree layout).
        let n_nodes = cfg.nodes;
        let bar = heap.alloc(4 * n_nodes, |i| i / 4);
        initial.extend(std::iter::repeat_n(0.0, 8 * n_nodes));
        let lines = [
            (0..n_nodes)
                .map(|i| [bar.line(4 * i), bar.line(4 * i + 1)])
                .collect::<Vec<_>>(),
            (0..n_nodes)
                .map(|i| [bar.line(4 * i + 2), bar.line(4 * i + 3)])
                .collect::<Vec<_>>(),
        ];

        let clock = cfg.clock();
        let n = cfg.nodes;
        let proto = Protocol::new(heap, cfg.proto.clone());
        let net = Network::new(cfg.net.clone());
        let cross = cfg.cross_traffic.clone().map(CrossTraffic::new);
        let mut m = Machine {
            cfg,
            clock,
            queue: EventQueue::new(),
            now: Time::ZERO,
            net,
            proto,
            master: initial,
            programs,
            nodes: Nodes::new(n),
            penvs: Vec::new(),
            free_penvs: Vec::new(),
            ams: Vec::new(),
            free_ams: Vec::new(),
            net_live: 0,
            tokens: TokenTable::new(),
            outstanding: OutstandingTable::new(n),
            outs_pool: Vec::new(),
            barrier: BarrierCtl {
                tree: BarrierTree::new(n),
                lines,
                sm: vec![[SmBar::default(); 2]; n],
                node_epoch: vec![0; n],
                mp_counts: vec![[0, 0]; n],
            },
            cross,
            cross_buf: Vec::new(),
            cur_pri: Priority::Low,
            fault_smuggle_ack: false,
            finished: 0,
            events: 0,
            messages_sent: 0,
            useless_prefetches: 0,
            miss_latency: LatencyHistogram::default(),
            trace: None,
            metrics: None,
            metrics_next: Time::MAX,
            metrics_epoch: Time::ZERO,
            checker: None,
            oracle: None,
            profile: None,
        };
        if m.cfg.profile_dispatch {
            m.profile = Some(Box::default());
        }
        if let Some(o) = m.cfg.observe {
            assert!(o.epoch_cycles > 0, "observe epoch must be positive");
            assert!(o.sparse_threshold > 0, "sparse threshold must be positive");
            m.trace = Some(Trace::new(o.trace_capacity));
            let epoch = clock.cycles(o.epoch_cycles);
            // At or below the threshold every node and link gets a column
            // (the seed behavior); above it, a deterministic evenly spaced
            // sample keeps the series size bounded at 1024 nodes.
            let node_ids = MetricsSeries::sample_ids(n, o.sparse_threshold);
            let link_ids = MetricsSeries::sample_ids(m.net.num_links(), 2 * o.sparse_threshold);
            m.metrics = Some(Box::new(MetricsSeries::new(
                node_ids,
                link_ids,
                n,
                epoch.as_ps(),
            )));
            m.metrics_epoch = epoch;
            m.metrics_next = epoch;
        }
        if let Some(c) = m.cfg.check {
            m.checker = Some(Box::new(Checker::new(c)));
            if c.oracle {
                // The master copy already includes the machine-internal
                // barrier words appended above.
                m.oracle = Some(Box::new(OracleLog::new(n, m.master.clone())));
            }
        }
        // Observation and checking share the network recorder; size it for
        // whichever needs more.
        let record_packets = match (m.cfg.observe, m.cfg.check) {
            (Some(o), Some(c)) => Some(o.max_packets.max(c.max_packets)),
            (Some(o), None) => Some(o.max_packets),
            (None, Some(c)) => Some(c.max_packets),
            (None, None) => None,
        };
        if let Some(cap) = record_packets {
            m.net.enable_recording(cap);
        }
        for node in 0..n {
            m.schedule_wake(node, Time::ZERO);
        }
        if let Some(iv) = m.cross.as_ref().and_then(|c| c.interval()) {
            m.queue.schedule(iv, Ev::CROSS_TICK);
        }
        m
    }

    /// Runs the machine until every program is done.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while programs are still blocked
    /// (an application deadlock), or immediately with an `INJECTED-FAULT`
    /// marker when [`MachineConfig::inject_panic`] is set.
    pub fn run(&mut self) -> RunStats {
        assert!(
            !self.cfg.inject_panic,
            "INJECTED-FAULT: deliberate panic requested by MachineConfig::inject_panic"
        );
        if self.profile.is_some() {
            self.run_loop_profiled();
        } else {
            self.run_loop();
        }
        if self.checker.is_some() {
            self.final_run_checks();
        }
        self.collect_stats()
    }

    /// The hot loop: drains every event of the current instant into a
    /// reusable batch buffer in one O(1) bucket swap, then dispatches the
    /// batch. Events scheduled *at* the current instant during the batch
    /// form the next batch, which is exactly the order a one-at-a-time
    /// pop produces (same-instant FIFO — pinned by the des property suite
    /// and the batching identity test). The per-event `finished` check
    /// stops mid-batch the moment the last program retires, so event
    /// counts match the unbatched loop bit for bit.
    fn run_loop(&mut self) {
        let mut batch: VecDeque<Ev> = VecDeque::new();
        'run: while self.finished < self.cfg.nodes {
            let Some(t) = self.queue.pop_instant_into(&mut batch) else {
                self.deadlock_panic();
            };
            // One comparison against a Time::MAX sentinel when observation
            // is off; sampling happens between events, so it can never
            // change dispatch order or any simulated time. The depth the
            // sampler sees is computed as if exactly one event had been
            // popped, matching the unbatched loop's series.
            if t >= self.metrics_next {
                let depth = self.queue.len() + batch.len() - 1;
                self.metrics_tick(t, depth);
            }
            self.now = t;
            while let Some(ev) = batch.pop_front() {
                self.events += 1;
                self.dispatch(ev);
                if self.finished >= self.cfg.nodes {
                    batch.clear();
                    break 'run;
                }
            }
        }
    }

    /// [`Machine::run_loop`] with per-event self-time accounting (see
    /// [`MachineConfig::profile_dispatch`]). A separate copy so the
    /// unprofiled loop carries no timing calls at all.
    #[cold]
    fn run_loop_profiled(&mut self) {
        let mut batch: VecDeque<Ev> = VecDeque::new();
        'run: while self.finished < self.cfg.nodes {
            let Some(t) = self.queue.pop_instant_into(&mut batch) else {
                self.deadlock_panic();
            };
            if t >= self.metrics_next {
                let depth = self.queue.len() + batch.len() - 1;
                self.metrics_tick(t, depth);
            }
            self.now = t;
            if let Some(p) = self.profile.as_mut() {
                p.batches += 1;
            }
            while let Some(ev) = batch.pop_front() {
                self.events += 1;
                let kind = ev.kind as usize;
                let start = std::time::Instant::now();
                self.dispatch(ev);
                let ns = start.elapsed().as_nanos() as u64;
                let p = self.profile.as_mut().expect("profiled loop");
                p.count[kind] += 1;
                p.nanos[kind] += ns;
                if self.finished >= self.cfg.nodes {
                    batch.clear();
                    break 'run;
                }
            }
        }
    }

    /// Runs the machine popping one event at a time instead of draining
    /// same-instant batches. The reference loop batching is measured
    /// against: simulated cycles and event counts must match
    /// [`Machine::run`] exactly (pinned by the batching identity test).
    #[doc(hidden)]
    pub fn run_unbatched(&mut self) -> RunStats {
        assert!(
            !self.cfg.inject_panic,
            "INJECTED-FAULT: deliberate panic requested by MachineConfig::inject_panic"
        );
        while self.finished < self.cfg.nodes {
            let Some((t, ev)) = self.queue.pop() else {
                self.deadlock_panic();
            };
            if t >= self.metrics_next {
                let depth = self.queue.len();
                self.metrics_tick(t, depth);
            }
            self.now = t;
            self.events += 1;
            self.dispatch(ev);
        }
        if self.checker.is_some() {
            self.final_run_checks();
        }
        self.collect_stats()
    }

    /// The per-kind dispatch self-time breakdown of a profiled run, or
    /// `None` unless [`MachineConfig::profile_dispatch`] was set. Call
    /// after [`Machine::run`].
    pub fn take_dispatch_profile(&mut self) -> Option<DispatchProfile> {
        let p = self.profile.take()?;
        let kinds = (0..EV_KIND_LABELS.len())
            .filter(|&k| p.count[k] > 0)
            .map(|k| DispatchKindProfile {
                kind: EV_KIND_LABELS[k],
                events: p.count[k],
                self_secs: p.nanos[k] as f64 / 1e9,
            })
            .collect();
        Some(DispatchProfile {
            kinds,
            batches: p.batches,
        })
    }

    /// End-of-run verification (check mode only): whole-heap protocol
    /// invariants, message conservation against the recorder, and the SC
    /// oracle replay.
    #[cold]
    #[inline(never)]
    fn final_run_checks(&mut self) {
        if let Err(e) = self
            .proto
            .verify_invariants((0..self.proto.num_lines()).map(LineId))
        {
            panic!("{INVARIANT_MARKER} violated at end of run: {e}");
        }
        if let Some(ch) = self.checker.as_ref() {
            ch.final_check(self.net_live, self.net.peek_recording());
        }
        if let Some(o) = self.oracle.as_ref() {
            if let Err(e) = crate::oracle::verify(o, self.cfg.write_buffer > 0) {
                panic!("{ORACLE_MARKER} violated: {e}");
            }
        }
    }

    /// Formats and raises the application-deadlock diagnostic. Kept out of
    /// line so the hot loop carries no formatting machinery: `run` stays a
    /// pop/dispatch kernel and this never-taken path costs one cold call.
    #[cold]
    #[inline(never)]
    fn deadlock_panic(&self) -> ! {
        let stuck: Vec<String> = (0..self.cfg.nodes)
            .filter(|&i| self.nodes.status[i] != Status::Done)
            .map(|i| format!("{i}:{:?}", self.nodes.status[i]))
            .collect();
        let outstanding: Vec<String> = self
            .outstanding
            .live()
            .map(|(node, line, e)| format!("({node},{line}): {e:?}"))
            .collect();
        let tokens: Vec<String> = self
            .tokens
            .live()
            .map(|(t, p)| format!("{t}: {p:?}"))
            .collect();
        panic!(
            "deadlock: nodes blocked with no pending events: {stuck:?}; \
             outstanding={outstanding:?} tokens={tokens:?} barrier={:?}",
            self.barrier.sm
        );
    }

    /// Samples every epoch boundary in `(previous boundary, t]`. Kept cold
    /// and out of line: with observation off the call never happens, and
    /// with it on the cost is bounded by one snapshot per epoch regardless
    /// of event rate. Sampling only reads machine state — it must never
    /// schedule events or mutate anything the simulation consults.
    #[cold]
    #[inline(never)]
    fn metrics_tick(&mut self, t: Time, queue_depth: usize) {
        let Some(mut m) = self.metrics.take() else {
            return;
        };
        while self.metrics_next <= t {
            let at = self.metrics_next;
            m.at_ps.push(at.as_ps());
            let mut in_barrier = 0u32;
            // Exact state counts over every node; per-node columns only for
            // the sampled ids (identity when dense).
            let mut counts = [0u32; RunState::ALL.len()];
            let mut states = vec![0u8; 0];
            states.reserve(self.cfg.nodes);
            for i in 0..self.cfg.nodes {
                let status = self.nodes.status[i];
                if matches!(status, Status::InBarrier { .. }) {
                    in_barrier += 1;
                }
                let state = match status {
                    Status::Done => RunState::Done,
                    // A handler (or send/receive overhead) occupies the
                    // processor past this instant.
                    _ if self.nodes.handler_busy_until[i] > at => RunState::MsgOverhead,
                    Status::BlockedMem { bucket, .. } => {
                        if bucket == Bucket::Sync {
                            RunState::Sync
                        } else {
                            RunState::MemWait
                        }
                    }
                    Status::BlockedSend { .. } => RunState::MemWait,
                    Status::BlockedMsg { .. } | Status::InBarrier { .. } => RunState::Sync,
                    Status::Running => RunState::Compute,
                };
                counts[state as usize] += 1;
                states.push(state as u8);
            }
            for &i in &m.node_ids {
                let i = i as usize;
                m.node_state.push(states[i]);
                let out = self.outstanding.per_node[i].len();
                m.outstanding.push(out.min(u16::MAX as usize) as u16);
            }
            m.state_counts.extend(counts);
            for &l in &m.link_ids {
                let l = l as usize;
                m.link_busy_ps.push(self.net.link_busy(l).as_ps());
                let q = self.net.link_queue_len(l);
                m.link_queue.push(q.min(u16::MAX as usize) as u16);
            }
            m.event_queue_depth
                .push(queue_depth.min(u32::MAX as usize) as u32);
            m.barrier_occupancy.push(in_barrier);
            self.metrics_next += self.metrics_epoch;
        }
        self.metrics = Some(m);
    }

    /// Detaches everything the observability layer collected (metric
    /// series, trace, network recording), or `None` if the machine was not
    /// configured with [`crate::ObserveConfig`]. Call after [`Machine::run`]
    /// and before [`Machine::into_programs`].
    pub fn take_observation(&mut self) -> Option<Observation> {
        let series = *self.metrics.take()?;
        self.metrics_next = Time::MAX;
        let trace = self.trace.take().unwrap_or_else(|| Trace::new(0));
        let net = self.net.take_recording().unwrap_or_default();
        let topo = self.net.topo();
        let link_labels = series
            .link_ids
            .iter()
            .map(|&l| topo.link_label(l as usize))
            .collect();
        Some(Observation {
            series,
            trace,
            net,
            clock: self.clock,
            nodes: self.cfg.nodes,
            link_labels,
        })
    }

    /// The master copy of shared memory (valid after [`Machine::run`]).
    pub fn master(&self) -> &[f64] {
        &self.master
    }

    /// Reads one shared word from the master copy.
    pub fn master_word(&self, w: Word) -> f64 {
        self.master[w.flat_index()]
    }

    /// Consumes the machine, returning the final program states for
    /// downcasting.
    pub fn into_programs(self) -> Vec<Box<dyn Program>> {
        self.programs
    }

    /// The protocol engine (for invariant checks in tests).
    pub fn protocol(&self) -> &Protocol {
        &self.proto
    }

    /// Enables execution tracing with the given event capacity (call
    /// before [`Machine::run`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn trace_event(&mut self, at: Time, node: usize, kind: TraceKind) {
        let now = self.now;
        if let Some(t) = self.trace.as_mut() {
            t.record(at, now, node, kind);
        }
    }

    fn collect_stats(&self) -> RunStats {
        let runtime = self
            .nodes
            .finish
            .iter()
            .filter_map(|&f| f)
            .fold(Time::ZERO, Time::max);
        RunStats {
            runtime,
            runtime_cycles: self.clock.cycles_at(runtime),
            nodes: self.nodes.stats.clone(),
            volume: self.net.stats().injected,
            bisection: self.net.stats().bisection,
            proto: self.proto.stats(),
            messages_sent: self.messages_sent,
            events: self.events,
            mean_packet_latency: self.net.stats().mean_latency(),
            useless_prefetches: self.useless_prefetches,
            useful_prefetches: (0..self.cfg.nodes)
                .map(|n| self.proto.prefetch_stats(n).0)
                .sum(),
            cache_hit_miss: (0..self.cfg.nodes).fold((0, 0), |(h, m), n| {
                let (nh, nm) = self.proto.cache_hit_miss(n);
                (h + nh, m + nm)
            }),
            miss_latency: self.miss_latency,
            priority_bypasses: self.net.stats().priority_bypasses,
            low_bypassed: self.net.stats().low_bypassed,
        }
    }

    // ---- time helpers -------------------------------------------------

    fn cycles(&self, c: u64) -> Time {
        self.clock.cycles(c)
    }

    fn charge(&mut self, node: usize, bucket: Bucket, d: Time) {
        self.nodes.stats[node].charge(bucket, d);
    }

    fn schedule_wake(&mut self, node: usize, at: Time) {
        self.nodes.gen[node] += 1;
        let gen = self.nodes.gen[node];
        self.nodes.status[node] = Status::Running;
        self.queue.schedule(at, Ev::wake(node, gen));
    }

    // ---- event dispatch -----------------------------------------------

    /// One flat 8-way branch on the kind byte — rustc lowers this to a
    /// jump table; payloads are two scalars, so no wide enum is moved and
    /// no nested `NetEvent` match runs at the pop site.
    fn dispatch(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Wake => self.ev_wake(ev.a as usize, ev.b),
            EvKind::NetTryHop => self.ev_net(NetEvent::TryHop { pkt: ev.a }),
            EvKind::NetLinkFree => self.ev_net(NetEvent::LinkFree { link: ev.a }),
            EvKind::NetDeliver => self.ev_net(NetEvent::Deliver { pkt: ev.a }),
            EvKind::Proto => self.ev_proto(ev.a as usize, ev.b as u32),
            EvKind::FillPrefetchRd => {
                self.finish_prefetch(ev.a as u64, LineId(ev.b), false, self.now)
            }
            EvKind::FillPrefetchEx => {
                self.finish_prefetch(ev.a as u64, LineId(ev.b), true, self.now)
            }
            EvKind::CrossTick => self.ev_cross_tick(),
        }
    }

    fn ev_wake(&mut self, node: usize, gen: u64) {
        if self.nodes.gen[node] != gen || self.nodes.status[node] != Status::Running {
            return;
        }
        if self.nodes.pending_delay[node] > Time::ZERO {
            let d = std::mem::take(&mut self.nodes.pending_delay[node]);
            let at = self.now + d;
            self.schedule_wake(node, at);
            return;
        }
        self.run_node(node);
    }

    fn ev_net(&mut self, nev: NetEvent) {
        // Follow-up hops go straight into the event queue: the closure
        // captures only `self.queue`, disjoint from the `self.net`
        // receiver, so no intermediate buffer is needed.
        let now = self.now;
        let queue = &mut self.queue;
        let delivery = self
            .net
            .handle(now, nev, &mut |t, e| queue.schedule(t, Ev::net(e)));
        if let Some(d) = delivery {
            self.deliver(d.packet, d.record);
        }
    }

    fn ev_proto(&mut self, at: usize, slot: u32) {
        if self.now < self.nodes.ctrl_free_at[at] {
            // Controller busy: requeue the handle, message stays parked.
            let t = self.nodes.ctrl_free_at[at];
            self.queue.schedule(t, Ev::proto(at, slot));
            return;
        }
        let PEnv { from, pri, msg } = self.penvs[slot as usize];
        self.free_penvs.push(slot);
        let from = from as usize;
        // Messages sent while this one is handled inherit its criticality.
        self.cur_pri = pri;
        let occ = self.proto_msg_occupancy(at, from, &msg);
        let line = msg.line();
        let mut outs = self.take_outs();
        self.proto.handle_into(at, from, msg, &mut outs);
        self.process_controller_outs(at, occ, &mut outs);
        self.put_outs(outs);
        self.check_line(line);
    }

    fn ev_cross_tick(&mut self) {
        // Move the injector out for the duration of the tick so its
        // packet stream can be drained while `self` is mutably borrowed
        // (no per-tick clone).
        let Some(mut cross) = self.cross.take() else {
            return;
        };
        let mut buf = std::mem::take(&mut self.cross_buf);
        cross.tick_packets_into(&mut buf);
        for pkt in buf.drain(..) {
            self.inject(pkt, self.now);
        }
        self.cross_buf = buf;
        if self.finished < self.cfg.nodes {
            if let Some(iv) = cross.interval() {
                self.queue.schedule(self.now + iv, Ev::CROSS_TICK);
            }
        }
        self.cross = Some(cross);
    }

    /// Controller occupancy to process `msg` at `at` (sent by `from`):
    /// Alewife services local misses through a fast hardware path, while
    /// network requests pay the full directory walk and DRAM access.
    fn proto_msg_occupancy(&self, at: usize, from: usize, msg: &ProtoMsg) -> u64 {
        let c = &self.cfg.costs;
        let local = at == from;
        match msg {
            ProtoMsg::ReadReq { .. } | ProtoMsg::WriteReq { .. } => {
                if local {
                    c.dir_request_occ_local
                } else {
                    c.dir_request_occ
                }
            }
            ProtoMsg::Grant { .. } => {
                if local {
                    c.grant_occ_local
                } else {
                    c.grant_occ
                }
            }
            ProtoMsg::Writeback { .. } => 1,
            _ => c.snoop_occ,
        }
    }

    /// Handles protocol outputs produced at `at`'s controller: applies
    /// occupancy, dispatches sends, and completes grants. Occupancy
    /// entries for `at` itself are folded into this message's processing
    /// time (and must not be re-applied downstream).
    /// Grabs a scratch output buffer from the pool (empty, capacity
    /// retained from earlier use).
    fn take_outs(&mut self) -> Vec<ProtoOut> {
        self.outs_pool.pop().unwrap_or_default()
    }

    /// Returns a scratch output buffer to the pool.
    fn put_outs(&mut self, mut outs: Vec<ProtoOut>) {
        outs.clear();
        self.outs_pool.push(outs);
    }

    fn process_controller_outs(&mut self, at: usize, base_occ: u64, outs: &mut Vec<ProtoOut>) {
        let mut extra = 0u64;
        outs.retain(|o| match o {
            ProtoOut::HomeOccupancy { node, cycles } if *node == at => {
                extra += *cycles as u64;
                false
            }
            _ => true,
        });
        let done = self.now + self.cycles(base_occ + extra);
        self.nodes.ctrl_free_at[at] = done;
        self.process_aux_outs(outs, done);
    }

    /// Dispatches sends/grants at time `t` (occupancy entries bump the
    /// controller availability of their node but do not delay `t`).
    fn process_aux_outs(&mut self, outs: &mut Vec<ProtoOut>, t: Time) {
        for out in outs.drain(..) {
            match out {
                ProtoOut::Send { from, to, msg } => self.dispatch_proto(from, to, msg, t),
                ProtoOut::Granted {
                    node,
                    line,
                    exclusive,
                    token,
                } => {
                    self.granted(node, line, exclusive, token.0, t);
                }
                ProtoOut::HomeOccupancy { node, cycles } => {
                    let free = t + self.cycles(cycles as u64);
                    self.nodes.ctrl_free_at[node] = self.nodes.ctrl_free_at[node].max(free);
                }
            }
        }
    }

    fn dispatch_proto(&mut self, from: usize, to: usize, msg: ProtoMsg, t: Time) {
        // The baseline variant sends everything low: the network's priority
        // channel degenerates to the original single FIFO bit-identically.
        let pri = match self.cfg.variant {
            ProtoVariant::Baseline => Priority::Low,
            ProtoVariant::CriticalityAware => self.cur_pri,
        };
        if self.cfg.latency_emulation.is_some() {
            let at = t + self.cycles(self.cfg.costs.emu_ideal_msg);
            let slot = self.push_penv(from, pri, msg);
            self.queue.schedule(at, Ev::proto(to, slot));
            return;
        }
        if from == to {
            let at = t + self.cycles(self.cfg.costs.local_msg);
            let slot = self.push_penv(from, pri, msg);
            self.queue.schedule(at, Ev::proto(to, slot));
            return;
        }
        let class = match msg.class() {
            MsgClass::Request => PacketClass::Request,
            MsgClass::Invalidate => PacketClass::Invalidate,
            MsgClass::Data => PacketClass::Data,
        };
        // The packet tag *is* the penv slot: the payload is written to
        // the arena once here and read once at the destination
        // controller — nothing is copied through the network layer.
        let slot = self.push_penv(from, pri, msg);
        let pkt = Packet::protocol(
            Endpoint::node(from),
            Endpoint::node(to),
            msg.bytes(),
            class,
            slot as u64,
        )
        .with_priority(pri);
        self.net_live += 1;
        self.inject(pkt, t);
    }

    fn push_penv(&mut self, from: usize, pri: Priority, msg: ProtoMsg) -> u32 {
        let env = PEnv {
            from: from as u32,
            pri,
            msg,
        };
        match self.free_penvs.pop() {
            Some(i) => {
                self.penvs[i as usize] = env;
                i
            }
            None => {
                self.penvs.push(env);
                (self.penvs.len() - 1) as u32
            }
        }
    }

    fn push_am(&mut self, am: ActiveMessage) -> u32 {
        match self.free_ams.pop() {
            Some(i) => {
                self.ams[i as usize] = Some(am);
                i
            }
            None => {
                self.ams.push(Some(am));
                (self.ams.len() - 1) as u32
            }
        }
    }

    fn inject(&mut self, pkt: Packet, t: Time) {
        // Conservation accounting covers machine traffic only: packets
        // destined for a compute node (cross-traffic — whether absorbed at
        // the mesh edge or aimed at a compute node by a hostile pattern —
        // is never consumed by the machine layer).
        let node_dst =
            matches!(pkt.dst, Endpoint::Node(_)) && pkt.class != PacketClass::CrossTraffic;
        let queue = &mut self.queue;
        self.net
            .inject(t, pkt, &mut |t2, e| queue.schedule(t2, Ev::net(e)));
        if node_dst {
            let rec = self.net.last_record_id();
            if let Some(ch) = self.checker.as_mut() {
                ch.on_inject(rec);
            }
        }
    }

    fn deliver(&mut self, pkt: Packet, rec: u32) {
        if pkt.class == PacketClass::CrossTraffic {
            // Hostile background traffic addressed at a compute node: it
            // loaded the victim's links and ejection port (that is its
            // job), but carries no machine payload — absorbed here.
            return;
        }
        let Endpoint::Node(dst) = pkt.dst else { return };
        let dst = dst as usize;
        self.net_live -= 1;
        let smuggled = self.fault_smuggle_ack
            && pkt.priority == Priority::High
            && pkt.tag & TAG_AM == 0
            && self.penvs[pkt.tag as usize].msg.is_invalidation_ack();
        if smuggled {
            // Armed fault: the ack slips past the tracked consumption path
            // (the protocol still processes it, so the run completes); the
            // checker's end-of-run conservation must flag the discrepancy.
            self.fault_smuggle_ack = false;
        } else if let Some(ch) = self.checker.as_mut() {
            ch.on_deliver(rec);
        }
        if pkt.tag & TAG_AM == 0 {
            // Protocol message: the tag is already a penv slot — hand the
            // handle straight to the destination controller's event.
            self.queue
                .schedule(self.now, Ev::proto(dst, pkt.tag as u32));
            return;
        }
        let slot = (pkt.tag & !TAG_AM) as u32;
        let am = self.ams[slot as usize].take().expect("live active message");
        self.free_ams.push(slot);
        let polled = self.cfg.receive == ReceiveMode::Poll && !am.handler.is_system();
        let drain = self
            .cfg
            .msg
            .drain_occupancy_cycles(&am, polled, self.nodes.rq[dst].len());
        let until = self.now + self.cycles(drain);
        self.net.stall_ejection(dst, until);
        if am.handler.is_system() {
            self.sys_am(dst, &am, rec);
        } else if polled {
            self.nodes.rq[dst].push(am);
            if self.trace.is_some() {
                self.nodes.rq_ids[dst].push_back(rec);
            }
            if let Status::BlockedMsg { since } = self.nodes.status[dst] {
                // The node may have blocked at a batched time ahead
                // of the event clock; the handler runs at the later
                // of block start, now, and any in-flight handler.
                let start = self.now.max(since).max(self.nodes.handler_busy_until[dst]);
                let am = self.nodes.rq[dst].pop().expect("just pushed");
                let rid = self.nodes.rq_ids[dst].pop_front().unwrap_or(NO_RECORD);
                let d = self.run_handler(dst, &am, true, start, rid);
                self.charge(dst, Bucket::MsgOverhead, d);
                self.nodes.handler_in_block[dst] += d;
                self.nodes.handler_busy_until[dst] = start + d;
                self.resume_from_block(dst, start + d);
            }
        } else {
            self.interrupt_delivery(dst, &am, rec);
        }
    }

    fn interrupt_delivery(&mut self, dst: usize, am: &ActiveMessage, rec: u32) {
        let status = self.nodes.status[dst];
        match status {
            Status::Running => {
                let d = self.run_handler(dst, am, false, self.now, rec);
                self.charge(dst, Bucket::MsgOverhead, d);
                self.nodes.pending_delay[dst] += d;
            }
            Status::BlockedMem { since, .. }
            | Status::BlockedSend { since }
            | Status::InBarrier { since }
            | Status::BlockedMsg { since } => {
                // Handlers on a blocked node run no earlier than the block
                // start and serialize after any in-flight handler; the
                // block cannot resume before they finish.
                let start = self.now.max(since).max(self.nodes.handler_busy_until[dst]);
                let d = self.run_handler(dst, am, false, start, rec);
                self.charge(dst, Bucket::MsgOverhead, d);
                self.nodes.handler_in_block[dst] += d;
                self.nodes.handler_busy_until[dst] = start + d;
                if matches!(status, Status::BlockedMsg { .. }) {
                    self.resume_from_block(dst, start + d);
                }
            }
            Status::Done => {
                // A retired program still fields interrupts (its handlers
                // may carry replies others wait on); the time is not
                // charged — the node's lifetime already ended.
                let _ = self.run_handler(dst, am, false, self.now, rec);
            }
        }
    }

    /// Runs an application handler, returning its total duration (receive
    /// overhead + handler work + sends it issued). `rec` is the packet
    /// record of the triggering message, for trace correlation.
    fn run_handler(
        &mut self,
        node: usize,
        am: &ActiveMessage,
        polled: bool,
        t: Time,
        rec: u32,
    ) -> Time {
        let mut ctx = HandlerCtx::new(node, self.cfg.nodes);
        self.programs[node].on_message(am.handler.0, &am.args, &am.bulk_data, &mut ctx);
        let mut dur = self.cycles(self.cfg.msg.receive_cycles(am, polled) + ctx.extra_cycles);
        self.trace_event(
            t,
            node,
            TraceKind::Handler {
                handler: am.handler.0,
                cycles: self.clock.cycles_at(dur) as u32,
                msg: rec,
            },
        );
        let sends = std::mem::take(&mut ctx.sends);
        for send in sends {
            dur += self.cycles(self.cfg.msg.send_cycles(&send));
            self.send_am(node, send, t + dur);
        }
        self.nodes.waitmsg_handled[node] = true;
        dur
    }

    fn send_am(&mut self, from: usize, am: ActiveMessage, t: Time) {
        assert_ne!(from, am.dst, "active message to self");
        self.messages_sent += 1;
        let bytes = am.wire_bytes();
        let dst = am.dst;
        // Criticality-aware: system messages (barrier arrivals/releases)
        // ride the priority channel — everything stalls until they land.
        // User-level sends stay low: promoting all of them would promote
        // the entire message-passing workload and prioritize nothing.
        let pri = if self.cfg.variant == ProtoVariant::CriticalityAware && am.handler.is_system() {
            Priority::High
        } else {
            Priority::Low
        };
        let slot = self.push_am(am);
        let pkt = Packet::protocol(
            Endpoint::node(from),
            Endpoint::node(dst),
            bytes,
            PacketClass::Data,
            slot as u64 | TAG_AM,
        )
        .with_priority(pri);
        self.net_live += 1;
        // Inject first so the trace event can carry the packet's record id
        // (assigned at injection); the event time is unchanged.
        self.inject(pkt, t);
        if self.trace.is_some() {
            let msg = self.net.last_record_id();
            self.trace_event(
                t,
                from,
                TraceKind::Send {
                    dst: dst as u16,
                    bytes,
                    msg,
                },
            );
        }
    }

    fn resume_from_block(&mut self, node: usize, at: Time) {
        let (since, bucket) = match self.nodes.status[node] {
            Status::BlockedMem { since, bucket } => (since, bucket),
            Status::BlockedSend { since } => (since, Bucket::MemWait),
            Status::BlockedMsg { since } => (since, Bucket::Sync),
            Status::InBarrier { since } => (since, Bucket::Sync),
            other => panic!("resume_from_block in status {other:?}"),
        };
        // A block cannot end before it logically began (a transaction the
        // node merged into may complete at an earlier event time), nor
        // before an in-flight handler finishes.
        let at = at.max(since).max(self.nodes.handler_busy_until[node]);
        self.nodes.handler_busy_until[node] = Time::ZERO;
        let handler = std::mem::take(&mut self.nodes.handler_in_block[node]);
        let blocked = at.saturating_sub(since).saturating_sub(handler);
        self.charge(node, bucket, blocked);
        self.trace_event(at, node, TraceKind::Resume);
        self.schedule_wake(node, at);
    }

    // ---- memory access ------------------------------------------------

    fn apply_mem_op(&mut self, node: usize, op: MemOp) {
        match op {
            MemOp::Read { word, .. } => self.nodes.loaded[node] = self.master[word.flat_index()],
            MemOp::Write { word, val } => self.master[word.flat_index()] = val,
            MemOp::Rmw { line, op } => {
                let i = (line.0 * 2) as usize;
                let (a, b) = op.apply(self.master[i], self.master[i + 1]);
                self.master[i] = a;
                self.master[i + 1] = b;
                self.nodes.rmw[node] = (a, b);
            }
        }
    }

    /// Applies a user-level access and, when the oracle is on, logs it with
    /// its issue-order `seq` and the node's current barrier epoch. Demand
    /// accesses block the node and posted stores drain before any barrier
    /// fence completes, so the epoch at apply time equals the epoch at
    /// issue time.
    fn apply_user_op(&mut self, node: usize, op: MemOp, seq: u64) {
        self.apply_mem_op(node, op);
        if let Some(o) = self.oracle.as_mut() {
            let epoch = self.barrier.node_epoch[node];
            let oop = match op {
                MemOp::Read { word, .. } => OracleOp::Read {
                    word: word.flat_index() as u64,
                    value: self.nodes.loaded[node],
                },
                MemOp::Write { word, val } => OracleOp::Write {
                    word: word.flat_index() as u64,
                    value: val,
                },
                MemOp::Rmw { line, op } => OracleOp::Rmw {
                    line: line.0,
                    op,
                    result: self.nodes.rmw[node],
                },
            };
            o.record(node, epoch, seq, oop);
        }
    }

    /// Applies the access carried by a completed transaction, routing
    /// user-level purposes through the oracle log. Prefetches never reach
    /// here (they carry no access of their own).
    fn apply_purpose_op(&mut self, node: usize, op: MemOp, purpose: Purpose) {
        match purpose {
            Purpose::Demand { seq, .. } | Purpose::Posted { seq, .. } => {
                self.apply_user_op(node, op, seq);
            }
            Purpose::Bar { .. } => self.apply_mem_op(node, op),
            Purpose::Prefetch { .. } => unreachable!("prefetches carry no memory op"),
        }
    }

    /// Mints the next oracle issue-sequence number for `node` (0 when the
    /// oracle is off; real seqs start at 1).
    fn next_seq(&mut self, node: usize) -> u64 {
        match self.oracle.as_mut() {
            Some(o) => o.next_seq(node),
            None => 0,
        }
    }

    /// Verifies the coherence invariants on `line` after a protocol
    /// transition (no-op unless checking is on).
    #[inline]
    fn check_line(&mut self, line: LineId) {
        if let Some(ch) = self.checker.as_mut() {
            ch.check_line(&self.proto, line);
        }
    }

    /// Number of coherence transitions the invariant checker has verified
    /// so far, or `None` when checking is off.
    pub fn checked_transitions(&self) -> Option<u64> {
        self.checker.as_ref().map(|c| c.transitions())
    }

    /// The applied memory-access log, when the SC oracle is enabled.
    pub fn oracle_log(&self) -> Option<&OracleLog> {
        self.oracle.as_deref()
    }

    /// Test hook: makes the protocol skip the cache invalidation for the
    /// next `Inv` message it processes (the ack is still sent), seeding the
    /// exact stale-copy fault the invariant checker must catch.
    #[doc(hidden)]
    pub fn fault_ignore_next_invalidation(&mut self) {
        self.proto.fault_ignore_next_invalidation();
    }

    /// Test hook: the next high-priority invalidation acknowledgement
    /// delivered over the network bypasses the checker's consumption
    /// accounting — a priority-inversion bug where the fast channel
    /// smuggles a message past the tracked queue. The protocol still
    /// processes the ack (the run completes normally); the
    /// message-conservation final check must then fail loudly. Only
    /// meaningful under [`ProtoVariant::CriticalityAware`] — the baseline
    /// variant sends no high-priority packets, so the fault stays dormant.
    #[doc(hidden)]
    pub fn fault_smuggle_next_priority_ack(&mut self) {
        self.fault_smuggle_ack = true;
    }

    fn hit_cost(&self, op: MemOp) -> u64 {
        match op {
            MemOp::Rmw { .. } => self.cfg.costs.rmw_hit,
            _ => self.cfg.costs.cache_hit,
        }
    }

    /// Attempts a memory access for `purpose`. Returns `Some(cycles)` if it
    /// completed inline (value already applied), `None` if the node must
    /// block for a transaction.
    fn try_access(&mut self, node: usize, op: MemOp, purpose: Purpose, t: Time) -> Option<u64> {
        // Criticality at the source: a demand miss (or a barrier access —
        // every participant waits on it) stalls the processor, so its
        // request chain is critical; prefetches and posted stores overlap
        // computation and ride the low channel.
        self.cur_pri = match purpose {
            Purpose::Demand { .. } | Purpose::Bar { .. } => Priority::High,
            Purpose::Prefetch { .. } | Purpose::Posted { .. } => Priority::Low,
        };
        let line = op.line();
        if let Some(entry) = self.outstanding.get(node, line.0) {
            match entry.kind {
                OutKind::Prefetch | OutKind::Posted => {
                    // Merge the demand into the outstanding transaction:
                    // retried when it completes.
                    let Purpose::Demand { seq, .. } = purpose else {
                        panic!("only demand accesses can merge into outstanding lines");
                    };
                    match self.tokens.get_mut(entry.token) {
                        Some(Purpose::Prefetch { merged, .. })
                        | Some(Purpose::Posted { merged, .. }) => *merged = Some((op, seq)),
                        other => panic!("outstanding token mismatch: {other:?}"),
                    }
                    return None;
                }
                _ => panic!("duplicate outstanding access to line {line:?} by node {node}"),
            }
        }
        let token = self.tokens.mint(purpose);
        let mut outs = self.take_outs();
        let outcome =
            self.proto
                .start_access_into(node, line, op.kind(), TxnToken(token), &mut outs);
        let result = match outcome {
            AccessOutcome::Hit => {
                self.tokens.remove(token);
                self.apply_purpose_op(node, op, purpose);
                Some(self.hit_cost(op))
            }
            AccessOutcome::PrefetchHit => {
                self.tokens.remove(token);
                self.process_aux_outs(&mut outs, t);
                self.apply_purpose_op(node, op, purpose);
                // Promotion moved the line from the prefetch buffer into
                // the cache: a transition worth checking.
                self.check_line(line);
                Some(self.cfg.costs.prefetch_promote)
            }
            AccessOutcome::Miss => {
                let kind = match purpose {
                    Purpose::Prefetch { .. } => OutKind::Prefetch,
                    Purpose::Posted { .. } => OutKind::Posted,
                    Purpose::Demand { .. } => OutKind::Demand,
                    Purpose::Bar { .. } => OutKind::Sys,
                };
                self.outstanding
                    .insert(node, line.0, OutstandingEntry { token, kind });
                let at = t + self.cycles(self.cfg.costs.miss_issue);
                self.process_aux_outs(&mut outs, at);
                None
            }
        };
        self.put_outs(outs);
        result
    }

    /// A coherence grant arrived for `token` at `node`'s controller.
    fn granted(&mut self, node: usize, line: LineId, exclusive: bool, token: u64, t: Time) {
        let purpose = self.tokens.get(token).expect("live token");
        match purpose {
            Purpose::Demand { node: n, op, seq } => {
                debug_assert_eq!(n, node);
                self.tokens.remove(token);
                self.outstanding.remove(node, line.0);
                let mut outs = self.take_outs();
                self.proto.fill_cache_into(node, line, exclusive, &mut outs);
                self.process_aux_outs(&mut outs, t);
                self.put_outs(outs);
                self.check_line(line);
                self.apply_user_op(node, op, seq);
                let resume_at = self.demand_resume_time(node, line, t);
                if self.proto.home(line) != node {
                    if let Status::BlockedMem { since, .. } = self.nodes.status[node] {
                        let lat = resume_at.saturating_sub(since);
                        self.miss_latency.record(self.clock.cycles_at(lat));
                    }
                }
                self.resume_from_block(node, resume_at);
            }
            Purpose::Prefetch { issued, .. } => {
                let fill_at = match self.cfg.latency_emulation {
                    Some(emu) => (issued + self.cycles(emu.prefetch_cycles)).max(t),
                    None => t,
                };
                if fill_at > t {
                    self.queue
                        .schedule(fill_at, Ev::fill_prefetch(token, line, exclusive));
                } else {
                    self.finish_prefetch(token, line, exclusive, t);
                }
            }
            Purpose::Posted {
                node: n,
                op,
                seq,
                merged,
            } => {
                debug_assert_eq!(n, node);
                self.tokens.remove(token);
                self.outstanding.remove(node, line.0);
                let mut outs = self.take_outs();
                self.proto.fill_cache_into(node, line, exclusive, &mut outs);
                self.process_aux_outs(&mut outs, t);
                self.put_outs(outs);
                self.check_line(line);
                self.apply_user_op(node, op, seq);
                self.nodes.posted[node] -= 1;
                if let Some((m, mseq)) = merged {
                    // A demand access was waiting behind this posted store.
                    if let Some(cycles) = self.try_access(
                        node,
                        m,
                        Purpose::Demand {
                            node,
                            op: m,
                            seq: mseq,
                        },
                        t,
                    ) {
                        let at = t + self.cycles(cycles);
                        self.resume_from_block(node, at);
                    }
                } else {
                    self.write_slot_freed(node, t);
                }
            }
            Purpose::Bar {
                node: n,
                stage,
                parity,
            } => {
                debug_assert_eq!(n, node);
                self.tokens.remove(token);
                self.outstanding.remove(node, line.0);
                let mut outs = self.take_outs();
                self.proto.fill_cache_into(node, line, exclusive, &mut outs);
                self.process_aux_outs(&mut outs, t);
                self.put_outs(outs);
                self.check_line(line);
                let at = t + self.cycles(self.cfg.costs.grant_fill);
                self.barrier_transition(node, stage, parity, at);
            }
        }
    }

    fn demand_resume_time(&mut self, node: usize, line: LineId, t: Time) -> Time {
        let fill = t + self.cycles(self.cfg.costs.grant_fill);
        match self.cfg.latency_emulation {
            Some(emu) if self.proto.home(line) != node => {
                let since = match self.nodes.status[node] {
                    Status::BlockedMem { since, .. } => since,
                    _ => t,
                };
                fill.max(since + self.cycles(emu.remote_miss_cycles))
            }
            _ => fill,
        }
    }

    fn finish_prefetch(&mut self, token: u64, line: LineId, exclusive: bool, t: Time) {
        let Some(Purpose::Prefetch { node, merged, .. }) = self.tokens.remove(token) else {
            panic!("prefetch token vanished");
        };
        self.outstanding.remove(node, line.0);
        let mut outs = self.take_outs();
        self.proto
            .fill_prefetch_into(node, line, exclusive, &mut outs);
        self.process_aux_outs(&mut outs, t);
        self.put_outs(outs);
        self.check_line(line);
        if let Some((op, seq)) = merged {
            // A demand access was waiting on this prefetch: retry it now.
            if let Some(cycles) = self.try_access(node, op, Purpose::Demand { node, op, seq }, t) {
                let at = t + self.cycles(cycles);
                self.resume_from_block(node, at);
            }
            // Otherwise the node re-blocked on a fresh transaction.
        }
    }

    // ---- the node driver ----------------------------------------------

    fn run_node(&mut self, node: usize) {
        let mut t = self.now;
        let budget_end = t + self.cycles(BATCH_CYCLES);
        loop {
            let mut ctx = NodeCtx {
                node,
                nodes: self.cfg.nodes,
                loaded: self.nodes.loaded[node],
                rmw: self.nodes.rmw[node],
                now_cycles: self.clock.cycles_at(t),
            };
            let step = self.programs[node].resume(&mut ctx);
            match step {
                Step::Compute(c) => {
                    let c = c.max(1);
                    self.charge(node, Bucket::Compute, self.cycles(c));
                    t += self.cycles(c);
                }
                Step::SpinWait(c) => {
                    let c = c.max(1);
                    self.charge(node, Bucket::Sync, self.cycles(c));
                    t += self.cycles(c);
                }
                Step::Load(word) => {
                    let op = MemOp::Read { word, sync: false };
                    if !self.demand_step(node, op, &mut t) {
                        return;
                    }
                }
                Step::SpinLoad(word) => {
                    let op = MemOp::Read { word, sync: true };
                    if !self.demand_step_bucketed(node, op, &mut t, Bucket::Sync) {
                        return;
                    }
                }
                Step::Store(word, val) => {
                    let op = MemOp::Write { word, val };
                    if self.cfg.write_buffer > 0 {
                        match self.posted_store(node, op, t) {
                            PostOutcome::Inline(c) => {
                                self.charge(node, Bucket::Compute, self.cycles(c));
                                t += self.cycles(c);
                            }
                            PostOutcome::Conflict => {
                                // A transaction is already in flight for
                                // this line: take the blocking path, which
                                // merges into it.
                                if !self.demand_step(node, op, &mut t) {
                                    return;
                                }
                            }
                            PostOutcome::BufferFull => {
                                // Stall until a slot frees (Memory + NI wait).
                                self.nodes.stalled_store[node] = Some(op);
                                self.nodes.status[node] = Status::BlockedMem {
                                    since: t,
                                    bucket: Bucket::MemWait,
                                };
                                return;
                            }
                        }
                    } else if !self.demand_step(node, op, &mut t) {
                        return;
                    }
                }
                Step::Rmw(line, rop) => {
                    let op = MemOp::Rmw { line, op: rop };
                    if !self.demand_step_bucketed(node, op, &mut t, Bucket::Sync) {
                        return;
                    }
                }
                Step::Prefetch { line, exclusive } => {
                    let c = self.cfg.costs.prefetch_issue;
                    self.charge(node, Bucket::Compute, self.cycles(c));
                    t += self.cycles(c);
                    let outstanding = self.outstanding.contains(node, line.0);
                    if self.proto.is_local(node, line) || outstanding {
                        self.useless_prefetches += 1;
                    } else {
                        let kind = if exclusive {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        };
                        let token = self.tokens.mint(Purpose::Prefetch {
                            node,
                            merged: None,
                            issued: t,
                        });
                        let mut outs = self.take_outs();
                        match self.proto.start_access_into(
                            node,
                            line,
                            kind,
                            TxnToken(token),
                            &mut outs,
                        ) {
                            AccessOutcome::Hit | AccessOutcome::PrefetchHit => {
                                // Raced with is_local: treat as useless
                                // (any buffered outputs are dropped, as
                                // before — put_outs clears them).
                                self.tokens.remove(token);
                                self.useless_prefetches += 1;
                            }
                            AccessOutcome::Miss => {
                                self.outstanding.insert(
                                    node,
                                    line.0,
                                    OutstandingEntry {
                                        token,
                                        kind: OutKind::Prefetch,
                                    },
                                );
                                self.process_aux_outs(&mut outs, t);
                            }
                        }
                        self.put_outs(outs);
                    }
                }
                Step::Send(am) => {
                    let cost = self.cycles(self.cfg.msg.send_cycles(&am));
                    self.charge(node, Bucket::MsgOverhead, cost);
                    let launch = t + cost;
                    let ready = self.net.inject_ready_at(node);
                    if ready > launch {
                        // Network interface full: stall (Memory + NI Wait).
                        self.send_am(node, am, ready);
                        self.trace_event(launch, node, TraceKind::BlockSend);
                        self.nodes.status[node] = Status::BlockedSend { since: launch };
                        self.resume_from_block(node, ready);
                        return;
                    }
                    self.send_am(node, am, launch);
                    t = launch;
                }
                Step::Poll => {
                    let mut cost = Time::ZERO;
                    if self.nodes.rq[node].is_empty() {
                        cost += self.cycles(self.cfg.msg.poll_empty);
                    } else {
                        while let Some(am) = self.nodes.rq[node].pop() {
                            let rid = self.nodes.rq_ids[node].pop_front().unwrap_or(NO_RECORD);
                            cost += self.run_handler(node, &am, true, t + cost, rid);
                        }
                    }
                    self.charge(node, Bucket::MsgOverhead, cost);
                    t += cost;
                }
                Step::WaitMsg => {
                    if !self.nodes.rq[node].is_empty() {
                        // Messages queued (poll mode) while we were
                        // running: drain them as an implicit poll rather
                        // than sleeping past a non-empty queue.
                        let mut cost = Time::ZERO;
                        while let Some(am) = self.nodes.rq[node].pop() {
                            let rid = self.nodes.rq_ids[node].pop_front().unwrap_or(NO_RECORD);
                            cost += self.run_handler(node, &am, true, t + cost, rid);
                        }
                        self.charge(node, Bucket::MsgOverhead, cost);
                        t += cost;
                    } else if self.nodes.waitmsg_handled[node] {
                        self.nodes.waitmsg_handled[node] = false;
                        self.charge(node, Bucket::Sync, self.cycles(1));
                        t += self.cycles(1);
                    } else {
                        self.trace_event(t, node, TraceKind::BlockMsg);
                        self.nodes.status[node] = Status::BlockedMsg { since: t };
                        return;
                    }
                }
                Step::Barrier => {
                    if self.nodes.posted[node] > 0 {
                        // Release fence: drain the write buffer first.
                        self.nodes.fence[node] = Some(FenceTarget::Barrier);
                        self.nodes.status[node] = Status::BlockedMem {
                            since: t,
                            bucket: Bucket::MemWait,
                        };
                        return;
                    }
                    self.barrier_arrive(node, t);
                    return;
                }
                Step::Done => {
                    if self.nodes.posted[node] > 0 {
                        self.nodes.fence[node] = Some(FenceTarget::Done);
                        self.nodes.status[node] = Status::BlockedMem {
                            since: t,
                            bucket: Bucket::MemWait,
                        };
                        return;
                    }
                    self.retire(node, t);
                    return;
                }
            }
            if t >= budget_end {
                self.schedule_wake(node, t);
                return;
            }
        }
    }

    /// Executes a demand access inside the batch. Returns `false` if the
    /// node blocked (the batch ends).
    fn demand_step(&mut self, node: usize, op: MemOp, t: &mut Time) -> bool {
        self.demand_step_bucketed(node, op, t, Bucket::Compute)
    }

    fn demand_step_bucketed(
        &mut self,
        node: usize,
        op: MemOp,
        t: &mut Time,
        hit_bucket: Bucket,
    ) -> bool {
        let seq = self.next_seq(node);
        match self.try_access(node, op, Purpose::Demand { node, op, seq }, *t) {
            Some(cycles) => {
                self.charge(node, hit_bucket, self.cycles(cycles));
                *t += self.cycles(cycles);
                true
            }
            None => {
                self.trace_event(*t, node, TraceKind::BlockMem { line: op.line().0 });
                self.nodes.status[node] = Status::BlockedMem {
                    since: *t,
                    bucket: op.block_bucket(),
                };
                false
            }
        }
    }

    /// Retires a finished program. Any handler time still pending (an
    /// interrupt that arrived during the final batch) extends the node's
    /// lifetime so accounting stays consistent.
    fn retire(&mut self, node: usize, t: Time) {
        let t = t + std::mem::take(&mut self.nodes.pending_delay[node]);
        let t = t.max(self.nodes.handler_busy_until[node]);
        self.trace_event(t, node, TraceKind::Done);
        self.nodes.status[node] = Status::Done;
        self.nodes.finish[node] = Some(t);
        self.finished += 1;
    }

    /// Posts a relaxed store. Returns the inline cost, a line conflict, or
    /// `BufferFull`.
    fn posted_store(&mut self, node: usize, op: MemOp, t: Time) -> PostOutcome {
        if self.outstanding.contains(node, op.line().0) {
            return PostOutcome::Conflict;
        }
        if self.nodes.posted[node] >= self.cfg.write_buffer {
            return PostOutcome::BufferFull;
        }
        let purpose = Purpose::Posted {
            node,
            op,
            seq: self.next_seq(node),
            merged: None,
        };
        match self.try_access(node, op, purpose, t) {
            Some(cycles) => PostOutcome::Inline(cycles),
            None => {
                self.nodes.posted[node] += 1;
                PostOutcome::Inline(self.cfg.costs.miss_issue)
            }
        }
    }

    /// A posted store completed: wake anything waiting on buffer space or
    /// a release fence.
    fn write_slot_freed(&mut self, node: usize, t: Time) {
        if let Some(op) = self.nodes.stalled_store[node].take() {
            // Retry the stalled store; the node is blocked in MemWait.
            match self.posted_store(node, op, t) {
                PostOutcome::Inline(c) => {
                    self.resume_from_block(node, t + self.cycles(c));
                }
                PostOutcome::Conflict | PostOutcome::BufferFull => {
                    self.nodes.stalled_store[node] = Some(op);
                }
            }
            return;
        }
        if self.nodes.posted[node] == 0 {
            if let Some(target) = self.nodes.fence[node].take() {
                let at = self.settle_block(node, t);
                match target {
                    FenceTarget::Barrier => self.barrier_arrive(node, at),
                    FenceTarget::Done => self.retire(node, at),
                }
            }
        }
    }

    /// Charges a blocked interval (like [`Machine::resume_from_block`])
    /// without scheduling a wake, for transitions into other blocked
    /// states (fence -> barrier). Returns the effective end of the block
    /// (clamped past any in-flight handler), which the follow-on state
    /// must start from.
    fn settle_block(&mut self, node: usize, at: Time) -> Time {
        let (since, bucket) = match self.nodes.status[node] {
            Status::BlockedMem { since, bucket } => (since, bucket),
            other => panic!("settle_block in status {other:?}"),
        };
        let at = at.max(since).max(self.nodes.handler_busy_until[node]);
        self.nodes.handler_busy_until[node] = Time::ZERO;
        let handler = std::mem::take(&mut self.nodes.handler_in_block[node]);
        let blocked = at.saturating_sub(since).saturating_sub(handler);
        self.charge(node, bucket, blocked);
        at
    }

    // ---- barriers -------------------------------------------------------

    fn barrier_arrive(&mut self, node: usize, t: Time) {
        self.trace_event(t, node, TraceKind::BarrierEnter);
        self.nodes.status[node] = Status::InBarrier { since: t };
        if self.cfg.nodes == 1 {
            // Trivial barrier.
            self.barrier.node_epoch[node] += 1;
            self.resume_from_block(node, t + self.cycles(1));
            return;
        }
        let parity = (self.barrier.node_epoch[node] % 2) as usize;
        match self.cfg.barrier {
            BarrierStyle::SharedMemory => {
                let counter = self.barrier.lines[parity][node][0];
                self.sys_access(
                    node,
                    MemOp::Rmw {
                        line: counter,
                        op: RmwOp::IncW0,
                    },
                    BarStage::Arrive,
                    parity,
                    t,
                );
            }
            BarrierStyle::MessageTree => self.mp_note_arrival(node, parity, t),
        }
    }

    /// Starts a barrier-internal shared-memory access; completions feed
    /// [`Machine::barrier_transition`].
    fn sys_access(&mut self, node: usize, op: MemOp, stage: BarStage, parity: usize, t: Time) {
        let purpose = Purpose::Bar {
            node,
            stage,
            parity,
        };
        if let Some(cycles) = self.try_access(node, op, purpose, t) {
            let at = t + self.cycles(cycles);
            self.barrier_transition(node, stage, parity, at);
        }
    }

    fn barrier_transition(&mut self, node: usize, stage: BarStage, parity: usize, t: Time) {
        match stage {
            BarStage::Arrive => self.sm_note_arrival(node, parity, t),
            BarStage::Notify => {
                // Our RMW on the parent's counter completed: credit the
                // parent, then spin on our own (local) flag.
                let parent = self
                    .barrier
                    .tree
                    .parent(node)
                    .expect("notify from non-root");
                let flag = self.barrier.lines[parity][node][1];
                self.sys_access(
                    node,
                    MemOp::Read {
                        word: Word::new(flag, 0),
                        sync: true,
                    },
                    BarStage::WaitFlag,
                    parity,
                    t,
                );
                self.sm_note_arrival(parent, parity, t);
            }
            BarStage::WaitFlag => {
                if self.barrier.sm[node][parity].released {
                    // The release write was ordered before our read: the
                    // value we just read is fresh.
                    self.sm_release_children(node, parity, t);
                } else {
                    self.barrier.sm[node][parity].waiting = true;
                }
            }
            BarStage::ReleaseWrite { child } => {
                let child = child as usize;
                let cs = &mut self.barrier.sm[child][parity];
                cs.released = true;
                if cs.waiting {
                    cs.waiting = false;
                    // The child's spin copy was invalidated by our write;
                    // it re-reads its flag and resumes when it returns.
                    let flag = self.barrier.lines[parity][child][1];
                    self.sys_access(
                        child,
                        MemOp::Read {
                            word: Word::new(flag, 0),
                            sync: true,
                        },
                        BarStage::ResumeRead,
                        parity,
                        t,
                    );
                }
                let s = &mut self.barrier.sm[node][parity];
                s.pending_writes -= 1;
                if s.pending_writes == 0 {
                    self.sm_finish(node, parity, t);
                }
            }
            BarStage::ResumeRead => self.sm_release_children(node, parity, t),
        }
    }

    /// Credits an arrival at `node`'s combining-tree slot; when the subtree
    /// is complete, climbs to the parent (or starts the release at the
    /// root).
    fn sm_note_arrival(&mut self, node: usize, parity: usize, t: Time) {
        self.barrier.sm[node][parity].count += 1;
        if self.barrier.sm[node][parity].count < self.barrier.tree.expected_arrivals(node) {
            return;
        }
        match self.barrier.tree.parent(node) {
            Some(parent) => {
                let counter = self.barrier.lines[parity][parent][0];
                self.sys_access(
                    node,
                    MemOp::Rmw {
                        line: counter,
                        op: RmwOp::IncW0,
                    },
                    BarStage::Notify,
                    parity,
                    t,
                );
            }
            None => self.sm_release_children(node, parity, t),
        }
    }

    /// Propagates the release: writes each child's flag, then finishes
    /// this node once the writes complete.
    fn sm_release_children(&mut self, node: usize, parity: usize, t: Time) {
        let children = self.barrier.tree.children(node);
        if children.is_empty() {
            self.sm_finish(node, parity, t);
            return;
        }
        let epoch = self.barrier.node_epoch[node] as f64;
        self.barrier.sm[node][parity].pending_writes = children.len();
        for child in children {
            let flag = self.barrier.lines[parity][child][1];
            self.sys_access(
                node,
                MemOp::Write {
                    word: Word::new(flag, 0),
                    val: epoch,
                },
                BarStage::ReleaseWrite {
                    child: child as u16,
                },
                parity,
                t,
            );
        }
    }

    fn sm_finish(&mut self, node: usize, parity: usize, t: Time) {
        self.barrier.sm[node][parity] = SmBar::default();
        self.barrier.node_epoch[node] += 1;
        self.resume_from_block(node, t);
    }

    // ---- message-passing barrier ---------------------------------------

    /// Charges system (barrier) message-handling time to sync and folds it
    /// into the node's busy accounting so wall time and bucket sums agree:
    /// running nodes extend their current batch; blocked nodes record
    /// handler-in-block time that the eventual unblock subtracts.
    fn charge_sys(&mut self, node: usize, cost: Time) {
        match self.nodes.status[node] {
            Status::Running => {
                self.nodes.pending_delay[node] += cost;
                self.charge(node, Bucket::Sync, cost);
            }
            Status::Done => {}
            s => {
                let since = s.since().expect("blocked state");
                let start = self.now.max(since).max(self.nodes.handler_busy_until[node]);
                self.nodes.handler_in_block[node] += cost;
                self.nodes.handler_busy_until[node] = start + cost;
                self.charge(node, Bucket::Sync, cost);
            }
        }
    }

    fn mp_note_arrival(&mut self, node: usize, parity: usize, t: Time) {
        self.barrier.mp_counts[node][parity] += 1;
        if self.barrier.mp_counts[node][parity] < self.barrier.tree.expected_arrivals(node) {
            return;
        }
        // Subtree complete.
        match self.barrier.tree.parent(node) {
            Some(parent) => {
                let cost = self.cycles(self.cfg.msg.system_msg);
                self.charge_sys(node, cost);
                let am = ActiveMessage::new(parent, HandlerId(SYS_BAR_ARRIVE), vec![parity as u64]);
                self.send_am(node, am, t + cost);
            }
            None => self.mp_release(node, parity, t),
        }
    }

    fn mp_release(&mut self, node: usize, parity: usize, t: Time) {
        self.barrier.mp_counts[node][parity] = 0;
        let mut t2 = t;
        for child in self.barrier.tree.children(node) {
            let cost = self.cycles(self.cfg.msg.system_msg);
            self.charge_sys(node, cost);
            t2 += cost;
            let am = ActiveMessage::new(child, HandlerId(SYS_BAR_RELEASE), vec![parity as u64]);
            self.send_am(node, am, t2);
        }
        self.barrier.node_epoch[node] += 1;
        self.resume_from_block(node, t2 + self.cycles(1));
    }

    fn sys_am(&mut self, dst: usize, am: &ActiveMessage, rec: u32) {
        let cost = self.cycles(self.cfg.msg.system_msg);
        let parity = am.args[0] as usize;
        self.trace_event(
            self.now,
            dst,
            TraceKind::Handler {
                handler: am.handler.0,
                cycles: self.clock.cycles_at(cost) as u32,
                msg: rec,
            },
        );
        match am.handler.0 {
            SYS_BAR_ARRIVE => {
                // Count the subtree arrival; charge the receive to sync.
                self.charge_sys(dst, cost);
                self.mp_note_arrival(dst, parity, self.now + cost);
            }
            SYS_BAR_RELEASE => {
                debug_assert!(
                    matches!(self.nodes.status[dst], Status::InBarrier { .. }),
                    "release must find node {dst} in the barrier"
                );
                self.charge_sys(dst, cost);
                self.mp_release(dst, parity, self.now + cost);
            }
            other => panic!("unknown system handler {other}"),
        }
    }
}

#[cfg(test)]
mod tests;
