//! Chrome/Perfetto trace-event export.
//!
//! Converts an [`Observation`] (execution trace, network packet lifecycle,
//! and metric series) into the Trace Event JSON format that
//! <https://ui.perfetto.dev> and `chrome://tracing` open directly:
//!
//! * **pid 1 — nodes**: one thread track per node, with duration slices for
//!   blocked intervals (`block-mem`, `block-send`, `block-msg`, `barrier`)
//!   and message handlers, and short slices for sends.
//! * **pid 2 — links**: one thread track per sampled link (named `E(2,1)`
//!   etc.), with a slice for every recorded packet serialization.
//! * **pid 3 — counters**: DES event-queue depth, barrier occupancy, and
//!   mean link utilization sampled per epoch.
//! * **Flow arrows** connect each send slice to its link hops and the
//!   receiving handler (same packet-record id), so a message's journey is
//!   clickable end to end.
//!
//! The export is deterministic: events are stably sorted per track by
//! timestamp, so identical runs produce byte-identical files.

use commsense_mesh::NO_RECORD;

use crate::metrics::Observation;
use crate::trace::TraceKind;

/// Schema version stamped into the trace's `otherData` (bumped whenever the
/// track or flow layout changes incompatibly).
///
/// v2: flows on the extracted critical path carry the `msg-critical`
/// category and a `critical: true` arg (see [`export_trace_critical`]).
pub const TRACE_SCHEMA_VERSION: u32 = 2;

const PID_NODES: u32 = 1;
const PID_LINKS: u32 = 2;
const PID_COUNTERS: u32 = 3;

/// One pending trace-event JSON object plus its sort key.
struct Entry {
    pid: u32,
    tid: u32,
    ts_ps: u64,
    body: String,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Formats a microsecond timestamp with fixed precision so output is
/// deterministic and sub-nanosecond resolution survives.
fn fmt_us(v: f64) -> String {
    let s = format!("{v:.6}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

impl Entry {
    fn slice(pid: u32, tid: u32, ts_ps: u64, dur_ps: u64, name: &str, extra: &str) -> Entry {
        Entry {
            pid,
            tid,
            ts_ps,
            body: format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\"{extra}}}",
                fmt_us(ts_us(ts_ps)),
                fmt_us(ts_us(dur_ps)),
                esc(name),
            ),
        }
    }

    fn instant(pid: u32, tid: u32, ts_ps: u64, name: &str) -> Entry {
        Entry {
            pid,
            tid,
            ts_ps,
            body: format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{}\"}}",
                fmt_us(ts_us(ts_ps)),
                esc(name),
            ),
        }
    }

    fn flow(
        pid: u32,
        tid: u32,
        ts_ps: u64,
        ph: char,
        id: u32,
        bind_end: bool,
        critical: bool,
    ) -> Entry {
        let bp = if bind_end { ",\"bp\":\"e\"" } else { "" };
        // Critical-path flows get their own category (so they can be
        // toggled/colored separately in the Perfetto UI) and an explicit
        // arg for queries.
        let (cat, args) = if critical {
            ("msg-critical", ",\"args\":{\"critical\":true}")
        } else {
            ("msg", "")
        };
        Entry {
            pid,
            tid,
            ts_ps,
            body: format!(
                "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"id\":{id},\
                 \"cat\":\"{cat}\",\"name\":\"{cat}\"{args}{bp}}}",
                fmt_us(ts_us(ts_ps)),
            ),
        }
    }

    fn counter(pid: u32, tid: u32, ts_ps: u64, name: &str, value: f64) -> Entry {
        Entry {
            pid,
            tid,
            ts_ps,
            body: format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{\"value\":{}}}}}",
                fmt_us(ts_us(ts_ps)),
                esc(name),
                value,
            ),
        }
    }
}

fn metadata(out: &mut Vec<String>, pid: u32, tid: Option<u32>, what: &str, name: &str) {
    let tid_field = tid.map_or(String::new(), |t| format!(",\"tid\":{t}"));
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{pid}{tid_field},\"name\":\"{what}\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    ));
}

/// Renders an [`Observation`] as a Chrome trace-event JSON document.
///
/// The returned string is a complete `.json` file ready for
/// <https://ui.perfetto.dev>. Byte-identical for identical observations.
///
/// # Examples
///
/// ```
/// use commsense_machine::perfetto::export_trace;
/// # use commsense_machine::{Machine, MachineConfig, MachineSpec, ObserveConfig};
/// # use commsense_machine::program::{HandlerCtx, NodeCtx, Program, Step};
/// # use commsense_cache::Heap;
/// # struct Idle;
/// # impl Program for Idle {
/// #     fn resume(&mut self, _ctx: &mut NodeCtx) -> Step { Step::Done }
/// #     fn on_message(&mut self, _h: u16, _a: &[u64], _b: &[u64], _c: &mut HandlerCtx) {}
/// #     fn as_any(&self) -> &dyn std::any::Any { self }
/// # }
/// let mut cfg = MachineConfig::tiny();
/// cfg.observe = Some(ObserveConfig::default());
/// let heap = Heap::new(cfg.nodes);
/// let programs: Vec<Box<dyn Program>> =
///     (0..cfg.nodes).map(|_| Box::new(Idle) as Box<dyn Program>).collect();
/// let mut m = Machine::new(cfg, MachineSpec { heap, initial: vec![], programs });
/// m.run();
/// let obs = m.take_observation().unwrap();
/// let json = export_trace(&obs);
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
pub fn export_trace(obs: &Observation) -> String {
    export_trace_critical(obs, &[])
}

/// Like [`export_trace`], but flags message flows whose packet-record id
/// appears in `critical` (sorted ascending — pass
/// [`crate::critpath::CritPath::critical_records`]) with the
/// `msg-critical` category and a `critical: true` arg, making the
/// extracted critical path visually traceable in the Perfetto UI.
pub fn export_trace_critical(obs: &Observation, critical: &[u32]) -> String {
    let is_critical = |id: u32| critical.binary_search(&id).is_ok();
    let mut entries: Vec<Entry> = Vec::new();
    let cycle_ps = obs.clock.cycle_ps();

    // Flow arrows only make sense when both endpoints survived trace and
    // packet-table truncation: collect the ids seen on each side first.
    let mut sent = std::collections::HashSet::new();
    let mut received = std::collections::HashSet::new();
    for e in obs.trace.events() {
        match e.kind {
            TraceKind::Send { msg, .. } if msg != NO_RECORD => {
                sent.insert(msg);
            }
            TraceKind::Handler { msg, .. } if msg != NO_RECORD => {
                received.insert(msg);
            }
            _ => {}
        }
    }
    let paired = |id: u32| id != NO_RECORD && sent.contains(&id) && received.contains(&id);

    // Node tracks: block intervals (open at a Block*/Barrier event, closed
    // by the next Resume), handler slices, send slices, done markers.
    let mut open_block: Vec<Option<(u64, &'static str)>> = vec![None; obs.nodes];
    for e in obs.trace.events() {
        let node = e.node as u32;
        let at = e.at.as_ps();
        match e.kind {
            TraceKind::BlockMem { .. }
            | TraceKind::BlockSend
            | TraceKind::BlockMsg
            | TraceKind::BarrierEnter => {
                open_block[e.node as usize] = Some((at, e.kind.label()));
            }
            TraceKind::Resume => {
                if let Some((start, label)) = open_block[e.node as usize].take() {
                    let dur = at.saturating_sub(start);
                    entries.push(Entry::slice(PID_NODES, node, start, dur, label, ""));
                }
            }
            TraceKind::Send { dst, bytes, msg } => {
                let name = format!("send->n{dst} {bytes}B");
                entries.push(Entry::slice(PID_NODES, node, at, cycle_ps, &name, ""));
                if paired(msg) {
                    entries.push(Entry::flow(
                        PID_NODES,
                        node,
                        at,
                        's',
                        msg,
                        false,
                        is_critical(msg),
                    ));
                }
            }
            TraceKind::Handler {
                handler,
                cycles,
                msg,
            } => {
                let dur = cycles as u64 * cycle_ps;
                let name = format!("handler {handler}");
                entries.push(Entry::slice(PID_NODES, node, at, dur, &name, ""));
                if paired(msg) {
                    entries.push(Entry::flow(
                        PID_NODES,
                        node,
                        at,
                        'f',
                        msg,
                        true,
                        is_critical(msg),
                    ));
                }
            }
            TraceKind::Done => {
                entries.push(Entry::instant(PID_NODES, node, at, "done"));
            }
        }
    }

    // Link tracks: one slice per recorded hop, flow steps for paired ids.
    for h in &obs.net.hops {
        let p = &obs.net.packets[h.packet as usize];
        let name = format!("{:?} {}B", p.class, p.bytes);
        let start = h.start.as_ps();
        let dur = h.end.as_ps().saturating_sub(start);
        entries.push(Entry::slice(PID_LINKS, h.link, start, dur, &name, ""));
        if paired(h.packet) {
            entries.push(Entry::flow(
                PID_LINKS,
                h.link,
                start,
                't',
                h.packet,
                false,
                is_critical(h.packet),
            ));
        }
    }

    // Counter track: per-epoch series.
    let s = &obs.series;
    for i in 0..s.samples() {
        let at = s.at_ps[i];
        entries.push(Entry::counter(
            PID_COUNTERS,
            0,
            at,
            "event-queue depth",
            s.event_queue_depth[i] as f64,
        ));
        entries.push(Entry::counter(
            PID_COUNTERS,
            1,
            at,
            "barrier occupancy",
            s.barrier_occupancy[i] as f64,
        ));
        if s.links > 0 {
            let mean: f64 =
                (0..s.links).map(|l| s.link_utilization(i, l)).sum::<f64>() / s.links as f64;
            entries.push(Entry::counter(
                PID_COUNTERS,
                2,
                at,
                "mean link utilization",
                (mean * 1000.0).round() / 1000.0,
            ));
        }
    }

    // Stable sort per track by timestamp: viewers require non-decreasing
    // `ts` within a track, and ties keep insertion order so the output is
    // deterministic.
    entries.sort_by(|a, b| {
        (a.pid, a.tid, a.ts_ps)
            .partial_cmp(&(b.pid, b.tid, b.ts_ps))
            .unwrap()
    });

    let mut events: Vec<String> = Vec::with_capacity(entries.len() + 8);
    metadata(&mut events, PID_NODES, None, "process_name", "nodes");
    metadata(&mut events, PID_LINKS, None, "process_name", "links");
    metadata(&mut events, PID_COUNTERS, None, "process_name", "counters");
    for n in 0..obs.nodes {
        metadata(
            &mut events,
            PID_NODES,
            Some(n as u32),
            "thread_name",
            &format!("node {n}"),
        );
    }
    // Link tracks are keyed by dense link id (hop records carry it); when
    // the metric series is sampled, only the sampled links get names, but
    // ids still line up.
    for (label, &l) in obs.link_labels.iter().zip(&obs.series.link_ids) {
        metadata(
            &mut events,
            PID_LINKS,
            Some(l),
            "thread_name",
            &format!("link {label}"),
        );
    }
    events.extend(entries.into_iter().map(|e| e.body));

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\",\"otherData\":{{\
         \"schema_version\":{TRACE_SCHEMA_VERSION},\
         \"trace_dropped_events\":{},\
         \"net_dropped_packets\":{}}}}}",
        events.join(","),
        obs.trace.dropped(),
        obs.net.dropped_packets,
    )
}
