//! Machine configuration: mechanisms, cost model, sensitivity knobs.

use commsense_cache::ProtoConfig;
use commsense_mesh::{CrossTrafficConfig, NetConfig, TopoSpec};
use commsense_msgpass::MsgCosts;

/// The five communication mechanisms compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Sequentially consistent shared memory (LimitLESS protocol).
    SharedMem,
    /// Shared memory plus non-binding software prefetch.
    SharedMemPrefetch,
    /// Fine-grained active messages received via interrupts.
    MsgInterrupt,
    /// Fine-grained active messages received via polling (Remote Queues).
    MsgPoll,
    /// Bulk transfer via DMA appended to active messages.
    Bulk,
}

impl Mechanism {
    /// All five mechanisms, in the paper's plotting order.
    pub const ALL: [Mechanism; 5] = [
        Mechanism::SharedMem,
        Mechanism::SharedMemPrefetch,
        Mechanism::MsgInterrupt,
        Mechanism::MsgPoll,
        Mechanism::Bulk,
    ];

    /// Short label used in tables and plots.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::SharedMem => "sm",
            Mechanism::SharedMemPrefetch => "sm+pf",
            Mechanism::MsgInterrupt => "mp-int",
            Mechanism::MsgPoll => "mp-poll",
            Mechanism::Bulk => "bulk",
        }
    }

    /// Inverse of [`Mechanism::label`], for decoding stored run records.
    pub fn from_label(label: &str) -> Option<Mechanism> {
        Mechanism::ALL.into_iter().find(|m| m.label() == label)
    }

    /// Whether programs of this mechanism communicate via shared memory.
    pub fn is_shared_memory(self) -> bool {
        matches!(self, Mechanism::SharedMem | Mechanism::SharedMemPrefetch)
    }

    /// Whether shared-memory programs should issue prefetches.
    pub fn uses_prefetch(self) -> bool {
        self == Mechanism::SharedMemPrefetch
    }

    /// How user messages are received under this mechanism.
    pub fn receive_mode(self) -> ReceiveMode {
        match self {
            Mechanism::MsgPoll => ReceiveMode::Poll,
            _ => ReceiveMode::Interrupt,
        }
    }

    /// Which barrier implementation matches this programming style.
    pub fn barrier_style(self) -> BarrierStyle {
        if self.is_shared_memory() {
            BarrierStyle::SharedMemory
        } else {
            BarrierStyle::MessageTree
        }
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Coherence-protocol personality: how the machine maps traffic onto the
/// network's priority virtual channels.
///
/// Under [`ProtoVariant::Baseline`] every packet rides the low-priority
/// channel — byte-identical to the pre-variant machine. Under
/// [`ProtoVariant::CriticalityAware`] (after *Criticality Aware
/// Multiprocessors*), traffic on the demand path — demand-miss requests,
/// everything sent while servicing a demand-tagged protocol message
/// (grants, invalidations, acks), barrier traffic, and system active
/// messages — is tagged high priority and bypasses queued low-priority
/// packets (prefetches, posted writes, background cross-traffic) at every
/// link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtoVariant {
    /// One FIFO per link; every packet low priority (the paper's machine).
    #[default]
    Baseline,
    /// Demand-path traffic jumps queues via the priority virtual channel.
    CriticalityAware,
}

impl ProtoVariant {
    /// Both variants, baseline first.
    pub const ALL: [ProtoVariant; 2] = [ProtoVariant::Baseline, ProtoVariant::CriticalityAware];

    /// Short label used in tables and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            ProtoVariant::Baseline => "base",
            ProtoVariant::CriticalityAware => "crit",
        }
    }

    /// Inverse of [`ProtoVariant::label`].
    pub fn from_label(label: &str) -> Option<ProtoVariant> {
        ProtoVariant::ALL.into_iter().find(|v| v.label() == label)
    }
}

impl std::fmt::Display for ProtoVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How arriving user-level messages reach their handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveMode {
    /// The message interrupts the processor on arrival.
    Interrupt,
    /// Messages queue until the program issues a poll step; system messages
    /// still arrive via selective interrupts (Remote Queues).
    Poll,
}

/// Which barrier implementation the machine provides for `Step::Barrier`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierStyle {
    /// Counter + release flag in shared memory, generating real coherence
    /// traffic (read-modify-writes, an invalidation sweep, re-reads).
    SharedMemory,
    /// Binary combining tree of active messages.
    MessageTree,
}

/// Uniform remote-miss latency emulation (the paper's context-switch
/// experiment, §5.3 / Figure 10): protocol messages travel an ideal
/// (contention-free, near-zero-latency) network, and every remote demand
/// miss instead costs a fixed number of processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyEmulation {
    /// Cycles charged per remote demand miss (the emulated round trip).
    pub remote_miss_cycles: u64,
    /// Cycles charged per prefetch completion. The paper notes prefetch is
    /// "not precisely modeled" under this emulation; we charge the full
    /// emulated latency so prefetches must be issued far enough ahead.
    pub prefetch_cycles: u64,
}

impl LatencyEmulation {
    /// Emulates a uniform `cycles`-per-remote-miss machine.
    pub fn uniform(cycles: u64) -> Self {
        LatencyEmulation {
            remote_miss_cycles: cycles,
            prefetch_cycles: cycles,
        }
    }
}

/// Processor-side cost constants of the shared-memory system, in cycles.
///
/// Calibrated against the Figure 3 cost table: local clean miss 11 cycles,
/// remote clean ≈ 42, remote dirty ≈ 63 (plus 1.6 cycles/hop supplied by
/// the network model), LimitLESS software handling in the several-hundred
/// range (see `ProtoConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cache hit (load or store).
    pub cache_hit: u64,
    /// Atomic read-modify-write on an owned line.
    pub rmw_hit: u64,
    /// Detecting a miss and issuing the request to the CMMU.
    pub miss_issue: u64,
    /// Transit of a protocol message between the processor and its own
    /// local directory (no network involved).
    pub local_msg: u64,
    /// Directory occupancy for a read/write request arriving over the
    /// network (directory walk + DRAM access).
    pub dir_request_occ: u64,
    /// Directory occupancy for a request from the local processor
    /// (Alewife's fast local-miss path).
    pub dir_request_occ_local: u64,
    /// Controller occupancy to receive a grant from the network.
    pub grant_occ: u64,
    /// Controller occupancy to receive a locally produced grant.
    pub grant_occ_local: u64,
    /// Occupancy to service an intervention (Fetch/Recall/Inv) at a cache,
    /// or an acknowledgement (InvAck/WbData) at the home.
    pub snoop_occ: u64,
    /// Filling the cache and restarting the processor after a grant.
    pub grant_fill: u64,
    /// Issuing a prefetch instruction (also the cost of a useless one; the
    /// paper notes a runtime remoteness check costs the same).
    pub prefetch_issue: u64,
    /// Promoting a line from the prefetch buffer into the cache.
    pub prefetch_promote: u64,
    /// Protocol-message transit on the ideal network of the latency
    /// emulation mode.
    pub emu_ideal_msg: u64,
}

impl CostModel {
    /// The Alewife calibration.
    pub fn alewife() -> Self {
        CostModel {
            cache_hit: 1,
            rmw_hit: 3,
            miss_issue: 2,
            local_msg: 1,
            dir_request_occ: 8,
            dir_request_occ_local: 2,
            grant_occ: 5,
            grant_occ_local: 2,
            snoop_occ: 3,
            grant_fill: 3,
            prefetch_issue: 3,
            prefetch_promote: 4,
            emu_ideal_msg: 1,
        }
    }

    /// Canonical field encoding for content-addressed result caching (see
    /// `commsense_des::stable`).
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder, prefix: &str) {
        enc.put(&format!("{prefix}.cache_hit"), self.cache_hit);
        enc.put(&format!("{prefix}.rmw_hit"), self.rmw_hit);
        enc.put(&format!("{prefix}.miss_issue"), self.miss_issue);
        enc.put(&format!("{prefix}.local_msg"), self.local_msg);
        enc.put(&format!("{prefix}.dir_request_occ"), self.dir_request_occ);
        enc.put(
            &format!("{prefix}.dir_request_occ_local"),
            self.dir_request_occ_local,
        );
        enc.put(&format!("{prefix}.grant_occ"), self.grant_occ);
        enc.put(&format!("{prefix}.grant_occ_local"), self.grant_occ_local);
        enc.put(&format!("{prefix}.snoop_occ"), self.snoop_occ);
        enc.put(&format!("{prefix}.grant_fill"), self.grant_fill);
        enc.put(&format!("{prefix}.prefetch_issue"), self.prefetch_issue);
        enc.put(&format!("{prefix}.prefetch_promote"), self.prefetch_promote);
        enc.put(&format!("{prefix}.emu_ideal_msg"), self.emu_ideal_msg);
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::alewife()
    }
}

/// Configuration of the time-resolved observability layer.
///
/// When present on a [`MachineConfig`], the machine records an epoch-sampled
/// metric series, a full execution trace, and the network packet lifecycle,
/// all retrievable after the run via `Machine::take_observation`. Observation
/// is pure bookkeeping: it never schedules events, so simulated cycle counts
/// are bit-identical with and without it.
///
/// # Examples
///
/// ```
/// use commsense_machine::{MachineConfig, ObserveConfig};
///
/// let mut cfg = MachineConfig::tiny();
/// cfg.observe = Some(ObserveConfig::default());
/// assert_eq!(cfg.observe.unwrap().epoch_cycles, 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Sampling period of the metric series, in processor cycles.
    pub epoch_cycles: u64,
    /// Capacity of the per-node execution trace (events beyond this are
    /// counted but not stored).
    pub trace_capacity: usize,
    /// Maximum number of network packets whose lifecycle is recorded
    /// individually (link utilization still counts every packet).
    pub max_packets: usize,
    /// Above this node count, per-node and per-link metric series are
    /// *sampled*: `sparse_threshold` evenly spaced nodes (and twice that
    /// many links) get individual columns, while aggregate run-state counts
    /// stay exact over all nodes. At or below it, every node and link gets
    /// a column — the seed behavior for the 32-node machine.
    pub sparse_threshold: usize,
}

impl Default for ObserveConfig {
    /// 1000-cycle epochs, 1M trace events, 1M packet records — enough for
    /// the paper's kernels at full problem size. Dense series up to 64
    /// nodes; sampled above.
    fn default() -> Self {
        ObserveConfig {
            epoch_cycles: 1_000,
            trace_capacity: 1 << 20,
            max_packets: 1 << 20,
            sparse_threshold: 64,
        }
    }
}

/// Configuration of the runtime correctness checker.
///
/// When present on a [`MachineConfig`], the machine verifies protocol
/// invariants after every coherence transition (single writer / multiple
/// readers, directory/cache consistency, no lost invalidations), tracks
/// message-channel conservation against the network recorder's packet ids,
/// and — when [`CheckConfig::oracle`] is set — records the applied
/// load/store stream and verifies it against a sequential-consistency
/// oracle at the end of the run. Checking is pure bookkeeping plus
/// assertions: it never schedules events, so simulated cycle counts are
/// bit-identical with and without it. Violations panic with a
/// machine-readable `PROTOCOL-INVARIANT` / `SC-ORACLE` marker.
///
/// # Examples
///
/// ```
/// use commsense_machine::{CheckConfig, MachineConfig};
///
/// let mut cfg = MachineConfig::tiny();
/// cfg.check = Some(CheckConfig::default());
/// assert!(!cfg.check.unwrap().oracle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Record the applied memory-access stream and verify it against the
    /// sequential-consistency oracle when the run finishes. Off by default:
    /// the log grows with every access, which is fine for litmus programs
    /// but heavy for full application runs.
    pub oracle: bool,
    /// Maximum number of network packets tracked individually for the
    /// conservation check (shared with the observability recorder; packets
    /// beyond this are counted but not id-checked).
    pub max_packets: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            oracle: false,
            max_packets: 1 << 20,
        }
    }
}

impl CheckConfig {
    /// The full harness: invariants, conservation, and the SC oracle.
    pub fn full() -> Self {
        CheckConfig {
            oracle: true,
            ..CheckConfig::default()
        }
    }
}

/// Full configuration of an emulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of compute nodes (must equal `net.topo.num_nodes()`).
    pub nodes: usize,
    /// Network parameters.
    pub net: NetConfig,
    /// Processor clock in MHz (Alewife: 20; scalable down to 14 for the
    /// Figure 9 experiment).
    pub cpu_mhz: f64,
    /// Shared-memory cost constants.
    pub costs: CostModel,
    /// Message-passing cost constants.
    pub msg: MsgCosts,
    /// Coherence protocol parameters.
    pub proto: ProtoConfig,
    /// Protocol personality: baseline or criticality-aware request
    /// prioritization over the network's priority virtual channel.
    pub variant: ProtoVariant,
    /// How user messages are received.
    pub receive: ReceiveMode,
    /// Barrier implementation.
    pub barrier: BarrierStyle,
    /// Optional background cross-traffic (bisection emulation, Figure 8).
    pub cross_traffic: Option<CrossTrafficConfig>,
    /// Optional uniform-latency emulation (Figure 10).
    pub latency_emulation: Option<LatencyEmulation>,
    /// Store-buffer depth for relaxed (release-consistent) writes: 0 means
    /// sequential consistency (stores stall, the Alewife model of the
    /// paper); `n > 0` lets up to `n` store misses stay outstanding, with
    /// barriers acting as release fences — the §2 technique for tolerating
    /// latency that the paper contrasts with SC.
    pub write_buffer: usize,
    /// Optional observability recording (epoch metrics, trace, packet
    /// lifecycle). `None` (the default) costs nothing on the hot path.
    pub observe: Option<ObserveConfig>,
    /// Optional runtime correctness checking (protocol invariants, message
    /// conservation, SC oracle). `None` (the default) costs nothing on the
    /// hot path; `Some` never changes simulated cycles.
    pub check: Option<CheckConfig>,
    /// Deterministic fault injection: when set, [`crate::Machine::run`]
    /// panics with an `INJECTED-FAULT` marker before simulating anything.
    /// Exists so the runner's catch/retry/quarantine path can be tested
    /// (and demonstrated) without a genuinely broken model; follows the
    /// `Protocol::fault_ignore_next_invalidation` precedent.
    pub inject_panic: bool,
    /// Measure per-event-kind dispatch self time during the run (the
    /// `repro perf --profile` breakdown; see
    /// `Machine::take_dispatch_profile`). Pure host-side bookkeeping: the
    /// profiled loop dispatches the same events at the same simulated
    /// times, so cycle counts are unchanged — but the timing calls make
    /// the run slower in wall-clock terms, so it is off everywhere except
    /// explicit profiling.
    pub profile_dispatch: bool,
}

impl MachineConfig {
    /// The 32-node MIT Alewife machine of the paper.
    pub fn alewife() -> Self {
        MachineConfig {
            nodes: 32,
            net: NetConfig::alewife(),
            cpu_mhz: 20.0,
            costs: CostModel::alewife(),
            msg: MsgCosts::alewife(),
            proto: ProtoConfig::default(),
            variant: ProtoVariant::Baseline,
            receive: ReceiveMode::Interrupt,
            barrier: BarrierStyle::SharedMemory,
            cross_traffic: None,
            latency_emulation: None,
            write_buffer: 0,
            observe: None,
            check: None,
            inject_panic: false,
            profile_dispatch: false,
        }
    }

    /// A small 2×2 machine for fast tests.
    pub fn tiny() -> Self {
        let mut cfg = MachineConfig::alewife();
        cfg.nodes = 4;
        cfg.net.topo = TopoSpec::mesh(2, 2);
        cfg
    }

    /// An Alewife-style machine scaled to `nodes` nodes on the given
    /// topology kind (see `TopoSpec::with_nodes`), for node-count sweeps.
    /// Per-channel network timing is unchanged, so bisection bandwidth
    /// scales with the topology's channel count.
    pub fn scaled(kind: &str, nodes: usize) -> Self {
        let mut cfg = MachineConfig::alewife();
        cfg.net.topo = TopoSpec::with_nodes(kind, nodes);
        cfg.nodes = cfg.net.topo.num_nodes();
        cfg
    }

    /// Applies the receive mode and barrier style implied by `mech`
    /// (builder style).
    pub fn with_mechanism(mut self, mech: Mechanism) -> Self {
        self.receive = mech.receive_mode();
        self.barrier = mech.barrier_style();
        self
    }

    /// Sets the processor clock (builder style).
    pub fn with_cpu_mhz(mut self, mhz: f64) -> Self {
        self.cpu_mhz = mhz;
        self
    }

    /// The processor clock object.
    pub fn clock(&self) -> commsense_des::Clock {
        commsense_des::Clock::from_mhz(self.cpu_mhz)
    }

    /// Canonical field encoding of everything that can change simulated
    /// cycles, for content-addressed result caching (see
    /// `commsense_des::stable`).
    ///
    /// Deliberately excluded: `observe`, `check`, and `profile_dispatch`.
    /// All three are pure bookkeeping — they never schedule events, so
    /// simulated cycle counts are bit-identical with and without them
    /// (pinned by the machine crate's identity tests) — and including
    /// them would make an observed, checked, or profiled run miss the
    /// store for no reason. `inject_panic` *is* included: a faulting
    /// request must never alias a healthy one.
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder) {
        enc.put("cfg.nodes", self.nodes);
        enc.put_f64("cfg.cpu_mhz", self.cpu_mhz);
        enc.put("cfg.receive", format!("{:?}", self.receive));
        enc.put("cfg.barrier", format!("{:?}", self.barrier));
        enc.put("cfg.write_buffer", self.write_buffer);
        enc.put("cfg.inject_panic", self.inject_panic);
        // Encoded only when non-baseline so every pre-variant config keeps
        // its store key (baseline is pinned bit-identical to the
        // pre-variant machine).
        if self.variant != ProtoVariant::Baseline {
            enc.put("cfg.variant", self.variant.label());
        }
        self.net.stable_encode(enc, "cfg.net");
        self.costs.stable_encode(enc, "cfg.costs");
        self.msg.stable_encode(enc, "cfg.msg");
        self.proto.stable_encode(enc, "cfg.proto");
        match &self.cross_traffic {
            Some(ct) => {
                enc.put("cfg.cross_traffic", "some");
                ct.stable_encode(enc, "cfg.cross_traffic");
            }
            None => enc.put("cfg.cross_traffic", "none"),
        }
        match &self.latency_emulation {
            Some(emu) => {
                enc.put("cfg.latency_emulation", "some");
                enc.put(
                    "cfg.latency_emulation.remote_miss_cycles",
                    emu.remote_miss_cycles,
                );
                enc.put("cfg.latency_emulation.prefetch_cycles", emu.prefetch_cycles);
            }
            None => enc.put("cfg.latency_emulation", "none"),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the topology shape if `nodes` does not
    /// match it.
    pub fn validate(&self) {
        assert_eq!(
            self.nodes,
            self.net.topo.num_nodes(),
            "machine configured with {} nodes but its network is a {} with {} nodes",
            self.nodes,
            self.net.topo.describe(),
            self.net.topo.num_nodes()
        );
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::alewife()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_properties() {
        assert!(Mechanism::SharedMem.is_shared_memory());
        assert!(Mechanism::SharedMemPrefetch.uses_prefetch());
        assert!(!Mechanism::SharedMem.uses_prefetch());
        assert_eq!(Mechanism::MsgPoll.receive_mode(), ReceiveMode::Poll);
        assert_eq!(
            Mechanism::MsgInterrupt.receive_mode(),
            ReceiveMode::Interrupt
        );
        assert_eq!(Mechanism::Bulk.barrier_style(), BarrierStyle::MessageTree);
        assert_eq!(
            Mechanism::SharedMem.barrier_style(),
            BarrierStyle::SharedMemory
        );
        assert_eq!(Mechanism::ALL.len(), 5);
        assert_eq!(format!("{}", Mechanism::MsgPoll), "mp-poll");
    }

    #[test]
    fn alewife_config_is_consistent() {
        let cfg = MachineConfig::alewife();
        cfg.validate();
        assert_eq!(cfg.clock().cycle_ps(), 50_000);
    }

    #[test]
    fn with_mechanism_sets_modes() {
        let cfg = MachineConfig::alewife().with_mechanism(Mechanism::MsgPoll);
        assert_eq!(cfg.receive, ReceiveMode::Poll);
        assert_eq!(cfg.barrier, BarrierStyle::MessageTree);
    }

    #[test]
    #[should_panic(expected = "16 nodes but its network is a mesh 8x4")]
    fn validate_catches_mismatch() {
        let mut cfg = MachineConfig::alewife();
        cfg.nodes = 16;
        cfg.validate();
    }

    #[test]
    fn scaled_configs_are_consistent() {
        for kind in TopoSpec::KINDS {
            let cfg = MachineConfig::scaled(kind, 1024);
            cfg.validate();
            assert_eq!(cfg.nodes, 1024, "{kind}");
            assert_eq!(cfg.net.topo.kind(), kind);
        }
    }

    #[test]
    fn observe_defaults_are_sane() {
        let o = ObserveConfig::default();
        assert!(o.epoch_cycles > 0);
        assert!(o.trace_capacity > 0);
        assert!(o.max_packets > 0);
        assert_eq!(MachineConfig::alewife().observe, None);
    }

    #[test]
    fn check_defaults_are_sane() {
        let c = CheckConfig::default();
        assert!(!c.oracle);
        assert!(c.max_packets > 0);
        assert!(CheckConfig::full().oracle);
        assert_eq!(MachineConfig::alewife().check, None);
    }

    #[test]
    fn latency_emulation_uniform() {
        let emu = LatencyEmulation::uniform(100);
        assert_eq!(emu.remote_miss_cycles, 100);
        assert_eq!(emu.prefetch_cycles, 100);
    }

    #[test]
    fn from_label_round_trips() {
        for m in Mechanism::ALL {
            assert_eq!(Mechanism::from_label(m.label()), Some(m));
        }
        assert_eq!(Mechanism::from_label("nope"), None);
    }

    fn cfg_hash(cfg: &MachineConfig) -> u128 {
        let mut enc = commsense_des::StableEncoder::new();
        cfg.stable_encode(&mut enc);
        enc.finish_hash()
    }

    #[test]
    fn stable_encode_ignores_bookkeeping_but_sees_model_fields() {
        let base = MachineConfig::alewife();
        let h = cfg_hash(&base);
        // Observation and checking never change simulated cycles, so they
        // must not change the store key either.
        let mut observed = base.clone();
        observed.observe = Some(ObserveConfig::default());
        observed.check = Some(CheckConfig::full());
        observed.profile_dispatch = true;
        assert_eq!(cfg_hash(&observed), h);
        // Every model-affecting knob must change the hash.
        let mut c = base.clone();
        c.cpu_mhz = 14.0;
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.write_buffer = 4;
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.inject_panic = true;
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.latency_emulation = Some(LatencyEmulation::uniform(100));
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.proto.hw_ptrs = 64;
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.msg.poll_per_msg += 1;
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.net.ps_per_byte /= 2;
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.net.topo = TopoSpec::torus(8, 4);
        assert_ne!(cfg_hash(&c), h);
        let mut c = base.clone();
        c.net.topo = TopoSpec::mesh(4, 8);
        assert_ne!(cfg_hash(&c), h);
        let with_mech = base.clone().with_mechanism(Mechanism::MsgPoll);
        assert_ne!(cfg_hash(&with_mech), h);
    }

    #[test]
    fn variant_labels_round_trip() {
        for v in ProtoVariant::ALL {
            assert_eq!(ProtoVariant::from_label(v.label()), Some(v));
        }
        assert_eq!(ProtoVariant::from_label("nope"), None);
        assert_eq!(ProtoVariant::default(), ProtoVariant::Baseline);
        assert_eq!(format!("{}", ProtoVariant::CriticalityAware), "crit");
    }

    #[test]
    fn stable_encode_sees_variant_and_pattern_only_when_hostile() {
        use commsense_mesh::TrafficPattern;
        let base = MachineConfig::alewife();
        let h = cfg_hash(&base);
        // An explicit baseline variant is the default: same key.
        let mut c = base.clone();
        c.variant = ProtoVariant::Baseline;
        assert_eq!(cfg_hash(&c), h);
        // Criticality-aware is a different machine: different key.
        let mut c = base.clone();
        c.variant = ProtoVariant::CriticalityAware;
        assert_ne!(cfg_hash(&c), h);
        // A uniform-pattern cross-traffic config keys exactly as before the
        // pattern fields existed (the fields are skipped when uniform)...
        let ct = CrossTrafficConfig::consuming(8.0, base.clock(), 64, 4);
        let mut uniform = base.clone();
        uniform.cross_traffic = Some(ct.clone());
        let hu = cfg_hash(&uniform);
        assert_ne!(hu, h);
        let mut explicit = base.clone();
        explicit.cross_traffic = Some(ct.clone().with_pattern(TrafficPattern::Uniform, 32, 7));
        assert_eq!(cfg_hash(&explicit), hu);
        // ...while each hostile pattern (and its parameters) changes it.
        let hot = |frac| {
            let mut c = base.clone();
            c.cross_traffic = Some(ct.clone().with_pattern(
                TrafficPattern::Hotspot {
                    node: 0,
                    fraction: frac,
                },
                32,
                7,
            ));
            cfg_hash(&c)
        };
        assert_ne!(hot(0.5), hu);
        assert_ne!(hot(0.5), hot(0.25));
        let mut c = base.clone();
        c.cross_traffic = Some(ct.clone().with_pattern(
            TrafficPattern::Bursty { on: 2, off: 6 },
            32,
            7,
        ));
        assert_ne!(cfg_hash(&c), hu);
        let mut c = base.clone();
        c.cross_traffic = Some(ct.with_pattern(TrafficPattern::Incast { targets: 4 }, 32, 7));
        assert_ne!(cfg_hash(&c), hu);
    }
}
