//! Runtime protocol-correctness checking (see [`crate::CheckConfig`]).
//!
//! When a machine is configured with `check: Some(..)`, a [`Checker`] rides
//! along with the event loop and asserts, after every coherence transition,
//! that the protocol state is consistent:
//!
//! * **Single writer / multiple readers** — at most one `Modified` copy
//!   exists machine-wide, and it excludes every `Shared` copy.
//! * **Directory/cache consistency** — a `Modified` copy is the directory's
//!   tracked owner; every `Shared` copy is in the directory's sharer set
//!   (the one-sided LimitLESS invariant: stale *directory* sharers are
//!   legal, stale *cache* copies are not).
//! * **No lost invalidations** — a dropped invalidation leaves a stale
//!   cached copy behind, which the directory check above catches the moment
//!   the write transaction completes.
//! * **Message-channel conservation** — every packet the machine injects
//!   for a compute node is consumed exactly once, cross-checked against the
//!   `mesh::recorder` packet ids: no duplicated deliveries, no packets the
//!   network delivered that the machine never consumed, and at the end of
//!   the run `injected = consumed + in-flight envelopes`.
//!
//! Checking is bookkeeping plus assertions only — it never schedules
//! events or feeds any time computation, so simulated cycle counts are
//! bit-identical with and without it (pinned by the `check_identity`
//! tests). Violations panic with a message starting with
//! [`INVARIANT_MARKER`], which the litmus fuzzer and `repro`/`litmus`
//! binaries turn into machine-readable failure summaries.

use commsense_cache::{LineId, Protocol};
use commsense_mesh::{Endpoint, PacketClass, PacketRecord, NO_RECORD};

use crate::config::CheckConfig;

/// Prefix of every invariant-violation panic message (machine-readable
/// failure classification for the fuzzer and CI).
pub const INVARIANT_MARKER: &str = "PROTOCOL-INVARIANT";

/// Prefix of every sequential-consistency-oracle panic message.
pub const ORACLE_MARKER: &str = "SC-ORACLE";

/// The live checker owned by the machine while a checked run executes.
#[derive(Debug)]
pub(crate) struct Checker {
    /// Node-destined packets injected.
    injected: u64,
    /// Node-destined packets consumed (delivered to the machine layer).
    consumed: u64,
    /// Consumed packets without a record id (recorder table full).
    untracked_consumed: u64,
    /// Per-record-id delivery flags (double-consumption detection).
    delivered: Vec<bool>,
    /// Coherence transitions checked.
    transitions: u64,
}

#[cold]
#[inline(never)]
fn violate(detail: &str) -> ! {
    panic!("{INVARIANT_MARKER} violated: {detail}");
}

impl Checker {
    pub(crate) fn new(_cfg: CheckConfig) -> Self {
        Checker {
            injected: 0,
            consumed: 0,
            untracked_consumed: 0,
            delivered: Vec::new(),
            transitions: 0,
        }
    }

    /// Records the injection of a node-destined packet (`rec` is its
    /// recorder id, [`NO_RECORD`] if the record table was full).
    pub(crate) fn on_inject(&mut self, rec: u32) {
        self.injected += 1;
        if rec != NO_RECORD {
            let i = rec as usize;
            if i >= self.delivered.len() {
                self.delivered.resize(i + 1, false);
            }
        }
    }

    /// Records the consumption of a delivered packet, panicking if the same
    /// record id is consumed twice (a duplicated delivery).
    pub(crate) fn on_deliver(&mut self, rec: u32) {
        self.consumed += 1;
        if rec == NO_RECORD {
            self.untracked_consumed += 1;
            return;
        }
        let i = rec as usize;
        if i >= self.delivered.len() {
            self.delivered.resize(i + 1, false);
        }
        if self.delivered[i] {
            violate(&format!("packet record {rec} consumed twice"));
        }
        self.delivered[i] = true;
    }

    /// Verifies the coherence invariants on `line` after a transition.
    pub(crate) fn check_line(&mut self, proto: &Protocol, line: LineId) {
        self.transitions += 1;
        if let Err(e) = proto.verify_line(line) {
            violate(&format!("after transition: {e}"));
        }
    }

    /// Number of coherence transitions checked so far.
    pub(crate) fn transitions(&self) -> u64 {
        self.transitions
    }

    /// End-of-run conservation check. `live_envelopes` is the number of
    /// message envelopes still in flight when the last program retired
    /// (runs may legitimately end with writebacks or stale acks still
    /// traversing the mesh); `records` is the recorder's packet table.
    pub(crate) fn final_check(&self, live_envelopes: usize, records: Option<&[PacketRecord]>) {
        if self.consumed + live_envelopes as u64 != self.injected {
            violate(&format!(
                "message conservation: injected {} != consumed {} + in-flight {}",
                self.injected, self.consumed, live_envelopes
            ));
        }
        let Some(records) = records else { return };
        // Cross-check against the recorder: the set of record ids the
        // machine consumed must equal the set the network delivered to a
        // compute node.
        let tracked_consumed = self.consumed - self.untracked_consumed;
        let mut recorded_delivered = 0u64;
        for (id, r) in records.iter().enumerate() {
            // Cross-traffic is outside conservation even when a hostile
            // pattern aims it at a compute node: the machine absorbs it at
            // the ejection port without consuming it.
            if !matches!(r.dst, Endpoint::Node(_)) || r.class == PacketClass::CrossTraffic {
                continue;
            }
            let machine_saw = self.delivered.get(id).copied().unwrap_or(false);
            if r.delivered_at.is_some() {
                recorded_delivered += 1;
                if !machine_saw {
                    violate(&format!(
                        "packet record {id} delivered by the network but never consumed"
                    ));
                }
            } else if machine_saw {
                violate(&format!(
                    "packet record {id} consumed but the network never delivered it"
                ));
            }
        }
        if recorded_delivered != tracked_consumed {
            violate(&format!(
                "recorder cross-check: {recorded_delivered} recorded deliveries \
                 != {tracked_consumed} tracked consumptions"
            ));
        }
    }
}
