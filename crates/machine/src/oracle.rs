//! Sequential-consistency oracle (see [`crate::CheckConfig::oracle`]).
//!
//! While a checked run executes, the machine appends one [`MemEvent`] per
//! *applied* user-level memory access — loads, stores, and RMWs of every
//! mechanism, including accesses merged behind prefetches and posted
//! (release-consistent) stores; barrier-internal system accesses are
//! excluded. The order of the log is the global apply order the simulation
//! actually produced, which serves as the witness interleaving; after the
//! run, [`verify`] checks that this witness is a legal explanation of every
//! observed value:
//!
//! 1. **Value consistency** — replaying the log against a flat memory
//!    image reproduces every load's observed value and every RMW's
//!    observed result (per-location coherence: each read returns the most
//!    recent write to that word in the witness order).
//! 2. **Program order** — each node's events apply in its issue order
//!    (per-node `seq` strictly increases). Under a non-zero write buffer,
//!    posted stores may apply late (the release-consistency relaxation the
//!    paper's §2 contrasts with SC) — but reads and RMWs never reorder,
//!    and per-`(node, word)` order stays strict even for stores.
//! 3. **Barrier ordering** — barrier epochs are non-decreasing along the
//!    witness: every access of epoch `e` (on any node) applies before any
//!    access of epoch `e + 1`, i.e. barriers are full fences.
//!
//! Together these say the observed execution is explainable by an SC-legal
//! interleaving of per-node program order (modulo the explicit store
//! relaxation when one is configured). Violations panic in the machine
//! with the [`crate::invariants::ORACLE_MARKER`] prefix.

use crate::program::RmwOp;

/// One applied user-level memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemEvent {
    /// The issuing node.
    pub node: u32,
    /// The node's barrier epoch when the access applied.
    pub epoch: u32,
    /// Per-node issue sequence number (1-based, strictly increasing in
    /// program order; gaps are legal).
    pub seq: u64,
    /// What was accessed and what was observed.
    pub op: OracleOp,
}

/// The access payload of a [`MemEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleOp {
    /// A load of one word and the value it observed.
    Read {
        /// Flat word index into the heap.
        word: u64,
        /// The observed value.
        value: f64,
    },
    /// A store of one word.
    Write {
        /// Flat word index into the heap.
        word: u64,
        /// The stored value.
        value: f64,
    },
    /// An atomic read-modify-write of one line (both words).
    Rmw {
        /// The line.
        line: u64,
        /// The operation applied.
        op: RmwOp,
        /// The observed post-operation values of the line's two words.
        result: (f64, f64),
    },
}

/// The memory-access log of one checked run.
#[derive(Debug)]
pub struct OracleLog {
    initial: Vec<f64>,
    next_seq: Vec<u64>,
    events: Vec<MemEvent>,
}

impl OracleLog {
    /// Creates an empty log for `nodes` nodes over a heap whose initial
    /// word values are `initial`.
    pub fn new(nodes: usize, initial: Vec<f64>) -> Self {
        OracleLog {
            initial,
            next_seq: vec![0; nodes],
            events: Vec::new(),
        }
    }

    /// Mints the next program-order sequence number for `node` (1-based).
    pub fn next_seq(&mut self, node: usize) -> u64 {
        self.next_seq[node] += 1;
        self.next_seq[node]
    }

    /// Appends an applied access.
    pub fn record(&mut self, node: usize, epoch: u64, seq: u64, op: OracleOp) {
        debug_assert!(seq > 0, "events must carry a minted seq");
        self.events.push(MemEvent {
            node: node as u32,
            epoch: epoch.min(u32::MAX as u64) as u32,
            seq,
            op,
        });
    }

    /// The recorded events, in global apply order.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }
}

/// Summary counters of a successful verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleSummary {
    /// Total events verified.
    pub events: u64,
    /// Loads verified.
    pub reads: u64,
    /// Stores verified.
    pub writes: u64,
    /// RMWs verified.
    pub rmws: u64,
}

/// Verifies the log against the SC oracle (see the module docs for the
/// three checks). `relaxed_stores` is true when the machine ran with a
/// non-zero write buffer, permitting posted stores to apply late.
pub fn verify(log: &OracleLog, relaxed_stores: bool) -> Result<OracleSummary, String> {
    let mut mem = log.initial.clone();
    let nodes = log.next_seq.len();
    let mut max_seq = vec![0u64; nodes];
    // Last applied seq per (node, word), for the strict per-location check.
    let mut last_at: commsense_des::FxHashMap<(u32, u64), u64> = Default::default();
    let mut max_epoch = 0u32;
    let mut sum = OracleSummary::default();

    let word = |mem: &[f64], w: u64, i: usize| -> Result<f64, String> {
        mem.get(w as usize)
            .copied()
            .ok_or_else(|| format!("event {i}: word {w} outside the heap"))
    };

    for (i, ev) in log.events.iter().enumerate() {
        sum.events += 1;
        let node = ev.node as usize;
        if node >= nodes {
            return Err(format!("event {i}: unknown node {node}"));
        }

        // 3. Barrier ordering: epochs never decrease along the witness.
        if ev.epoch < max_epoch {
            return Err(format!(
                "event {i}: node {node} access of barrier epoch {} applied after \
                 an access of epoch {max_epoch}",
                ev.epoch
            ));
        }
        max_epoch = ev.epoch;

        // 2. Program order.
        if ev.seq <= max_seq[node] {
            let late_store = relaxed_stores && matches!(ev.op, OracleOp::Write { .. });
            if !late_store {
                return Err(format!(
                    "event {i}: node {node} applied seq {} after seq {} ({:?} cannot \
                     reorder{})",
                    ev.seq,
                    max_seq[node],
                    ev.op,
                    if relaxed_stores {
                        ""
                    } else {
                        " under sequential consistency"
                    }
                ));
            }
        } else {
            max_seq[node] = ev.seq;
        }

        // Per-(node, word) order is strict even for relaxed stores.
        let touched: [Option<u64>; 2] = match ev.op {
            OracleOp::Read { word, .. } | OracleOp::Write { word, .. } => [Some(word), None],
            OracleOp::Rmw { line, .. } => [Some(line * 2), Some(line * 2 + 1)],
        };
        for w in touched.into_iter().flatten() {
            let last = last_at.entry((ev.node, w)).or_insert(0);
            if ev.seq <= *last {
                return Err(format!(
                    "event {i}: node {node} reordered accesses to word {w} \
                     (seq {} after {})",
                    ev.seq, *last
                ));
            }
            *last = ev.seq;
        }

        // 1. Value consistency against the flat replay memory.
        match ev.op {
            OracleOp::Read { word: w, value } => {
                sum.reads += 1;
                let have = word(&mem, w, i)?;
                if have.to_bits() != value.to_bits() {
                    return Err(format!(
                        "event {i}: node {node} load of word {w} observed {value} but \
                         the witness interleaving yields {have}"
                    ));
                }
            }
            OracleOp::Write { word: w, value } => {
                sum.writes += 1;
                word(&mem, w, i)?;
                mem[w as usize] = value;
            }
            OracleOp::Rmw { line, op, result } => {
                sum.rmws += 1;
                let (w0, w1) = (line * 2, line * 2 + 1);
                let (a, b) = op.apply(word(&mem, w0, i)?, word(&mem, w1, i)?);
                if a.to_bits() != result.0.to_bits() || b.to_bits() != result.1.to_bits() {
                    return Err(format!(
                        "event {i}: node {node} RMW of line {line} observed \
                         {result:?} but the witness interleaving yields {:?}",
                        (a, b)
                    ));
                }
                mem[w0 as usize] = a;
                mem[w1 as usize] = b;
            }
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(events: Vec<MemEvent>) -> OracleLog {
        OracleLog {
            initial: vec![0.0; 8],
            next_seq: vec![0; 2],
            events,
        }
    }

    fn rd(node: u32, seq: u64, word: u64, value: f64) -> MemEvent {
        MemEvent {
            node,
            epoch: 0,
            seq,
            op: OracleOp::Read { word, value },
        }
    }

    fn wr(node: u32, seq: u64, word: u64, value: f64) -> MemEvent {
        MemEvent {
            node,
            epoch: 0,
            seq,
            op: OracleOp::Write { word, value },
        }
    }

    #[test]
    fn legal_interleaving_passes() {
        let log = log_with(vec![
            wr(0, 1, 0, 2.5),
            rd(1, 1, 0, 2.5),
            wr(1, 2, 1, 7.0),
            rd(0, 2, 1, 7.0),
        ]);
        let sum = verify(&log, false).expect("legal");
        assert_eq!((sum.reads, sum.writes, sum.rmws), (2, 2, 0));
    }

    #[test]
    fn stale_read_is_rejected() {
        let log = log_with(vec![wr(0, 1, 0, 2.5), rd(1, 1, 0, 0.0)]);
        let err = verify(&log, false).expect_err("stale value");
        assert!(err.contains("load of word 0"), "{err}");
    }

    #[test]
    fn program_order_violation_is_rejected() {
        let log = log_with(vec![rd(0, 2, 0, 0.0), rd(0, 1, 1, 0.0)]);
        let err = verify(&log, false).expect_err("reordered");
        assert!(err.contains("seq 1 after seq 2"), "{err}");
    }

    #[test]
    fn relaxed_store_may_apply_late_but_reads_may_not() {
        let late_store = log_with(vec![rd(0, 2, 1, 0.0), wr(0, 1, 0, 1.0)]);
        assert!(verify(&late_store, true).is_ok());
        assert!(verify(&late_store, false).is_err());
        let late_read = log_with(vec![wr(0, 2, 0, 1.0), rd(0, 1, 1, 0.0)]);
        assert!(verify(&late_read, true).is_err());
    }

    #[test]
    fn per_word_order_is_strict_even_for_relaxed_stores() {
        let log = log_with(vec![wr(0, 2, 0, 2.0), wr(0, 1, 0, 1.0)]);
        let err = verify(&log, true).expect_err("same-word reorder");
        assert!(err.contains("reordered accesses to word 0"), "{err}");
    }

    #[test]
    fn rmw_observes_atomic_result() {
        let ok = log_with(vec![MemEvent {
            node: 0,
            epoch: 0,
            seq: 1,
            op: OracleOp::Rmw {
                line: 1,
                op: RmwOp::IncW0,
                result: (1.0, 0.0),
            },
        }]);
        assert!(verify(&ok, false).is_ok());
        let bad = log_with(vec![MemEvent {
            node: 0,
            epoch: 0,
            seq: 1,
            op: OracleOp::Rmw {
                line: 1,
                op: RmwOp::IncW0,
                result: (2.0, 0.0),
            },
        }]);
        assert!(verify(&bad, false).is_err());
    }

    #[test]
    fn barrier_epochs_must_not_decrease() {
        let log = log_with(vec![
            MemEvent {
                node: 0,
                epoch: 1,
                seq: 1,
                op: OracleOp::Read {
                    word: 0,
                    value: 0.0,
                },
            },
            MemEvent {
                node: 1,
                epoch: 0,
                seq: 1,
                op: OracleOp::Read {
                    word: 0,
                    value: 0.0,
                },
            },
        ]);
        let err = verify(&log, false).expect_err("epoch regression");
        assert!(err.contains("epoch"), "{err}");
    }

    #[test]
    fn seq_minting_is_per_node_and_one_based() {
        let mut log = OracleLog::new(2, vec![0.0; 2]);
        assert_eq!(log.next_seq(0), 1);
        assert_eq!(log.next_seq(0), 2);
        assert_eq!(log.next_seq(1), 1);
        log.record(
            0,
            0,
            1,
            OracleOp::Read {
                word: 0,
                value: 0.0,
            },
        );
        assert_eq!(log.events().len(), 1);
    }
}
