//! Critical-path analysis over lifecycle traces.
//!
//! The observe layer records what happened (per-node block/resume/send/
//! handler events, packet lifecycles with hop-level queue-vs-wire splits);
//! this module explains *why the run took as long as it did*. It rebuilds
//! the program activity graph — per-node compute segments linked by message
//! send→receive edges and barrier joins — walks the critical path backward
//! from the last-retiring node, and attributes every picosecond on that
//! path to a communication stage, Breaking-Band-style.
//!
//! On top of the attribution sits an LLAMP-style latency predictor: each
//! latency-clamped remote-miss stall on the critical path contributes
//! exactly one cycle of runtime per cycle of added network latency (under
//! the Figure-10 uniform-latency emulation the resume time is
//! `max(fill, since + L)`, so a clamped stall grows 1:1 with `L`). Counting
//! those stalls therefore yields a predicted slope `d(runtime)/d(latency)`
//! from a *single* base-latency trace, which `repro analyze` validates
//! against the simulated Figure-10 sweeps.
//!
//! # Graph construction rules
//!
//! * Per-node timelines come from the execution trace, sorted by node
//!   logical time.
//! * A `Resume` that ends a message wait (`BlockMsg`, or a message-tree
//!   barrier) is caused by the *last* handler that ran during the block;
//!   the path crosses to that message's `Send` on the sender, and the
//!   network edge in between is split into queueing (hop enqueue→departure)
//!   and transit (wire serialization + router/ejection remainder) using the
//!   recorder's hop records.
//! * A `Resume` that ends a shared-memory barrier follows the last-arrival
//!   rule: the path crosses to the node whose `BarrierEnter` was latest
//!   (the release cannot begin before it), and only the release
//!   propagation `[last-arrival, resume]` lands on the path.
//! * A `Resume` that ends a memory or send stall stays on-node: coherence
//!   traffic is not individually traced, so the stall is attributed as
//!   protocol residency (minus any handler time that overlapped it).
//! * Everything else is compute, except a `send_base`-cycle slice before
//!   each `Send` (message-build overhead) and traced handler durations
//!   (receive occupancy).
//!
//! The walk tiles `[0, finish]` exactly: blocked waits that the path
//! bypasses (the receiver idling while the sender computes) are slack and
//! deliberately never attributed.

use std::collections::HashMap;

use commsense_des::{Clock, Time};
use commsense_mesh::NO_RECORD;

use crate::config::MachineConfig;
use crate::metrics::Observation;
use crate::trace::{TraceEvent, TraceKind};

/// Remote-stall threshold (cycles) used to count latency-critical
/// traversals when no latency emulation is configured: roughly one
/// round trip on the unloaded Alewife mesh.
const FALLBACK_REMOTE_CYCLES: u64 = 30;

/// Where a cycle on the critical path went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Application computation (including startup).
    Compute,
    /// Send-side software overhead (message build, NI backpressure).
    Overhead,
    /// Receive-side occupancy: handler execution and message drain.
    Occupancy,
    /// Time on the wire plus router/ejection latency.
    Transit,
    /// Time queued behind other traffic at busy links.
    Queueing,
    /// Coherence-protocol residency: memory stalls on the path.
    Protocol,
    /// Barrier release propagation (and last-arrival residency).
    Barrier,
    /// Message waits the path could not cross (untraced or truncated).
    MsgWait,
}

/// Number of [`Stage`] variants (the breakdown array length).
pub const N_STAGES: usize = 8;

impl Stage {
    /// Every stage, in rendering order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::Compute,
        Stage::Overhead,
        Stage::Occupancy,
        Stage::Transit,
        Stage::Queueing,
        Stage::Protocol,
        Stage::Barrier,
        Stage::MsgWait,
    ];

    /// Short label for tables and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Compute => "compute",
            Stage::Overhead => "overhead",
            Stage::Occupancy => "occupancy",
            Stage::Transit => "transit",
            Stage::Queueing => "queueing",
            Stage::Protocol => "protocol",
            Stage::Barrier => "barrier",
            Stage::MsgWait => "msg-wait",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Compute => 0,
            Stage::Overhead => 1,
            Stage::Occupancy => 2,
            Stage::Transit => 3,
            Stage::Queueing => 4,
            Stage::Protocol => 5,
            Stage::Barrier => 6,
            Stage::MsgWait => 7,
        }
    }
}

/// The extracted critical path with its stage attribution and predictor
/// inputs. Produced by [`analyze`].
#[derive(Debug, Clone)]
pub struct CritPath {
    /// Finish time of the run (the latest traced event), in picoseconds.
    /// The path spans `[0, total_ps]`.
    pub total_ps: u64,
    /// Sum of the stage buckets; equals `total_ps` when the walk tiled the
    /// whole run (it always does unless the trace was truncated).
    pub attributed_ps: u64,
    /// Picoseconds attributed to each stage, indexed per [`Stage::ALL`].
    pub stage_ps: [u64; N_STAGES],
    /// Latency-clamped remote-miss stalls on the path: the predicted
    /// Figure-10 slope in cycles of runtime per cycle of added latency.
    pub traversals: u64,
    /// Message send→receive edges the path crossed.
    pub messages: u64,
    /// Shared-memory barrier joins the path crossed (last-arrival rule).
    pub barrier_joins: u64,
    /// Packet-record ids of messages on the path, sorted ascending
    /// (feeds the Perfetto exporter's `critical` flow flags).
    pub critical_records: Vec<u32>,
    /// The node whose retirement ends the path.
    pub end_node: u16,
    /// Whether the walk reached time zero without hitting the step cap or
    /// a truncated-trace dead end.
    pub complete: bool,
    /// Clock of the analyzed run, for cycle conversions.
    pub clock: Clock,
}

impl CritPath {
    /// Path length in processor cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_ps / self.clock.cycle_ps()
    }

    /// Cycles attributed to `stage`.
    pub fn stage_cycles(&self, stage: Stage) -> u64 {
        self.stage_ps[stage.index()] / self.clock.cycle_ps()
    }

    /// Fraction of the attributed path spent in `stage`, in `[0, 1]`.
    pub fn stage_share(&self, stage: Stage) -> f64 {
        if self.attributed_ps == 0 {
            return 0.0;
        }
        self.stage_ps[stage.index()] as f64 / self.attributed_ps as f64
    }

    /// Predicted `d(runtime)/d(latency)` in cycles per cycle: one per
    /// serialized latency-critical traversal on the path.
    pub fn predicted_slope(&self) -> f64 {
        self.traversals as f64
    }

    /// Predicted runtime (cycles) at emulated latency `lat`, extrapolating
    /// from a measured runtime at `base_lat` along the predicted slope.
    pub fn predict_runtime_cycles(&self, base_runtime: u64, base_lat: u64, lat: u64) -> f64 {
        base_runtime as f64 + self.predicted_slope() * (lat as f64 - base_lat as f64)
    }

    /// Whether packet-record `rec` lies on the critical path.
    pub fn is_critical(&self, rec: u32) -> bool {
        self.critical_records.binary_search(&rec).is_ok()
    }

    /// Renders the breakdown as an ASCII table.
    pub fn render_table(&self, title: &str) -> String {
        let mut out = format!(
            "critical path: {title} — {} cycles on path (node {})\n",
            self.total_cycles(),
            self.end_node
        );
        out.push_str("  stage       cycles         share\n");
        for stage in Stage::ALL {
            out.push_str(&format!(
                "  {:<10} {:>12}  {:>7.1}%\n",
                stage.label(),
                self.stage_cycles(stage),
                100.0 * self.stage_share(stage)
            ));
        }
        out.push_str(&format!(
            "  messages crossed: {}  barrier joins: {}  latency-critical traversals: {}\n",
            self.messages, self.barrier_joins, self.traversals
        ));
        out.push_str(&format!(
            "  predicted slope: {:.1} cycles per cycle of added latency\n",
            self.predicted_slope()
        ));
        if !self.complete {
            out.push_str("  (trace truncated: attribution covers part of the run)\n");
        }
        out
    }

    /// Renders the breakdown as CSV (`stage,cycles,share`).
    pub fn breakdown_csv(&self) -> String {
        let mut out = String::from("stage,cycles,share\n");
        for stage in Stage::ALL {
            out.push_str(&format!(
                "{},{},{:.6}\n",
                stage.label(),
                self.stage_cycles(stage),
                self.stage_share(stage)
            ));
        }
        out
    }
}

/// Per-message network-edge detail summed from hop records.
#[derive(Debug, Clone, Copy, Default)]
struct EdgeDetail {
    queue_ps: u64,
    wire_ps: u64,
}

/// The in-progress backward walk.
struct Walker<'a> {
    timelines: &'a [Vec<TraceEvent>],
    send_index: &'a HashMap<u32, (usize, usize)>,
    edges: &'a HashMap<u32, EdgeDetail>,
    barrier_enters: &'a [Vec<usize>],
    clock: Clock,
    send_base_ps: u64,
    remote_stall_ps: u64,
    out: CritPath,
}

impl Walker<'_> {
    fn add(&mut self, stage: Stage, dt: Time) {
        self.out.stage_ps[stage.index()] += dt.as_ps();
        self.out.attributed_ps += dt.as_ps();
    }

    /// Attributes a segment that ends at `cur`: a `send_base` slice before
    /// a `Send` is message-build overhead, the rest is compute.
    fn tail_attr(&mut self, cur: &TraceEvent, dt: Time) {
        if let TraceKind::Send { .. } = cur.kind {
            let oh = Time::from_ps(self.send_base_ps.min(dt.as_ps()));
            self.add(Stage::Overhead, oh);
            self.add(Stage::Compute, dt.saturating_sub(oh));
        } else {
            self.add(Stage::Compute, dt);
        }
    }

    /// Attributes an ordinary (non-resume) segment `[prev, cur]`.
    fn segment_attr(&mut self, prev: &TraceEvent, cur: &TraceEvent, dt: Time) {
        if let TraceKind::Handler { cycles, .. } = prev.kind {
            let occ = Time::from_ps(self.clock.cycles(cycles as u64).as_ps().min(dt.as_ps()));
            self.add(Stage::Occupancy, occ);
            self.tail_attr(cur, dt.saturating_sub(occ));
        } else {
            self.tail_attr(cur, dt);
        }
    }

    /// Handles a `Resume` at `ir` on `node`: finds the matching block
    /// start, decides whether the path crosses a message edge or a barrier
    /// join, attributes accordingly, and returns the next position.
    fn handle_resume(&mut self, node: usize, ir: usize) -> (usize, usize) {
        let tl = &self.timelines[node];
        let resume = tl[ir];

        // Scan back over handler/send activity to the block that this
        // resume ends. A malformed pairing (sorted ties, truncation) falls
        // through to a plain compute segment.
        let mut ib = ir;
        let block = loop {
            if ib == 0 {
                break None;
            }
            ib -= 1;
            match tl[ib].kind {
                TraceKind::Handler { .. } | TraceKind::Send { .. } => continue,
                TraceKind::BlockMem { .. }
                | TraceKind::BlockSend
                | TraceKind::BlockMsg
                | TraceKind::BarrierEnter => break Some(tl[ib]),
                _ => break None,
            }
        };
        let Some(block) = block else {
            let prev = tl[ir - 1];
            self.segment_attr(&prev, &resume, resume.at.saturating_sub(prev.at));
            return (node, ir - 1);
        };

        // The causal handler: the last one in the block interval whose
        // message we can trace back to its sender. Only message waits and
        // barriers are message-caused; handlers that interrupt a memory or
        // send stall are incidental.
        let jumpable = matches!(block.kind, TraceKind::BlockMsg | TraceKind::BarrierEnter);
        let causal = jumpable
            .then(|| {
                (ib + 1..ir).rev().find(|&i| {
                    matches!(tl[i].kind, TraceKind::Handler { msg, .. }
                        if msg != NO_RECORD && self.send_index.contains_key(&msg))
                })
            })
            .flatten();

        if let Some(ih) = causal {
            let h = tl[ih];
            let msg = match h.kind {
                TraceKind::Handler { msg, .. } => msg,
                _ => unreachable!("causal index points at a handler"),
            };
            // Handler execution (including its sends) ends the block.
            self.add(Stage::Occupancy, resume.at.saturating_sub(h.at));
            // Network edge back to the sender, split queue vs transit.
            let &(snode, sidx) = &self.send_index[&msg];
            let send = self.timelines[snode][sidx];
            let edge = h.at.saturating_sub(send.at).as_ps();
            let detail = self.edges.get(&msg).copied().unwrap_or_default();
            let queue = detail.queue_ps.min(edge);
            self.add(Stage::Queueing, Time::from_ps(queue));
            self.add(Stage::Transit, Time::from_ps(edge - queue));
            self.out.messages += 1;
            self.out.critical_records.push(msg);
            return (snode, sidx);
        }

        if block.kind == TraceKind::BarrierEnter {
            // Shared-memory barrier: the release cannot begin before the
            // last arrival, so the path crosses to that node. Ties resolve
            // to the lowest node id for determinism.
            let round = self.barrier_enters[node]
                .iter()
                .filter(|&&i| i <= ib)
                .count()
                - 1;
            let mut latest = (node, ib, block.at);
            for (onode, enters) in self.barrier_enters.iter().enumerate() {
                if let Some(&oi) = enters.get(round) {
                    let oat = self.timelines[onode][oi].at;
                    if oat > latest.2 {
                        latest = (onode, oi, oat);
                    }
                }
            }
            self.out.barrier_joins += 1;
            if latest.0 == node {
                // We arrived last: the whole interval is barrier residency.
                self.add(Stage::Barrier, resume.at.saturating_sub(block.at));
                return (node, ib);
            }
            self.add(Stage::Barrier, resume.at.saturating_sub(latest.2));
            return (latest.0, latest.1);
        }

        // On-node stall: attribute handler time that overlapped it as
        // occupancy, the remainder to the block's stage.
        let total = resume.at.saturating_sub(block.at);
        let mut occ_ps = 0u64;
        for ev in &tl[ib + 1..ir] {
            if let TraceKind::Handler { cycles, .. } = ev.kind {
                occ_ps += self.clock.cycles(cycles as u64).as_ps();
            }
        }
        let occ = Time::from_ps(occ_ps.min(total.as_ps()));
        self.add(Stage::Occupancy, occ);
        let stall = total.saturating_sub(occ);
        match block.kind {
            TraceKind::BlockMem { .. } => {
                self.add(Stage::Protocol, stall);
                // Under the uniform-latency emulation a clamped remote miss
                // resumes at `since + L` or later, so the full block
                // duration meeting `L` identifies a latency-critical
                // traversal exactly.
                if total.as_ps() >= self.remote_stall_ps {
                    self.out.traversals += 1;
                }
            }
            TraceKind::BlockSend => self.add(Stage::Overhead, stall),
            TraceKind::BlockMsg => self.add(Stage::MsgWait, stall),
            _ => self.add(Stage::Compute, stall),
        }
        (node, ib)
    }
}

/// Builds the activity graph from `obs` and extracts the critical path.
///
/// `cfg` supplies the latency-emulation threshold for traversal counting
/// and the message-build overhead estimate; the analysis itself is pure
/// post-processing and never touches the simulator.
pub fn analyze(obs: &Observation, cfg: &MachineConfig) -> CritPath {
    let clock = obs.clock;
    let mut timelines: Vec<Vec<TraceEvent>> = vec![Vec::new(); obs.nodes];
    for e in obs.trace.events() {
        if (e.node as usize) < obs.nodes {
            timelines[e.node as usize].push(*e);
        }
    }
    for tl in &mut timelines {
        tl.sort_by_key(|e| e.at);
    }

    let mut send_index: HashMap<u32, (usize, usize)> = HashMap::new();
    let mut barrier_enters: Vec<Vec<usize>> = vec![Vec::new(); obs.nodes];
    for (node, tl) in timelines.iter().enumerate() {
        for (i, e) in tl.iter().enumerate() {
            match e.kind {
                TraceKind::Send { msg, .. } if msg != NO_RECORD => {
                    send_index.entry(msg).or_insert((node, i));
                }
                TraceKind::BarrierEnter => barrier_enters[node].push(i),
                _ => {}
            }
        }
    }

    let mut edges: HashMap<u32, EdgeDetail> = HashMap::new();
    for hop in &obs.net.hops {
        let d = edges.entry(hop.packet).or_default();
        d.queue_ps += hop.queue_time().as_ps();
        d.wire_ps += hop.wire_time().as_ps();
    }

    let remote_stall_cycles = cfg
        .latency_emulation
        .map_or(FALLBACK_REMOTE_CYCLES, |emu| emu.remote_miss_cycles);

    let mut walker = Walker {
        timelines: &timelines,
        send_index: &send_index,
        edges: &edges,
        barrier_enters: &barrier_enters,
        clock,
        send_base_ps: clock.cycles(cfg.msg.send_base).as_ps(),
        remote_stall_ps: clock.cycles(remote_stall_cycles).as_ps(),
        out: CritPath {
            total_ps: 0,
            attributed_ps: 0,
            stage_ps: [0; N_STAGES],
            traversals: 0,
            messages: 0,
            barrier_joins: 0,
            critical_records: Vec::new(),
            end_node: 0,
            complete: true,
            clock,
        },
    };

    // The path ends at the globally latest traced event (ties resolve to
    // the lowest node id for determinism).
    let mut end: Option<(usize, usize, Time)> = None;
    for (node, tl) in timelines.iter().enumerate() {
        if let Some(last) = tl.last() {
            if end.is_none_or(|(_, _, at)| last.at > at) {
                end = Some((node, tl.len() - 1, last.at));
            }
        }
    }
    let Some((mut node, mut idx, finish)) = end else {
        walker.out.complete = false;
        return walker.out;
    };
    walker.out.total_ps = finish.as_ps();
    walker.out.end_node = node as u16;
    if obs.trace.truncated() {
        walker.out.complete = false;
    }

    let cap = obs.trace.events().len() * 4 + 64;
    let mut steps = 0usize;
    loop {
        steps += 1;
        if steps > cap {
            walker.out.complete = false;
            break;
        }
        if idx == 0 {
            let first = timelines[node][0];
            walker.tail_attr(&first, first.at);
            break;
        }
        let cur = timelines[node][idx];
        if cur.kind == TraceKind::Resume {
            (node, idx) = walker.handle_resume(node, idx);
        } else {
            let prev = timelines[node][idx - 1];
            walker.segment_attr(&prev, &cur, cur.at.saturating_sub(prev.at));
            idx -= 1;
        }
    }

    walker.out.critical_records.sort_unstable();
    walker.out.critical_records.dedup();
    walker.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyEmulation;
    use crate::metrics::MetricsSeries;
    use crate::trace::Trace;
    use commsense_mesh::{Endpoint, HopRecord, NetRecording, PacketClass, PacketRecord};
    use proptest::prelude::*;

    const CYC: u64 = 1000; // ps per cycle at 1 GHz

    fn clock() -> Clock {
        Clock::from_mhz(1000.0)
    }

    fn t(cycles: u64) -> Time {
        Time::from_ps(cycles * CYC)
    }

    fn obs(nodes: usize, trace: Trace, net: NetRecording) -> Observation {
        Observation {
            series: MetricsSeries::new((0..nodes as u32).collect(), Vec::new(), nodes, 1_000_000),
            trace,
            net,
            clock: clock(),
            nodes,
            link_labels: Vec::new(),
        }
    }

    fn cfg() -> MachineConfig {
        MachineConfig::alewife()
    }

    fn rec(node: &mut Trace, at: u64, n: usize, kind: TraceKind) {
        node.record(t(at), t(at), n, kind);
    }

    fn packet(injected: u64, delivered: u64) -> PacketRecord {
        PacketRecord {
            src: Endpoint::node(0),
            dst: Endpoint::node(1),
            class: PacketClass::Data,
            bytes: 24,
            injected_at: t(injected),
            delivered_at: Some(t(delivered)),
        }
    }

    /// Linear chain: node 0 computes, sends; node 1 waits, handles, runs to
    /// done. The path crosses the one message with a known queue/wire
    /// split, and every stage total is exact.
    #[test]
    fn linear_chain_exact_breakdown() {
        let mut tr = Trace::new(64);
        rec(&mut tr, 0, 1, TraceKind::BlockMsg);
        rec(
            &mut tr,
            100,
            0,
            TraceKind::Send {
                dst: 1,
                bytes: 24,
                msg: 0,
            },
        );
        rec(&mut tr, 110, 0, TraceKind::Done);
        rec(
            &mut tr,
            150,
            1,
            TraceKind::Handler {
                handler: 1,
                cycles: 10,
                msg: 0,
            },
        );
        rec(&mut tr, 160, 1, TraceKind::Resume);
        rec(&mut tr, 200, 1, TraceKind::Done);

        let net = NetRecording {
            packets: vec![packet(100, 148)],
            hops: vec![HopRecord {
                packet: 0,
                link: 0,
                enqueued: t(100),
                start: t(110),
                end: t(140),
            }],
            dropped_packets: 0,
            link_busy: Vec::new(),
        };

        let cp = analyze(&obs(2, tr, net), &cfg());
        assert!(cp.complete);
        assert_eq!(cp.end_node, 1);
        assert_eq!(cp.total_cycles(), 200);
        assert_eq!(cp.attributed_ps, cp.total_ps, "walk tiles the whole run");
        assert_eq!(cp.messages, 1);
        assert_eq!(cp.critical_records, vec![0]);
        assert!(cp.is_critical(0));
        assert!(!cp.is_critical(7));
        // Done←resume 40 compute; handler 10 occupancy; edge 150-100=50
        // splits 10 queue + 40 transit; before the send: 20 cycles of
        // send_base overhead, 80 startup compute.
        assert_eq!(cp.stage_cycles(Stage::Compute), 120);
        assert_eq!(cp.stage_cycles(Stage::Overhead), 20);
        assert_eq!(cp.stage_cycles(Stage::Occupancy), 10);
        assert_eq!(cp.stage_cycles(Stage::Queueing), 10);
        assert_eq!(cp.stage_cycles(Stage::Transit), 40);
        assert_eq!(cp.traversals, 0);
        assert_eq!(cp.predicted_slope(), 0.0);
        let table = cp.render_table("chain");
        assert!(table.contains("compute"));
        assert!(table.contains("200 cycles on path"));
        let csv = cp.breakdown_csv();
        assert!(csv.starts_with("stage,cycles,share\n"));
        assert!(csv.contains("queueing,10,"));
    }

    /// Fan-in: two senders, one slow — the path must run through the slow
    /// sender (the last handler before the resume), not the fast one.
    #[test]
    fn fan_in_follows_slow_sender() {
        let mut tr = Trace::new(64);
        rec(&mut tr, 0, 0, TraceKind::BlockMsg);
        rec(
            &mut tr,
            20,
            1,
            TraceKind::Send {
                dst: 0,
                bytes: 24,
                msg: 0,
            },
        );
        rec(&mut tr, 25, 1, TraceKind::Done);
        rec(
            &mut tr,
            100,
            2,
            TraceKind::Send {
                dst: 0,
                bytes: 24,
                msg: 1,
            },
        );
        rec(&mut tr, 105, 2, TraceKind::Done);
        rec(
            &mut tr,
            50,
            0,
            TraceKind::Handler {
                handler: 1,
                cycles: 5,
                msg: 0,
            },
        );
        rec(
            &mut tr,
            120,
            0,
            TraceKind::Handler {
                handler: 1,
                cycles: 5,
                msg: 1,
            },
        );
        rec(&mut tr, 125, 0, TraceKind::Resume);
        rec(&mut tr, 130, 0, TraceKind::Done);

        let net = NetRecording {
            packets: vec![packet(20, 48), packet(100, 118)],
            hops: vec![
                HopRecord {
                    packet: 0,
                    link: 0,
                    enqueued: t(20),
                    start: t(20),
                    end: t(30),
                },
                HopRecord {
                    packet: 1,
                    link: 0,
                    enqueued: t(100),
                    start: t(100),
                    end: t(110),
                },
            ],
            dropped_packets: 0,
            link_busy: Vec::new(),
        };

        let cp = analyze(&obs(3, tr, net), &cfg());
        assert!(cp.complete);
        assert_eq!(cp.total_cycles(), 130);
        assert_eq!(cp.attributed_ps, cp.total_ps);
        // Only the slow sender's message is critical.
        assert_eq!(cp.critical_records, vec![1]);
        assert_eq!(cp.messages, 1);
        // 5 done-tail + 80 sender compute = 85; send_base 20 overhead;
        // handler 5 occupancy; edge 120-100=20 transit, no queueing.
        assert_eq!(cp.stage_cycles(Stage::Compute), 85);
        assert_eq!(cp.stage_cycles(Stage::Overhead), 20);
        assert_eq!(cp.stage_cycles(Stage::Occupancy), 5);
        assert_eq!(cp.stage_cycles(Stage::Transit), 20);
        assert_eq!(cp.stage_cycles(Stage::Queueing), 0);
        assert_eq!(cp.predicted_slope(), 0.0);
    }

    /// Shared-memory barrier round: no traced release messages, so the
    /// last-arrival rule routes the path through the latest
    /// `BarrierEnter`, and only the release propagation is barrier time.
    #[test]
    fn barrier_round_crosses_last_arrival() {
        let mut tr = Trace::new(64);
        rec(&mut tr, 10, 0, TraceKind::BarrierEnter);
        rec(&mut tr, 40, 1, TraceKind::BarrierEnter);
        rec(&mut tr, 25, 2, TraceKind::BarrierEnter);
        for n in 0..3 {
            rec(&mut tr, 60, n, TraceKind::Resume);
        }
        rec(&mut tr, 70, 0, TraceKind::Done);
        rec(&mut tr, 65, 1, TraceKind::Done);
        rec(&mut tr, 62, 2, TraceKind::Done);

        let cp = analyze(&obs(3, tr, NetRecording::default()), &cfg());
        assert!(cp.complete);
        assert_eq!(cp.end_node, 0);
        assert_eq!(cp.total_cycles(), 70);
        assert_eq!(cp.attributed_ps, cp.total_ps);
        assert_eq!(cp.barrier_joins, 1);
        // 10 tail compute + release propagation 60-40=20 barrier + the
        // last arrival's 40 cycles of pre-barrier compute.
        assert_eq!(cp.stage_cycles(Stage::Barrier), 20);
        assert_eq!(cp.stage_cycles(Stage::Compute), 50);
        assert_eq!(cp.predicted_slope(), 0.0);
    }

    /// Under latency emulation, stalls meeting the emulated latency are
    /// latency-critical traversals; shorter (local) stalls are not.
    #[test]
    fn emulated_remote_stalls_counted() {
        let mut tr = Trace::new(64);
        rec(&mut tr, 0, 0, TraceKind::BlockMem { line: 1 });
        rec(&mut tr, 100, 0, TraceKind::Resume);
        rec(&mut tr, 150, 0, TraceKind::BlockMem { line: 2 });
        rec(&mut tr, 250, 0, TraceKind::Resume);
        rec(&mut tr, 250, 0, TraceKind::BlockMem { line: 3 });
        rec(&mut tr, 280, 0, TraceKind::Resume);
        rec(&mut tr, 290, 0, TraceKind::Done);

        let mut config = cfg();
        config.latency_emulation = Some(LatencyEmulation::uniform(100));
        let cp = analyze(&obs(1, tr, NetRecording::default()), &config);
        assert!(cp.complete);
        assert_eq!(cp.total_cycles(), 290);
        assert_eq!(cp.attributed_ps, cp.total_ps);
        assert_eq!(cp.traversals, 2, "two stalls meet the 100-cycle latency");
        assert_eq!(cp.predicted_slope(), 2.0);
        assert_eq!(cp.stage_cycles(Stage::Protocol), 230);
        assert_eq!(cp.stage_cycles(Stage::Compute), 60);
        // Doubling the latency doubles only the slope-scaled part.
        assert_eq!(cp.predict_runtime_cycles(290, 100, 200), 490.0);
    }

    /// An empty trace yields an empty (incomplete) path, not a panic.
    #[test]
    fn empty_trace_is_incomplete() {
        let cp = analyze(&obs(2, Trace::new(8), NetRecording::default()), &cfg());
        assert!(!cp.complete);
        assert_eq!(cp.total_cycles(), 0);
        assert_eq!(cp.messages, 0);
    }

    proptest! {
        /// Random single-node stall/compute programs: the predicted slope
        /// is non-negative and bounded by the total number of memory
        /// stalls, and the walk always tiles the full run exactly.
        #[test]
        fn slope_bounded_by_path_traversals(
            segs in proptest::collection::vec((0u8..3, 1u64..200), 1..20)
        ) {
            let mut tr = Trace::new(1024);
            let mut now = 0u64;
            let mut stalls = 0u64;
            for (kind, dur) in &segs {
                match kind {
                    0 => now += dur, // compute
                    1 => {
                        rec(&mut tr, now, 0, TraceKind::BlockMem { line: 7 });
                        now += dur;
                        rec(&mut tr, now, 0, TraceKind::Resume);
                        stalls += 1;
                    }
                    _ => {
                        rec(&mut tr, now, 0, TraceKind::BlockSend);
                        now += dur;
                        rec(&mut tr, now, 0, TraceKind::Resume);
                    }
                }
            }
            now += 1;
            rec(&mut tr, now, 0, TraceKind::Done);

            let mut config = cfg();
            config.latency_emulation = Some(LatencyEmulation::uniform(100));
            let cp = analyze(&obs(1, tr, NetRecording::default()), &config);
            prop_assert!(cp.complete);
            prop_assert_eq!(cp.attributed_ps, cp.total_ps);
            prop_assert!(cp.predicted_slope() >= 0.0);
            prop_assert!(cp.traversals <= stalls);
            prop_assert_eq!(cp.total_cycles(), now);
        }
    }
}
