//! Optional execution tracing: a bounded log of per-node scheduling
//! events (blocks, resumes, sends, handlers, barriers) for debugging
//! programs and understanding where time goes beyond the four-bucket
//! summary.
//!
//! Tracing is off by default (zero overhead beyond an `Option` check);
//! enable it with [`crate::Machine::enable_trace`] before running.

use commsense_des::{Clock, Time};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The node blocked on a coherence transaction for `line`.
    BlockMem {
        /// The missing line id.
        line: u64,
    },
    /// The node stalled on a full network-output port.
    BlockSend,
    /// The node blocked waiting for a message.
    BlockMsg,
    /// The node entered the barrier.
    BarrierEnter,
    /// The node resumed execution.
    Resume,
    /// The node launched an active message to `dst`.
    Send {
        /// Destination node.
        dst: u16,
        /// Wire bytes.
        bytes: u32,
        /// Network packet-record id correlating this send with its hops
        /// and handler ([`commsense_mesh::NO_RECORD`] when unrecorded).
        msg: u32,
    },
    /// A handler ran for `cycles` processor cycles.
    Handler {
        /// Application handler id.
        handler: u16,
        /// Duration in cycles.
        cycles: u32,
        /// Packet-record id of the message that triggered the handler
        /// ([`commsense_mesh::NO_RECORD`] when unrecorded).
        msg: u32,
    },
    /// The node's program retired.
    Done,
}

impl TraceKind {
    /// Short label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::BlockMem { .. } => "block-mem",
            TraceKind::BlockSend => "block-send",
            TraceKind::BlockMsg => "block-msg",
            TraceKind::BarrierEnter => "barrier",
            TraceKind::Resume => "resume",
            TraceKind::Send { .. } => "send",
            TraceKind::Handler { .. } => "handler",
            TraceKind::Done => "done",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When (the node's logical time — may run ahead of the event clock
    /// within a batch).
    pub at: Time,
    /// The event clock when the record was made.
    pub recorded_at: Time,
    /// Which node.
    pub node: u16,
    /// What.
    pub kind: TraceKind,
}

/// A bounded, in-order event log.
///
/// Recording stops silently once `capacity` events have been collected
/// ([`Trace::truncated`] reports whether that happened), so tracing a long
/// run cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates an empty trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (drops it if the trace is full).
    pub fn record(&mut self, at: Time, recorded_at: Time, node: usize, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                at,
                recorded_at,
                node: node as u16,
                kind,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of a single node.
    pub fn of_node(&self, node: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node as usize == node)
    }

    /// Whether the capacity bound dropped events.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// How many events were dropped after the trace filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders one node's timeline as text (for debugging sessions).
    pub fn render_node(&self, node: usize, clock: Clock) -> String {
        let mut out = format!("node {node} timeline (cycles):\n");
        for e in self.of_node(node) {
            out.push_str(&format!(
                "  {:>10} (ev {:>10}) {}",
                clock.cycles_at(e.at),
                clock.cycles_at(e.recorded_at),
                e.kind.label()
            ));
            match e.kind {
                TraceKind::BlockMem { line } => out.push_str(&format!(" line={line}")),
                TraceKind::Send { dst, bytes, .. } => {
                    out.push_str(&format!(" dst={dst} bytes={bytes}"))
                }
                TraceKind::Handler {
                    handler, cycles, ..
                } => out.push_str(&format!(" id={handler} cycles={cycles}")),
                _ => {}
            }
            out.push('\n');
        }
        if self.truncated() {
            out.push_str(&format!(
                "  ... (trace truncated at capacity; {} events dropped)\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_truncates() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(
                Time::from_ns(i * 10),
                Time::from_ns(i * 10),
                0,
                TraceKind::Resume,
            );
        }
        assert_eq!(t.events().len(), 3);
        assert!(t.truncated());
        assert_eq!(t.dropped(), 2);
        assert!(t.events().windows(2).all(|w| w[0].at <= w[1].at));
        let rendered = t.render_node(0, Clock::from_mhz(20.0));
        assert!(rendered.contains("2 events dropped"));
    }

    #[test]
    fn per_node_filter() {
        let mut t = Trace::new(10);
        t.record(Time::ZERO, Time::ZERO, 0, TraceKind::Done);
        t.record(Time::ZERO, Time::ZERO, 1, TraceKind::Done);
        t.record(Time::ZERO, Time::ZERO, 0, TraceKind::Resume);
        assert_eq!(t.of_node(0).count(), 2);
        assert_eq!(t.of_node(1).count(), 1);
    }

    #[test]
    fn render_includes_details() {
        let mut t = Trace::new(10);
        t.record(
            Time::from_us(1),
            Time::from_us(1),
            2,
            TraceKind::Send {
                dst: 5,
                bytes: 24,
                msg: 0,
            },
        );
        t.record(
            Time::from_us(2),
            Time::from_us(2),
            2,
            TraceKind::BlockMem { line: 77 },
        );
        let s = t.render_node(2, Clock::from_mhz(20.0));
        assert!(s.contains("send dst=5 bytes=24"));
        assert!(s.contains("block-mem line=77"));
        assert!(s.contains("20 ")); // 1us at 20MHz = 20 cycles
    }
}
