//! Concurrent-client stress tests over a real TCP daemon.
//!
//! The quick test runs in tier-1: two clients submit overlapping plans
//! against one daemon and the test asserts cross-client dedup, identical
//! CSV bytes for the shared artifacts, and an untorn store. The deep
//! variant (`#[ignore]`, run by the nightly CI job) raises the client
//! count and mixes figures so submissions race across plan shapes.

use std::sync::Arc;
use std::thread;

use commsense_apps::Scale;
use commsense_core::store::ResultStore;
use commsense_service::client::{self, SubmitOutcome};
use commsense_service::protocol::{Figure, PlanSpec};
use commsense_service::shell::{ServeConfig, Server};

fn temp_store(name: &str) -> (Arc<ResultStore>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("commsense-service-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("open store");
    (Arc::new(store), dir)
}

fn start_daemon(store: Arc<ResultStore>, workers: usize) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        store: Some(store),
        retries: 1,
        quiet: true,
    })
    .expect("bind daemon");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

fn plan(figure: Figure, apps: &[&str]) -> PlanSpec {
    PlanSpec {
        figure,
        scale: Scale::Small,
        apps: apps.iter().map(|s| s.to_string()).collect(),
        mechanisms: Vec::new(),
    }
}

fn submit(addr: &str, id: &str, plan: PlanSpec) -> thread::JoinHandle<SubmitOutcome> {
    let addr = addr.to_string();
    let id = id.to_string();
    thread::spawn(move || {
        client::submit(&addr, &id, &plan, |_| {}).unwrap_or_else(|e| panic!("{id}: {e}"))
    })
}

fn csv(outcome: &SubmitOutcome, name: &str) -> String {
    outcome
        .csvs
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing {name}"))
        .1
        .clone()
}

#[test]
fn two_clients_with_overlapping_plans_dedup_and_agree() {
    let (store, dir) = temp_store("stress2");
    let (addr, daemon) = start_daemon(store.clone(), 2);
    // Both plans cover EM3D (5 shared points); each adds a private app.
    let a = submit(&addr, "client-a", plan(Figure::Fig4, &["EM3D", "UNSTRUC"]));
    let b = submit(&addr, "client-b", plan(Figure::Fig4, &["EM3D", "ICCG"]));
    let a = a.join().expect("client a");
    let b = b.join().expect("client b");
    for (name, out) in [("a", &a), ("b", &b)] {
        assert_eq!(out.total, 10, "client {name} plan size");
        assert_eq!(out.progress, 10, "client {name} progress lines");
        assert_eq!(out.stats.failed, 0, "client {name} failures");
    }
    // 15 unique points were needed; whoever lost the EM3D race got its 5
    // points deduplicated (in flight or already finished — either way,
    // not simulated twice).
    let stats = client::fetch_stats(&addr).expect("stats");
    assert_eq!(stats.unique_runs, 15);
    assert_eq!(stats.simulated, 15, "each unique point simulated once");
    assert!(
        stats.inflight_hits >= 5,
        "the shared EM3D points must dedup across clients (got {})",
        stats.inflight_hits
    );
    assert_eq!(
        csv(&a, "fig4_em3d.csv"),
        csv(&b, "fig4_em3d.csv"),
        "shared artifact must be byte-identical for both clients"
    );
    client::request_shutdown(&addr).expect("shutdown");
    daemon.join().expect("daemon exits");
    // No torn records: every write was atomic and checksummed.
    let report = store.verify().expect("verify");
    assert_eq!(report.corrupt, 0);
    assert_eq!(report.ok, 15);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
#[ignore = "deep stress: run explicitly (nightly CI) with --ignored"]
fn many_clients_mixed_figures_stress() {
    let (store, dir) = temp_store("stress-deep");
    let (addr, daemon) = start_daemon(store.clone(), 4);
    // Two waves of four clients each; figures overlap within and across
    // waves (fig8/fig10 share their zero-consumption and message-passing
    // base points with fig4), so dedup happens at every level.
    for wave in 0..2 {
        let jobs: Vec<_> = [
            plan(Figure::Fig4, &["EM3D", "MOLDYN"]),
            plan(Figure::Fig8, &["EM3D"]),
            plan(Figure::Fig10, &["EM3D"]),
            plan(Figure::Fig4, &["EM3D", "ICCG"]),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, p)| submit(&addr, &format!("w{wave}-c{i}"), p))
        .collect();
        for (i, j) in jobs.into_iter().enumerate() {
            let out = j.join().expect("client thread");
            assert_eq!(out.stats.failed, 0, "wave {wave} client {i}");
            assert_eq!(out.progress, out.total, "wave {wave} client {i}");
        }
    }
    let stats = client::fetch_stats(&addr).expect("stats");
    // Wave 2 resubmits wave 1's plans verbatim: at least that many
    // point-level dedup hits, and nothing simulated twice.
    assert!(stats.inflight_hits >= stats.unique_runs);
    assert_eq!(stats.simulated, stats.unique_runs);
    client::request_shutdown(&addr).expect("shutdown");
    daemon.join().expect("daemon exits");
    let report = store.verify().expect("verify");
    assert_eq!(report.corrupt, 0);
    assert_eq!(report.ok, stats.unique_runs as u64);
    let _ = std::fs::remove_dir_all(dir);
}
