//! Table-driven tests for the pure [`ServiceMachine`]: protocol events
//! in, actions out, no sockets and no worker threads. Run completions are
//! injected as [`Event::RunDone`] with a real (once-simulated) result, so
//! every scheduling path — submit, duplicate submit, cross-client dedup,
//! cancel, disconnect mid-stream, shutdown with in-flight jobs — is
//! exercised deterministically.

use std::sync::OnceLock;

use commsense_apps::{AppSpec, RunResult};
use commsense_core::engine::{RunOutcome, RunRequest, Runner};
use commsense_machine::{MachineConfig, Mechanism};
use commsense_service::machine::{Action, ClientId, Event, RunId, ServiceMachine};
use commsense_service::protocol::{ClientMsg, Figure, PlanSpec, ServerMsg, Source};
use commsense_workloads::bipartite::Em3dParams;

/// One successful outcome, cloned from a single tiny simulation. The
/// machine treats outcomes as opaque, so every injected completion can
/// share the same result.
fn sim_ok() -> RunOutcome {
    static RESULT: OnceLock<RunResult> = OnceLock::new();
    let result = RESULT.get_or_init(|| {
        let mut p = Em3dParams::small();
        p.iterations = 1;
        let spec = AppSpec::Em3d(p);
        let cfg = MachineConfig::alewife().with_mechanism(Mechanism::SharedMem);
        let w = spec.prepare(cfg.nodes);
        let req = RunRequest {
            spec,
            mechanism: Mechanism::SharedMem,
            cfg,
        };
        match Runner::serial().run_one(&req, &w) {
            RunOutcome::Done { result, .. } => result,
            RunOutcome::Failed { message, .. } => panic!("seed simulation failed: {message}"),
        }
    });
    RunOutcome::Done {
        result: result.clone(),
        cached: false,
    }
}

fn submit_line(id: &str, figure: Figure, apps: &[&str], mechs: &[&str]) -> String {
    ClientMsg::Submit {
        id: id.to_string(),
        plan: PlanSpec {
            figure,
            scale: commsense_apps::Scale::Small,
            apps: apps.iter().map(|s| s.to_string()).collect(),
            mechanisms: mechs.iter().map(|s| s.to_string()).collect(),
        },
    }
    .line()
}

/// The parsed messages sent to `client`, in order.
fn sent_to(actions: &[Action], client: ClientId) -> Vec<ServerMsg> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send(c, line) if *c == client => {
                Some(ServerMsg::parse(line).expect("server line parses"))
            }
            _ => None,
        })
        .collect()
}

/// The `(run, request)` pairs started by `actions`, in order.
fn started(actions: &[Action]) -> Vec<(RunId, RunRequest)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Start { run, request } => Some((*run, request.clone())),
            _ => None,
        })
        .collect()
}

fn has_stop(actions: &[Action]) -> bool {
    actions.iter().any(|a| matches!(a, Action::Stop))
}

#[test]
fn submit_schedules_points_and_streams_progress_to_done() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    let a = m.handle(Event::Line(
        1,
        submit_line("j1", Figure::Fig4, &["EM3D"], &["sm", "mp-poll"]),
    ));
    let starts = started(&a);
    assert_eq!(starts.len(), 2, "one Start per distinct point");
    assert!(matches!(
        sent_to(&a, 1).as_slice(),
        [ServerMsg::Accepted { total: 2, .. }]
    ));
    // First completion: one progress line, no done yet.
    let a = m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: sim_ok(),
    });
    match sent_to(&a, 1).as_slice() {
        [ServerMsg::Progress {
            done: 1,
            total: 2,
            app,
            mech,
            source: Source::Simulated,
            ..
        }] => {
            assert_eq!(app, "EM3D");
            assert_eq!(mech, "sm");
        }
        other => panic!("expected one progress line, got {other:?}"),
    }
    // Second completion: progress then the done line with CSVs.
    let a = m.handle(Event::RunDone {
        run: starts[1].0,
        outcome: sim_ok(),
    });
    match sent_to(&a, 1).as_slice() {
        [ServerMsg::Progress { done: 2, .. }, ServerMsg::Done { id, stats, csvs }] => {
            assert_eq!(id, "j1");
            assert_eq!((stats.total, stats.simulated, stats.failed), (2, 2, 0));
            assert_eq!(csvs.len(), 1);
            assert_eq!(csvs[0].0, "fig4_em3d.csv");
            assert!(csvs[0].1.starts_with("app,mech,"));
        }
        other => panic!("expected progress + done, got {other:?}"),
    }
    assert_eq!(m.stats().jobs_done, 1);
    assert_eq!(m.stats().jobs_active, 0);
}

#[test]
fn duplicate_active_job_id_is_rejected_then_reusable() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    let line = submit_line("dup", Figure::Fig4, &["EM3D"], &["sm"]);
    let a = m.handle(Event::Line(1, line.clone()));
    let starts = started(&a);
    assert_eq!(starts.len(), 1);
    // Same id while the first is active: rejected, nothing scheduled.
    let a = m.handle(Event::Line(1, line.clone()));
    assert!(started(&a).is_empty());
    assert!(matches!(
        sent_to(&a, 1).as_slice(),
        [ServerMsg::Error { id: Some(_), .. }]
    ));
    // Finish the first; the id becomes reusable and the rerun resolves
    // entirely from the in-process run table (no new Start).
    m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: sim_ok(),
    });
    let a = m.handle(Event::Line(1, line));
    assert!(started(&a).is_empty(), "rerun must not re-schedule");
    match sent_to(&a, 1).as_slice() {
        [ServerMsg::Accepted { .. }, ServerMsg::Progress {
            source: Source::Inflight,
            ..
        }, ServerMsg::Done { stats, .. }] => {
            assert_eq!(stats.inflight_hits, 1);
            assert_eq!(stats.simulated, 0);
        }
        other => panic!("expected instant replay, got {other:?}"),
    }
}

#[test]
fn overlapping_submissions_dedup_in_flight_across_clients() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    m.handle(Event::Connected(2));
    let a1 = m.handle(Event::Line(
        1,
        submit_line("a", Figure::Fig4, &["EM3D"], &["sm", "sm+pf"]),
    ));
    let starts = started(&a1);
    assert_eq!(starts.len(), 2);
    // Client 2 wants an overlapping plan: only the non-overlapping point
    // is scheduled; the shared one subscribes to client 1's run.
    let a2 = m.handle(Event::Line(
        2,
        submit_line("b", Figure::Fig4, &["EM3D"], &["sm", "bulk"]),
    ));
    let starts2 = started(&a2);
    assert_eq!(starts2.len(), 1, "only 'bulk' is new");
    assert_eq!(starts2[0].1.mechanism, Mechanism::Bulk);
    assert_eq!(m.stats().inflight_hits, 1);
    assert_eq!(m.stats().unique_runs, 3);
    // The shared run completes: both clients get a progress line, with
    // the subscriber marked inflight.
    let a = m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: sim_ok(),
    });
    match (sent_to(&a, 1).as_slice(), sent_to(&a, 2).as_slice()) {
        (
            [ServerMsg::Progress {
                source: Source::Simulated,
                ..
            }],
            [ServerMsg::Progress {
                source: Source::Inflight,
                ..
            }],
        ) => {}
        other => panic!("expected fan-out to both clients, got {other:?}"),
    }
}

#[test]
fn cancel_silences_job_but_runs_stay_sharable() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    let a = m.handle(Event::Line(
        1,
        submit_line("c", Figure::Fig4, &["EM3D"], &["sm"]),
    ));
    let starts = started(&a);
    let a = m.handle(Event::Line(1, ClientMsg::Cancel { id: "c".into() }.line()));
    assert!(matches!(
        sent_to(&a, 1).as_slice(),
        [ServerMsg::Cancelled { .. }]
    ));
    assert_eq!(m.stats().jobs_active, 0);
    // The run still completes, silently for the cancelled job...
    let a = m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: sim_ok(),
    });
    assert!(sent_to(&a, 1).is_empty(), "cancelled job must not report");
    assert_eq!(m.stats().jobs_done, 0, "cancelled jobs are not completions");
    // ...and a later job still shares it.
    let a = m.handle(Event::Line(
        1,
        submit_line("c2", Figure::Fig4, &["EM3D"], &["sm"]),
    ));
    assert!(started(&a).is_empty());
    assert!(sent_to(&a, 1)
        .iter()
        .any(|msg| matches!(msg, ServerMsg::Done { .. })));
    // Cancelling something unknown is an error, not a panic.
    let a = m.handle(Event::Line(
        1,
        ClientMsg::Cancel { id: "nope".into() }.line(),
    ));
    assert!(matches!(
        sent_to(&a, 1).as_slice(),
        [ServerMsg::Error { .. }]
    ));
}

#[test]
fn disconnect_mid_stream_cancels_and_is_idempotent() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    let a = m.handle(Event::Line(
        1,
        submit_line("d", Figure::Fig4, &["EM3D"], &["sm", "sm+pf"]),
    ));
    let starts = started(&a);
    // One point streams, then the client vanishes.
    let a = m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: sim_ok(),
    });
    assert_eq!(sent_to(&a, 1).len(), 1);
    m.handle(Event::Disconnected(1));
    assert_eq!(m.stats().jobs_active, 0);
    assert_eq!(m.stats().clients, 0);
    // The writer-failure path can report the same disconnect again.
    m.handle(Event::Disconnected(1));
    // The orphaned run completes without any Send.
    let a = m.handle(Event::RunDone {
        run: starts[1].0,
        outcome: sim_ok(),
    });
    assert!(a.iter().all(|x| !matches!(x, Action::Send(..))));
}

#[test]
fn shutdown_with_inflight_jobs_drains_then_stops() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    m.handle(Event::Connected(2));
    let a = m.handle(Event::Line(
        1,
        submit_line("s", Figure::Fig4, &["EM3D"], &["sm", "sm+pf"]),
    ));
    let starts = started(&a);
    let a = m.handle(Event::Line(2, ClientMsg::Shutdown.line()));
    assert!(m.is_draining());
    assert!(!has_stop(&a), "must drain in-flight runs before stopping");
    assert!(matches!(sent_to(&a, 1).as_slice(), [ServerMsg::Stopping]));
    assert!(matches!(sent_to(&a, 2).as_slice(), [ServerMsg::Stopping]));
    // New submissions are refused while draining.
    let a = m.handle(Event::Line(
        2,
        submit_line("late", Figure::Fig4, &["EM3D"], &["sm"]),
    ));
    assert!(started(&a).is_empty());
    assert!(matches!(
        sent_to(&a, 2).as_slice(),
        [ServerMsg::Error { .. }]
    ));
    // Draining still delivers results to the submitted job.
    let a = m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: sim_ok(),
    });
    assert!(!has_stop(&a));
    assert_eq!(sent_to(&a, 1).len(), 1);
    // The last completion finishes the job, then closes and stops — in
    // that order, so the client sees its done line.
    let a = m.handle(Event::RunDone {
        run: starts[1].0,
        outcome: sim_ok(),
    });
    assert!(sent_to(&a, 1)
        .iter()
        .any(|msg| matches!(msg, ServerMsg::Done { .. })));
    assert!(has_stop(&a));
    let stop_at = a
        .iter()
        .position(|x| matches!(x, Action::Stop))
        .expect("stop action");
    assert!(
        a.iter()
            .skip(stop_at)
            .all(|x| !matches!(x, Action::Send(..))),
        "no sends after Stop"
    );
    assert_eq!(
        a.iter().filter(|x| matches!(x, Action::Close(_))).count(),
        2,
        "both clients closed"
    );
}

#[test]
fn failed_runs_surface_as_point_failures() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    let a = m.handle(Event::Line(
        1,
        submit_line("f", Figure::Fig4, &["EM3D"], &["sm"]),
    ));
    let starts = started(&a);
    let a = m.handle(Event::RunDone {
        run: starts[0].0,
        outcome: RunOutcome::Failed {
            attempts: 2,
            message: "panicked: deadline".into(),
        },
    });
    match sent_to(&a, 1).as_slice() {
        [ServerMsg::PointFailed { message, .. }, ServerMsg::Done { stats, csvs, .. }] => {
            assert!(message.contains("deadline"));
            assert_eq!(stats.failed, 1);
            // The CSV is still assembled, just without the failed row.
            assert_eq!(csvs.len(), 1);
        }
        other => panic!("expected point-failed + done, got {other:?}"),
    }
}

#[test]
fn malformed_and_unknown_lines_yield_errors() {
    let mut m = ServiceMachine::new();
    m.handle(Event::Connected(1));
    for bad in [
        "not json at all",
        "{\"type\":\"warp\"}",
        "{\"type\":\"submit\",\"id\":\"x\",\"figure\":\"fig4\",\"apps\":[\"SPICE\"]}",
    ] {
        let a = m.handle(Event::Line(1, bad.to_string()));
        assert!(
            matches!(sent_to(&a, 1).as_slice(), [ServerMsg::Error { .. }]),
            "line {bad:?} must produce an error reply"
        );
        assert!(started(&a).is_empty());
    }
}
