//! Resolving a wire-level [`PlanSpec`] into the exact run requests and
//! CSV recipes the `repro` binary would execute directly.
//!
//! The daemon's promise is byte-identical artifacts: a submitted `fig4`
//! plan must yield the same `fig4_em3d.csv` a direct `repro fig4 --csv`
//! run writes. That holds because both paths go through the same suite
//! ([`commsense_apps::suite`]), the same plan builders
//! ([`base_comparison_requests`], [`bisection_plan`], [`ctx_switch_plan`]
//! with the same default axes), and the same renderers
//! ([`report::breakdown_csv`] / [`report::sweep_csv`]) — the service adds
//! scheduling, not policy.

use commsense_apps::{suite, AppSpec};
use commsense_core::engine::{RunOutcome, RunRequest};
use commsense_core::experiment::{bisection_plan, ctx_switch_plan, Sweep, SweepPoint};
use commsense_core::report;
use commsense_machine::{MachineConfig, Mechanism};

use crate::protocol::{Figure, PlanSpec};

/// Figure 8's consumed-bandwidth axis (bytes/cycle), matching `repro fig8`.
pub const FIG8_CONSUMED: [f64; 6] = [0.0, 4.0, 8.0, 12.0, 14.0, 16.0];
/// Figure 8's cross-traffic message size in bytes, matching `repro fig8`.
pub const FIG8_MSG_BYTES: u32 = 64;
/// Figure 10's emulated-latency axis (cycles), matching `repro fig10`.
pub const FIG10_LATENCIES: [u64; 6] = [30, 50, 100, 200, 400, 800];

/// Descriptive metadata for one request, used for progress lines.
#[derive(Debug, Clone)]
pub struct PointMeta {
    /// Application name.
    pub app: &'static str,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// The request's swept x value (its first curve point; 0 for
    /// Figure 4, where nothing is swept).
    pub x: f64,
}

/// How to assemble one CSV artifact from per-request outcomes.
#[derive(Debug, Clone)]
pub enum CsvRecipe {
    /// [`report::breakdown_csv`] over the requests at `indices`, in order
    /// (failed points are skipped, as `repro fig4` skips them).
    Breakdown {
        /// Output file name (`fig4_em3d.csv`).
        name: String,
        /// Application name for the CSV's rows.
        app: &'static str,
        /// Request indices in [`Mechanism::ALL`] order.
        indices: Vec<usize>,
    },
    /// [`report::sweep_csv`] over per-mechanism curves of
    /// `(x, request index)` points (failed points are omitted from their
    /// curve, leaving empty cells, as `repro` does).
    Sweep {
        /// Output file name (`fig8_em3d.csv`).
        name: String,
        /// Application name for the sweeps.
        app: &'static str,
        /// The CSV's x-axis column label.
        x_label: &'static str,
        /// Per-mechanism `(x, request index)` curves, in plan order.
        curves: Vec<(Mechanism, Vec<(f64, usize)>)>,
    },
}

/// A fully resolved job: deduplicatable requests plus everything needed
/// to fold their outcomes back into byte-identical CSV artifacts.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// The figure this plan reproduces.
    pub figure: Figure,
    /// The base machine configuration (always the Alewife base machine,
    /// as `repro` uses without `--check`).
    pub cfg: MachineConfig,
    /// The requests to execute, in plan order.
    pub requests: Vec<RunRequest>,
    /// Per-request metadata, parallel to `requests`.
    pub meta: Vec<PointMeta>,
    /// The CSV artifacts to assemble once all requests complete.
    pub csvs: Vec<CsvRecipe>,
}

/// Resolves a wire-level spec against the suite and plan builders,
/// rejecting unknown names. The result lists every request the job needs;
/// the service machine deduplicates them against runs it already owns.
pub fn resolve(spec: &PlanSpec) -> Result<JobPlan, String> {
    let cfg = MachineConfig::alewife();
    let all = suite(spec.scale);
    let apps: Vec<AppSpec> = if spec.apps.is_empty() {
        all
    } else {
        spec.apps
            .iter()
            .map(|name| {
                all.iter()
                    .find(|s| s.name().eq_ignore_ascii_case(name))
                    .cloned()
                    .ok_or_else(|| format!("unknown app {name:?} (EM3D|UNSTRUC|ICCG|MOLDYN)"))
            })
            .collect::<Result<_, _>>()?
    };
    let mechanisms: Vec<Mechanism> = if spec.mechanisms.is_empty() {
        Mechanism::ALL.to_vec()
    } else {
        // Canonical Mechanism::ALL order regardless of the order submitted,
        // so equal plans resolve to equal request/curve orderings (and the
        // no-filter case matches `repro` exactly).
        let parsed: Vec<Mechanism> = spec
            .mechanisms
            .iter()
            .map(|l| {
                Mechanism::from_label(l).ok_or_else(|| {
                    format!("unknown mechanism {l:?} (sm|sm+pf|mp-int|mp-poll|bulk)")
                })
            })
            .collect::<Result<_, _>>()?;
        Mechanism::ALL
            .iter()
            .copied()
            .filter(|m| parsed.contains(m))
            .collect()
    };
    let mut plan = JobPlan {
        figure: spec.figure,
        cfg: cfg.clone(),
        requests: Vec::new(),
        meta: Vec::new(),
        csvs: Vec::new(),
    };
    for app in &apps {
        let csv_name = |prefix: &str| format!("{prefix}_{}.csv", app.name().to_lowercase());
        match spec.figure {
            Figure::Fig4 => {
                // Mirrors `base_comparison_requests` (restricted to the
                // mechanism filter): one base-machine request per
                // mechanism, in Mechanism::ALL order.
                let mut indices = Vec::with_capacity(mechanisms.len());
                for &mech in &mechanisms {
                    indices.push(plan.requests.len());
                    plan.requests.push(RunRequest {
                        spec: app.clone(),
                        mechanism: mech,
                        cfg: cfg.clone().with_mechanism(mech),
                    });
                    plan.meta.push(PointMeta {
                        app: app.name(),
                        mechanism: mech,
                        x: 0.0,
                    });
                }
                plan.csvs.push(CsvRecipe::Breakdown {
                    name: csv_name("fig4"),
                    app: app.name(),
                    indices,
                });
            }
            Figure::Fig8 | Figure::Fig10 => {
                let (sub, x_label, prefix) = match spec.figure {
                    Figure::Fig8 => (
                        bisection_plan(app, &mechanisms, &cfg, &FIG8_CONSUMED, FIG8_MSG_BYTES),
                        "bytes_per_cycle",
                        "fig8",
                    ),
                    _ => (
                        ctx_switch_plan(app, &mechanisms, &cfg, &FIG10_LATENCIES),
                        "miss_cycles",
                        "fig10",
                    ),
                };
                let base = plan.requests.len();
                let curves: Vec<(Mechanism, Vec<(f64, usize)>)> = sub
                    .curves()
                    .into_iter()
                    .map(|(m, pts)| (m, pts.into_iter().map(|(x, i)| (x, base + i)).collect()))
                    .collect();
                for (i, req) in sub.requests().iter().enumerate() {
                    // The request's x for progress reporting: the first
                    // curve point measured by it (Figure 10 replicates one
                    // message-passing request across the whole axis).
                    let x = curves
                        .iter()
                        .flat_map(|(_, pts)| pts.iter())
                        .find(|(_, idx)| *idx == base + i)
                        .map(|(x, _)| *x)
                        .unwrap_or(0.0);
                    plan.meta.push(PointMeta {
                        app: app.name(),
                        mechanism: req.mechanism,
                        x,
                    });
                }
                plan.requests.extend_from_slice(sub.requests());
                plan.csvs.push(CsvRecipe::Sweep {
                    name: csv_name(prefix),
                    app: app.name(),
                    x_label,
                    curves,
                });
            }
        }
    }
    if plan.requests.is_empty() {
        return Err("plan resolves to no requests".to_string());
    }
    Ok(plan)
}

/// Folds per-request outcomes back into the plan's CSV artifacts,
/// skipping failed points exactly as the direct `repro` path does.
/// `outcomes` is parallel to `plan.requests`; a `None` slot (a point
/// still pending, only possible for cancelled jobs) is treated as failed.
pub fn assemble_csvs(plan: &JobPlan, outcomes: &[Option<RunOutcome>]) -> Vec<(String, String)> {
    let result_at = |i: usize| {
        outcomes
            .get(i)
            .and_then(|o| o.as_ref())
            .and_then(|o| o.result())
    };
    plan.csvs
        .iter()
        .map(|recipe| match recipe {
            CsvRecipe::Breakdown { name, app, indices } => {
                let results: Vec<_> = indices
                    .iter()
                    .filter_map(|&i| result_at(i).cloned())
                    .collect();
                (
                    name.clone(),
                    report::breakdown_csv(app, &results, &plan.cfg),
                )
            }
            CsvRecipe::Sweep {
                name,
                app,
                x_label,
                curves,
            } => {
                let sweeps: Vec<Sweep> = curves
                    .iter()
                    .map(|(mech, pts)| Sweep {
                        app,
                        mechanism: *mech,
                        points: pts
                            .iter()
                            .filter_map(|&(x, i)| {
                                result_at(i).map(|r| SweepPoint {
                                    x,
                                    result: r.clone(),
                                })
                            })
                            .collect(),
                    })
                    .collect();
                (name.clone(), report::sweep_csv(x_label, &sweeps))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsense_apps::Scale;
    use commsense_core::experiment::base_comparison_requests;
    use commsense_core::store::ResultStore;

    fn spec(figure: Figure, apps: &[&str], mechs: &[&str]) -> PlanSpec {
        PlanSpec {
            figure,
            scale: Scale::Small,
            apps: apps.iter().map(|s| s.to_string()).collect(),
            mechanisms: mechs.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn fig4_matches_base_comparison_requests() {
        let plan = resolve(&spec(Figure::Fig4, &["em3d"], &[])).unwrap();
        let cfg = MachineConfig::alewife();
        let direct = base_comparison_requests(&suite(Scale::Small)[0], &cfg);
        assert_eq!(plan.requests.len(), direct.len());
        for (a, b) in plan.requests.iter().zip(&direct) {
            assert_eq!(
                ResultStore::request_key(a),
                ResultStore::request_key(b),
                "service and direct fig4 requests must hash identically"
            );
        }
    }

    #[test]
    fn fig8_matches_direct_plan() {
        let app = &suite(Scale::Small)[0];
        let cfg = MachineConfig::alewife();
        let direct = bisection_plan(app, &Mechanism::ALL, &cfg, &FIG8_CONSUMED, FIG8_MSG_BYTES);
        let plan = resolve(&spec(Figure::Fig8, &["EM3D"], &[])).unwrap();
        assert_eq!(plan.requests.len(), direct.requests().len());
        for (a, b) in plan.requests.iter().zip(direct.requests()) {
            assert_eq!(ResultStore::request_key(a), ResultStore::request_key(b));
        }
        match &plan.csvs[0] {
            CsvRecipe::Sweep {
                name,
                x_label,
                curves,
                ..
            } => {
                assert_eq!(name, "fig8_em3d.csv");
                assert_eq!(*x_label, "bytes_per_cycle");
                assert_eq!(curves.len(), Mechanism::ALL.len());
            }
            other => panic!("expected sweep recipe, got {other:?}"),
        }
    }

    #[test]
    fn mechanism_filter_is_canonicalized() {
        let a = resolve(&spec(Figure::Fig4, &["EM3D"], &["mp-poll", "sm"])).unwrap();
        let b = resolve(&spec(Figure::Fig4, &["EM3D"], &["sm", "mp-poll"])).unwrap();
        let keys = |p: &JobPlan| {
            p.requests
                .iter()
                .map(ResultStore::request_key)
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&a), keys(&b));
        assert_eq!(a.meta[0].mechanism, Mechanism::SharedMem);
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(resolve(&spec(Figure::Fig4, &["SPICE"], &[])).is_err());
        assert!(resolve(&spec(Figure::Fig4, &[], &["rdma"])).is_err());
    }
}
