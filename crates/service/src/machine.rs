//! The pure service state machine: protocol events in, IO actions out.
//!
//! All policy lives here — submission validation, request-level
//! deduplication (including in-flight dedup across concurrent clients),
//! progress fan-out, cancellation, drain-on-shutdown — with no sockets,
//! no threads, and no clocks, so every behaviour is table-testable (see
//! `tests/machine.rs`). The TCP shell ([`crate::shell`]) only moves bytes
//! and runs simulations; it makes no decisions.
//!
//! Deduplication is keyed on [`ResultStore::request_key`], the same
//! 128-bit canonical-encoding hash the persistent store shards records
//! by. A request is scheduled at most once per daemon lifetime: a second
//! job (from any client) wanting a point that is already running simply
//! subscribes to the existing run and is reported `inflight` when it
//! completes.

use std::collections::HashMap;

use commsense_core::engine::{RunOutcome, RunRequest};
use commsense_core::store::ResultStore;

use crate::plan::{self, JobPlan};
use crate::protocol::{ClientMsg, JobStats, ServerMsg, ServiceStats, Source};

/// Identifies a client connection (assigned by the shell).
pub type ClientId = u64;
/// Identifies a scheduled run (an index into the machine's run table).
pub type RunId = usize;

/// An input to the machine, produced by the shell's IO threads.
#[derive(Debug)]
pub enum Event {
    /// A client connected.
    Connected(ClientId),
    /// A client sent one protocol line.
    Line(ClientId, String),
    /// A client's connection closed (EOF or error). Duplicate
    /// disconnects for the same client are tolerated.
    Disconnected(ClientId),
    /// A worker finished executing a run.
    RunDone {
        /// The run that completed.
        run: RunId,
        /// How it ended.
        outcome: RunOutcome,
    },
}

/// An output of the machine, executed by the shell.
#[derive(Debug)]
pub enum Action {
    /// Write one protocol line to a client.
    Send(ClientId, String),
    /// Hand a request to the worker pool; the shell must eventually feed
    /// back a matching [`Event::RunDone`].
    Start {
        /// The run id to echo back.
        run: RunId,
        /// The request to execute.
        request: RunRequest,
    },
    /// Close a client connection.
    Close(ClientId),
    /// Stop the daemon: every in-flight run has finished and the drain
    /// requested by a `shutdown` message is complete.
    Stop,
}

#[derive(Debug)]
enum RunState {
    Running,
    Done(RunOutcome),
}

#[derive(Debug)]
struct RunSlot {
    state: RunState,
}

#[derive(Debug)]
struct Job {
    client: ClientId,
    id: String,
    plan: JobPlan,
    /// Per-request run ids, parallel to `plan.requests`.
    runs: Vec<RunId>,
    /// Whether this job created the run (false = in-flight dedup hit).
    started_here: Vec<bool>,
    outcomes: Vec<Option<RunOutcome>>,
    done: usize,
    cancelled: bool,
    finished: bool,
}

impl Job {
    fn stats(&self) -> JobStats {
        let mut s = JobStats {
            total: self.plan.requests.len(),
            ..JobStats::default()
        };
        for i in 0..self.plan.requests.len() {
            match (&self.outcomes[i], self.started_here[i]) {
                (Some(RunOutcome::Failed { .. }), _) | (None, _) => s.failed += 1,
                (Some(_), false) => s.inflight_hits += 1,
                (Some(o), true) if o.is_cached() => s.store_hits += 1,
                (Some(_), true) => s.simulated += 1,
            }
        }
        s
    }
}

/// The pure sweep-service state machine. Feed it [`Event`]s, execute the
/// [`Action`]s it returns; it never blocks and never performs IO.
#[derive(Debug, Default)]
pub struct ServiceMachine {
    clients: Vec<ClientId>,
    runs: Vec<RunSlot>,
    by_key: HashMap<u128, RunId>,
    jobs: Vec<Job>,
    draining: bool,
    stopped: bool,
    jobs_done: usize,
    simulated: usize,
    store_hits: usize,
    inflight_hits: usize,
}

impl ServiceMachine {
    /// A fresh machine with no clients, runs, or jobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a `shutdown` has been requested and the machine is
    /// refusing new submissions while in-flight runs drain.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// A statistics snapshot (what a `stats` request reports).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            clients: self.clients.len(),
            jobs_active: self.jobs.iter().filter(|j| !j.finished).count(),
            jobs_done: self.jobs_done,
            unique_runs: self.runs.len(),
            runs_running: self
                .runs
                .iter()
                .filter(|r| matches!(r.state, RunState::Running))
                .count(),
            simulated: self.simulated,
            store_hits: self.store_hits,
            inflight_hits: self.inflight_hits,
        }
    }

    /// Processes one event, returning the actions the shell must execute
    /// (in order).
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        let mut actions = Vec::new();
        match event {
            Event::Connected(c) => {
                if !self.clients.contains(&c) {
                    self.clients.push(c);
                }
            }
            Event::Disconnected(c) => {
                self.clients.retain(|&x| x != c);
                // A vanished client can't receive progress or results:
                // cancel its jobs. Runs it started keep executing — other
                // jobs may be subscribed, and the store keeps the result.
                for j in self.jobs.iter_mut().filter(|j| j.client == c) {
                    if !j.finished {
                        j.cancelled = true;
                        j.finished = true;
                    }
                }
            }
            Event::Line(c, line) => match ClientMsg::parse(&line) {
                Ok(msg) => self.handle_msg(c, msg, &mut actions),
                Err(message) => actions.push(Action::Send(
                    c,
                    ServerMsg::Error { id: None, message }.line(),
                )),
            },
            Event::RunDone { run, outcome } => self.handle_run_done(run, outcome, &mut actions),
        }
        self.maybe_stop(&mut actions);
        actions
    }

    fn handle_msg(&mut self, c: ClientId, msg: ClientMsg, actions: &mut Vec<Action>) {
        match msg {
            ClientMsg::Submit { id, plan } => {
                let reject = |message: String| {
                    Action::Send(
                        c,
                        ServerMsg::Error {
                            id: Some(id.clone()),
                            message,
                        }
                        .line(),
                    )
                };
                if self.draining {
                    actions.push(reject("daemon is shutting down".to_string()));
                    return;
                }
                if self
                    .jobs
                    .iter()
                    .any(|j| j.client == c && j.id == id && !j.finished)
                {
                    actions.push(reject(format!("job id {id:?} is already active")));
                    return;
                }
                let plan = match plan::resolve(&plan) {
                    Ok(p) => p,
                    Err(message) => {
                        actions.push(reject(message));
                        return;
                    }
                };
                let total = plan.requests.len();
                let mut runs = Vec::with_capacity(total);
                let mut started_here = Vec::with_capacity(total);
                for req in &plan.requests {
                    let key = ResultStore::request_key(req);
                    match self.by_key.get(&key) {
                        Some(&run) => {
                            self.inflight_hits += 1;
                            runs.push(run);
                            started_here.push(false);
                        }
                        None => {
                            let run = self.runs.len();
                            self.runs.push(RunSlot {
                                state: RunState::Running,
                            });
                            self.by_key.insert(key, run);
                            actions.push(Action::Start {
                                run,
                                request: req.clone(),
                            });
                            runs.push(run);
                            started_here.push(true);
                        }
                    }
                }
                self.jobs.push(Job {
                    client: c,
                    id: id.clone(),
                    plan,
                    runs,
                    started_here,
                    outcomes: vec![None; total],
                    done: 0,
                    cancelled: false,
                    finished: false,
                });
                actions.push(Action::Send(c, ServerMsg::Accepted { id, total }.line()));
                // Points whose run already completed (an earlier job ran
                // them) resolve immediately, in plan order.
                let job = self.jobs.len() - 1;
                for i in 0..total {
                    let run = self.jobs[job].runs[i];
                    if self.jobs[job].outcomes[i].is_none() {
                        if let RunState::Done(outcome) = &self.runs[run].state {
                            let outcome = outcome.clone();
                            self.record_outcome(job, i, outcome, actions);
                        }
                    }
                }
            }
            ClientMsg::Cancel { id } => {
                match self
                    .jobs
                    .iter_mut()
                    .find(|j| j.client == c && j.id == id && !j.finished)
                {
                    Some(j) => {
                        // The job stops reporting immediately; runs it
                        // started keep executing and stay sharable.
                        j.cancelled = true;
                        j.finished = true;
                        actions.push(Action::Send(c, ServerMsg::Cancelled { id }.line()));
                    }
                    None => actions.push(Action::Send(
                        c,
                        ServerMsg::Error {
                            id: Some(id.clone()),
                            message: format!("no active job {id:?}"),
                        }
                        .line(),
                    )),
                }
            }
            ClientMsg::Stats => {
                actions.push(Action::Send(c, ServerMsg::Stats(self.stats()).line()));
            }
            ClientMsg::Shutdown => {
                self.draining = true;
                for &client in &self.clients {
                    actions.push(Action::Send(client, ServerMsg::Stopping.line()));
                }
            }
        }
    }

    fn handle_run_done(&mut self, run: RunId, outcome: RunOutcome, actions: &mut Vec<Action>) {
        assert!(
            matches!(self.runs[run].state, RunState::Running),
            "run {run} completed twice"
        );
        match &outcome {
            RunOutcome::Done { cached: true, .. } => self.store_hits += 1,
            RunOutcome::Done { cached: false, .. } => self.simulated += 1,
            RunOutcome::Failed { .. } => {}
        }
        self.runs[run].state = RunState::Done(outcome.clone());
        for job in 0..self.jobs.len() {
            for i in 0..self.jobs[job].runs.len() {
                if self.jobs[job].runs[i] == run && self.jobs[job].outcomes[i].is_none() {
                    self.record_outcome(job, i, outcome.clone(), actions);
                }
            }
        }
    }

    /// Records `outcome` for point `i` of `job`, emitting its progress
    /// line and, when it was the last point, the job's `done` line.
    fn record_outcome(
        &mut self,
        job: usize,
        i: usize,
        outcome: RunOutcome,
        actions: &mut Vec<Action>,
    ) {
        let j = &mut self.jobs[job];
        j.outcomes[i] = Some(outcome);
        j.done += 1;
        let total = j.plan.requests.len();
        let last = j.done == total;
        // A cancelled (or disconnected) job still tracks completion so
        // its bookkeeping stays consistent, but reports nothing.
        if !j.cancelled {
            let meta = &j.plan.meta[i];
            let source = if !j.started_here[i] {
                Source::Inflight
            } else if j.outcomes[i].as_ref().is_some_and(|o| o.is_cached()) {
                Source::Store
            } else {
                Source::Simulated
            };
            let msg = match j.outcomes[i].as_ref().expect("just recorded") {
                RunOutcome::Done { result, .. } => ServerMsg::Progress {
                    id: j.id.clone(),
                    done: j.done,
                    total,
                    app: meta.app.to_string(),
                    mech: meta.mechanism.label().to_string(),
                    x: meta.x,
                    runtime_cycles: result.runtime_cycles,
                    source,
                },
                RunOutcome::Failed { message, .. } => ServerMsg::PointFailed {
                    id: j.id.clone(),
                    done: j.done,
                    total,
                    app: meta.app.to_string(),
                    mech: meta.mechanism.label().to_string(),
                    x: meta.x,
                    message: message.clone(),
                },
            };
            actions.push(Action::Send(j.client, msg.line()));
            if last {
                let csvs = plan::assemble_csvs(&j.plan, &j.outcomes);
                actions.push(Action::Send(
                    j.client,
                    ServerMsg::Done {
                        id: j.id.clone(),
                        stats: j.stats(),
                        csvs,
                    }
                    .line(),
                ));
            }
        }
        if last && !self.jobs[job].finished {
            self.jobs[job].finished = true;
            if !self.jobs[job].cancelled {
                self.jobs_done += 1;
            }
        }
    }

    fn maybe_stop(&mut self, actions: &mut Vec<Action>) {
        if self.stopped || !self.draining {
            return;
        }
        let running = self
            .runs
            .iter()
            .any(|r| matches!(r.state, RunState::Running));
        if running {
            return;
        }
        self.stopped = true;
        for &c in &self.clients {
            actions.push(Action::Close(c));
        }
        self.clients.clear();
        actions.push(Action::Stop);
    }
}
