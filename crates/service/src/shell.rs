//! The IO shell around [`ServiceMachine`]: a TCP accept loop, one reader
//! thread per client, and a worker pool, all funnelled into a single
//! event queue the machine consumes.
//!
//! The shell makes no decisions: it translates socket activity into
//! [`Event`]s, executes the [`Action`]s the machine returns, and runs
//! simulations on the worker pool with the engine's full per-request
//! policy ([`Runner::run_one`]: store read/write-through, bounded-retry
//! panic isolation, quarantine). Everything here is plain `std` —
//! blocking reads on reader threads, a non-blocking accept loop polled at
//! a coarse interval, `mpsc` channels — so the daemon needs no runtime.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use commsense_core::engine::{RunRequest, Runner, WorkloadCache};
use commsense_core::store::ResultStore;

use crate::machine::{Action, ClientId, Event, RunId, ServiceMachine};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port; read it
    /// back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing simulations (minimum 1).
    pub workers: usize,
    /// Persistent result store shared by all workers (read-through,
    /// write-through, quarantine), or `None` for in-memory dedup only.
    pub store: Option<Arc<ResultStore>>,
    /// Retries per panicking run (as `Runner::with_retries`).
    pub retries: usize,
    /// Suppress the daemon's stderr log lines.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            store: None,
            retries: 1,
            quiet: false,
        }
    }
}

/// A bound (but not yet running) daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
}

impl Server {
    /// Binds the listening socket. The port is allocated here, so
    /// callers can read [`Server::local_addr`] (and publish it) before
    /// the blocking [`Server::run`] starts.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server { listener, cfg })
    }

    /// The bound address (resolves `:0` to the allocated port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a `shutdown` request drains it. Returns
    /// after every in-flight run has finished and all clients are
    /// closed; the listening port is released on return.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, cfg } = self;
        let (events_tx, events_rx) = channel::<Event>();
        let (work_tx, work_rx) = channel::<(RunId, RunRequest)>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Arc<Mutex<HashMap<ClientId, TcpStream>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let log = |line: String| {
            if !cfg.quiet {
                eprintln!("[serve] {line}");
            }
        };

        // Worker pool: each worker owns a serial Runner (the pool is the
        // parallelism) and shares one workload cache, so a workload is
        // prepared once per daemon lifetime however many jobs need it.
        let mut runner = Runner::serial().with_retries(cfg.retries);
        if let Some(store) = &cfg.store {
            runner = runner.with_store(store.clone());
        }
        let wcache = Arc::new(Mutex::new(WorkloadCache::new()));
        for _ in 0..cfg.workers.max(1) {
            let work_rx = work_rx.clone();
            let events_tx = events_tx.clone();
            let runner = runner.clone();
            let wcache = wcache.clone();
            thread::spawn(move || loop {
                let next = work_rx.lock().expect("work queue poisoned").recv();
                let Ok((run, req)) = next else { break };
                // Preparation holds the cache lock (it is a &mut
                // structure); simulations dominate, and a prepared
                // workload is returned as a cheap Arc-backed clone.
                let w = wcache
                    .lock()
                    .expect("workload cache poisoned")
                    .get(&req.spec, req.cfg.nodes);
                let outcome = runner.run_one(&req, &w);
                if events_tx.send(Event::RunDone { run, outcome }).is_err() {
                    break;
                }
            });
        }

        // Accept loop: non-blocking so it can observe the stop flag and
        // release the port promptly after drain.
        listener.set_nonblocking(true)?;
        {
            let events_tx = events_tx.clone();
            let writers = writers.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                let mut next_id: ClientId = 1;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let id = next_id;
                            next_id += 1;
                            stream.set_nodelay(true).ok();
                            let Ok(write_half) = stream.try_clone() else {
                                continue;
                            };
                            writers
                                .lock()
                                .expect("writer table poisoned")
                                .insert(id, write_half);
                            if events_tx.send(Event::Connected(id)).is_err() {
                                break;
                            }
                            spawn_reader(id, stream, events_tx.clone());
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        // The machine loop: single-threaded, so action execution is
        // totally ordered and per-client line order is preserved.
        let mut machine = ServiceMachine::new();
        loop {
            let Ok(event) = events_rx.recv() else { break };
            match &event {
                Event::Connected(c) => log(format!("client {c} connected")),
                Event::Disconnected(c) => log(format!("client {c} disconnected")),
                _ => {}
            }
            let mut stop_now = false;
            for action in machine.handle(event) {
                match action {
                    Action::Send(c, line) => {
                        let failed = {
                            let mut writers = writers.lock().expect("writer table poisoned");
                            match writers.get_mut(&c) {
                                Some(s) => writeln!(s, "{line}").is_err(),
                                None => false,
                            }
                        };
                        if failed {
                            // The reader thread will also notice, but the
                            // machine tolerates duplicate disconnects and
                            // a dead writer should stop receiving now.
                            writers.lock().expect("writer table poisoned").remove(&c);
                            events_tx.send(Event::Disconnected(c)).ok();
                        }
                    }
                    Action::Start { run, request } => {
                        work_tx.send((run, request)).ok();
                    }
                    Action::Close(c) => {
                        if let Some(s) = writers.lock().expect("writer table poisoned").remove(&c) {
                            s.shutdown(Shutdown::Both).ok();
                        }
                    }
                    Action::Stop => stop_now = true,
                }
            }
            if stop_now {
                break;
            }
        }
        log("drained, stopping".to_string());
        stop.store(true, Ordering::SeqCst);
        // Dropping the work sender ends idle workers; the accept thread
        // exits on its next poll and releases the listener.
        drop(work_tx);
        Ok(())
    }
}

/// Reads protocol lines from one client until EOF/error, forwarding each
/// as an event; always ends with a `Disconnected` event.
fn spawn_reader(id: ClientId, stream: TcpStream, events: Sender<Event>) {
    thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if events.send(Event::Line(id, trimmed.to_string())).is_err() {
                        return;
                    }
                }
            }
        }
        events.send(Event::Disconnected(id)).ok();
    });
}
