//! Reference client helpers — what `repro submit` is built from.
//!
//! Each helper opens its own connection, performs one protocol exchange,
//! and returns typed results; callers stream progress through a callback
//! so a CLI can print lines as they arrive.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{ClientMsg, JobStats, PlanSpec, ServerMsg, ServiceStats};

/// What a completed submission returned.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Total points in the resolved plan (from the `accepted` line).
    pub total: usize,
    /// Progress lines received (successful and failed points).
    pub progress: usize,
    /// The job's completion statistics.
    pub stats: JobStats,
    /// `(file name, contents)` CSV artifacts.
    pub csvs: Vec<(String, String)>,
    /// Messages of failed points, in arrival order.
    pub failures: Vec<String>,
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let reader = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    Ok((stream, BufReader::new(reader)))
}

fn send(stream: &mut TcpStream, msg: &ClientMsg) -> Result<(), String> {
    writeln!(stream, "{}", msg.line()).map_err(|e| format!("write failed: {e}"))
}

fn next_msg(reader: &mut BufReader<TcpStream>) -> Result<Option<ServerMsg>, String> {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Err(e) => return Err(format!("read failed: {e}")),
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                return ServerMsg::parse(trimmed).map(Some);
            }
        }
    }
}

/// Submits `plan` under `id` and blocks until the job finishes, invoking
/// `on_msg` for every server line (acceptance, each progress line, the
/// final result) as it arrives.
pub fn submit(
    addr: &str,
    id: &str,
    plan: &PlanSpec,
    mut on_msg: impl FnMut(&ServerMsg),
) -> Result<SubmitOutcome, String> {
    let (mut stream, mut reader) = connect(addr)?;
    send(
        &mut stream,
        &ClientMsg::Submit {
            id: id.to_string(),
            plan: plan.clone(),
        },
    )?;
    let mut out = SubmitOutcome {
        total: 0,
        progress: 0,
        stats: JobStats::default(),
        csvs: Vec::new(),
        failures: Vec::new(),
    };
    loop {
        let Some(msg) = next_msg(&mut reader)? else {
            return Err("connection closed before the job completed".to_string());
        };
        on_msg(&msg);
        match msg {
            ServerMsg::Accepted { total, .. } => out.total = total,
            ServerMsg::Progress { .. } => out.progress += 1,
            ServerMsg::PointFailed { message, .. } => {
                out.progress += 1;
                out.failures.push(message);
            }
            ServerMsg::Done { stats, csvs, .. } => {
                out.stats = stats;
                out.csvs = csvs;
                return Ok(out);
            }
            ServerMsg::Error { message, .. } => return Err(message),
            ServerMsg::Cancelled { .. } => return Err("job was cancelled".to_string()),
            ServerMsg::Stopping => return Err("daemon is shutting down; job abandoned".to_string()),
            ServerMsg::Stats(_) => {}
        }
    }
}

/// Fetches a daemon statistics snapshot.
pub fn fetch_stats(addr: &str) -> Result<ServiceStats, String> {
    let (mut stream, mut reader) = connect(addr)?;
    send(&mut stream, &ClientMsg::Stats)?;
    match next_msg(&mut reader)? {
        Some(ServerMsg::Stats(st)) => Ok(st),
        Some(other) => Err(format!("unexpected reply: {other:?}")),
        None => Err("connection closed".to_string()),
    }
}

/// Asks the daemon to drain and exit. Returns once the daemon
/// acknowledges with `stopping` (in-flight runs may still be finishing).
pub fn request_shutdown(addr: &str) -> Result<(), String> {
    let (mut stream, mut reader) = connect(addr)?;
    send(&mut stream, &ClientMsg::Shutdown)?;
    match next_msg(&mut reader)? {
        Some(ServerMsg::Stopping) | None => Ok(()),
        Some(other) => Err(format!("unexpected reply: {other:?}")),
    }
}
