//! The wire protocol: line-delimited JSON over a local TCP socket.
//!
//! Every message is a single line holding one `type`-tagged JSON object.
//! Parsing reuses the repo's hand-rolled [`commsense_core::json`] parser;
//! emission builds each line by hand around [`push_escaped`], so the
//! protocol has no dependency beyond `commsense-core`. Both directions
//! live here — [`ClientMsg`] is what the daemon parses, [`ServerMsg`] is
//! what the reference client parses — which keeps the codec symmetric and
//! testable without a socket.

use commsense_apps::Scale;
use commsense_core::json::{push_escaped, Json};

/// The figure whose sweep plan a submission requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 4: per-application mechanism breakdown on the base machine.
    Fig4,
    /// Figure 8: execution time vs consumed bisection bandwidth.
    Fig8,
    /// Figure 10: latency emulation via context switching.
    Fig10,
}

impl Figure {
    /// The wire label (`fig4`, `fig8`, `fig10`).
    pub fn label(self) -> &'static str {
        match self {
            Figure::Fig4 => "fig4",
            Figure::Fig8 => "fig8",
            Figure::Fig10 => "fig10",
        }
    }

    /// Parses a wire label.
    pub fn from_label(label: &str) -> Option<Figure> {
        match label {
            "fig4" => Some(Figure::Fig4),
            "fig8" => Some(Figure::Fig8),
            "fig10" => Some(Figure::Fig10),
            _ => None,
        }
    }
}

/// Where a completed point's result came from, as reported in progress
/// lines: freshly simulated by this job, replayed from the persistent
/// store, or deduplicated against a run another in-process job already
/// started (or finished).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Simulated by a worker on behalf of this job.
    Simulated,
    /// Read through from the persistent result store.
    Store,
    /// Shared with a run some other job in this daemon owns.
    Inflight,
}

impl Source {
    /// The wire label (`simulated`, `store`, `inflight`).
    pub fn label(self) -> &'static str {
        match self {
            Source::Simulated => "simulated",
            Source::Store => "store",
            Source::Inflight => "inflight",
        }
    }

    /// Parses a wire label.
    pub fn from_label(label: &str) -> Option<Source> {
        match label {
            "simulated" => Some(Source::Simulated),
            "store" => Some(Source::Store),
            "inflight" => Some(Source::Inflight),
            _ => None,
        }
    }
}

/// A sweep-plan specification as sent on the wire: everything is a name,
/// resolved (and validated) by the daemon against the same suite and plan
/// builders the `repro` binary uses directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpec {
    /// Which figure's plan to run.
    pub figure: Figure,
    /// Workload sizing.
    pub scale: Scale,
    /// Application names (`EM3D`, `UNSTRUC`, `ICCG`, `MOLDYN`,
    /// case-insensitive); empty means the whole suite.
    pub apps: Vec<String>,
    /// Mechanism labels (`sm`, `sm+pf`, `mp-int`, `mp-poll`, `bulk`);
    /// empty means every mechanism.
    pub mechanisms: Vec<String>,
}

/// A message from a client to the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Submit a sweep plan under a client-chosen job id.
    Submit {
        /// Client-chosen job id, echoed in every response line.
        id: String,
        /// The plan to resolve and run.
        plan: PlanSpec,
    },
    /// Cancel a previously submitted job (runs already started keep
    /// running — their results stay sharable — but the job stops
    /// reporting).
    Cancel {
        /// The job id to cancel.
        id: String,
    },
    /// Ask for a one-line daemon statistics snapshot.
    Stats,
    /// Ask the daemon to drain: no new submissions, finish in-flight
    /// runs, then exit.
    Shutdown,
}

impl ClientMsg {
    /// Serializes the message as one protocol line (no trailing newline).
    pub fn line(&self) -> String {
        let mut s = String::new();
        match self {
            ClientMsg::Submit { id, plan } => {
                s.push_str("{\"type\":\"submit\",\"id\":");
                push_escaped(&mut s, id);
                s.push_str(",\"figure\":");
                push_escaped(&mut s, plan.figure.label());
                s.push_str(",\"scale\":");
                push_escaped(&mut s, plan.scale.label());
                s.push_str(",\"apps\":[");
                for (i, a) in plan.apps.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_escaped(&mut s, a);
                }
                s.push_str("],\"mechanisms\":[");
                for (i, m) in plan.mechanisms.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_escaped(&mut s, m);
                }
                s.push_str("]}");
            }
            ClientMsg::Cancel { id } => {
                s.push_str("{\"type\":\"cancel\",\"id\":");
                push_escaped(&mut s, id);
                s.push('}');
            }
            ClientMsg::Stats => s.push_str("{\"type\":\"stats\"}"),
            ClientMsg::Shutdown => s.push_str("{\"type\":\"shutdown\"}"),
        }
        s
    }

    /// Parses one protocol line.
    pub fn parse(line: &str) -> Result<ClientMsg, String> {
        let v = Json::parse(line)?;
        let ty = str_field(&v, "type")?;
        match ty.as_str() {
            "submit" => {
                let id = str_field(&v, "id")?;
                let figure = str_field(&v, "figure")?;
                let figure = Figure::from_label(&figure)
                    .ok_or_else(|| format!("unknown figure {figure:?} (fig4|fig8|fig10)"))?;
                let scale = match v.get("scale") {
                    None => Scale::Bench,
                    Some(s) => {
                        let s = s.as_str().ok_or("field 'scale' must be a string")?;
                        Scale::from_label(s)
                            .ok_or_else(|| format!("unknown scale {s:?} (bench|paper|small)"))?
                    }
                };
                Ok(ClientMsg::Submit {
                    id,
                    plan: PlanSpec {
                        figure,
                        scale,
                        apps: str_list(&v, "apps")?,
                        mechanisms: str_list(&v, "mechanisms")?,
                    },
                })
            }
            "cancel" => Ok(ClientMsg::Cancel {
                id: str_field(&v, "id")?,
            }),
            "stats" => Ok(ClientMsg::Stats),
            "shutdown" => Ok(ClientMsg::Shutdown),
            other => Err(format!("unknown client message type {other:?}")),
        }
    }
}

/// Per-job completion statistics, carried on the final `done` line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Points in the job.
    pub total: usize,
    /// Points simulated by workers on behalf of this job.
    pub simulated: usize,
    /// Points replayed from the persistent store.
    pub store_hits: usize,
    /// Points deduplicated against runs other jobs own.
    pub inflight_hits: usize,
    /// Points that failed (quarantined or exhausted retries).
    pub failed: usize,
}

/// A daemon-wide statistics snapshot, carried on a `stats` line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Currently connected clients.
    pub clients: usize,
    /// Jobs accepted and not yet finished.
    pub jobs_active: usize,
    /// Jobs completed (cancelled jobs are not counted).
    pub jobs_done: usize,
    /// Distinct requests ever scheduled (the dedup denominator).
    pub unique_runs: usize,
    /// Requests currently executing or queued on the worker pool.
    pub runs_running: usize,
    /// Unique runs that were freshly simulated.
    pub simulated: usize,
    /// Unique runs replayed from the persistent store.
    pub store_hits: usize,
    /// Point-level dedup hits: a job referenced a run another job owns.
    pub inflight_hits: usize,
}

/// A message from the daemon to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// A submission was validated and enqueued.
    Accepted {
        /// The job id.
        id: String,
        /// Total points in the resolved plan.
        total: usize,
    },
    /// One point of a job completed successfully.
    Progress {
        /// The job id.
        id: String,
        /// Points completed so far (including failed ones).
        done: usize,
        /// Total points in the job.
        total: usize,
        /// Application name.
        app: String,
        /// Mechanism label.
        mech: String,
        /// The point's swept x value (0 for Figure 4).
        x: f64,
        /// Measured runtime in processor cycles.
        runtime_cycles: u64,
        /// Where the result came from.
        source: Source,
    },
    /// One point of a job failed (quarantined or exhausted retries).
    PointFailed {
        /// The job id.
        id: String,
        /// Points completed so far (including this one).
        done: usize,
        /// Total points in the job.
        total: usize,
        /// Application name.
        app: String,
        /// Mechanism label.
        mech: String,
        /// The point's swept x value.
        x: f64,
        /// The failure message.
        message: String,
    },
    /// A job finished: statistics plus the assembled CSV artifacts
    /// (byte-identical to what a direct `repro` run writes).
    Done {
        /// The job id.
        id: String,
        /// Per-job completion statistics.
        stats: JobStats,
        /// `(file name, contents)` pairs for each CSV of the plan.
        csvs: Vec<(String, String)>,
    },
    /// A job was cancelled.
    Cancelled {
        /// The job id.
        id: String,
    },
    /// A daemon statistics snapshot (response to a `stats` request).
    Stats(ServiceStats),
    /// A request was rejected, or a mid-job error occurred.
    Error {
        /// The job id, when the error concerns a specific job.
        id: Option<String>,
        /// What went wrong.
        message: String,
    },
    /// The daemon is draining and will exit once in-flight runs finish.
    Stopping,
}

impl ServerMsg {
    /// Serializes the message as one protocol line (no trailing newline).
    pub fn line(&self) -> String {
        let mut s = String::new();
        match self {
            ServerMsg::Accepted { id, total } => {
                s.push_str("{\"type\":\"accepted\",\"id\":");
                push_escaped(&mut s, id);
                s.push_str(&format!(",\"total\":{total}}}"));
            }
            ServerMsg::Progress {
                id,
                done,
                total,
                app,
                mech,
                x,
                runtime_cycles,
                source,
            } => {
                s.push_str("{\"type\":\"progress\",\"id\":");
                push_escaped(&mut s, id);
                s.push_str(&format!(",\"done\":{done},\"total\":{total},\"app\":"));
                push_escaped(&mut s, app);
                s.push_str(",\"mech\":");
                push_escaped(&mut s, mech);
                s.push_str(&format!(
                    ",\"x\":{x},\"runtime_cycles\":{runtime_cycles},\"source\":"
                ));
                push_escaped(&mut s, source.label());
                s.push('}');
            }
            ServerMsg::PointFailed {
                id,
                done,
                total,
                app,
                mech,
                x,
                message,
            } => {
                s.push_str("{\"type\":\"point-failed\",\"id\":");
                push_escaped(&mut s, id);
                s.push_str(&format!(",\"done\":{done},\"total\":{total},\"app\":"));
                push_escaped(&mut s, app);
                s.push_str(",\"mech\":");
                push_escaped(&mut s, mech);
                s.push_str(&format!(",\"x\":{x},\"message\":"));
                push_escaped(&mut s, message);
                s.push('}');
            }
            ServerMsg::Done { id, stats, csvs } => {
                s.push_str("{\"type\":\"done\",\"id\":");
                push_escaped(&mut s, id);
                s.push_str(&format!(
                    ",\"total\":{},\"simulated\":{},\"store_hits\":{},\
                     \"inflight_hits\":{},\"failed\":{},\"csv\":[",
                    stats.total,
                    stats.simulated,
                    stats.store_hits,
                    stats.inflight_hits,
                    stats.failed
                ));
                for (i, (name, data)) in csvs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"name\":");
                    push_escaped(&mut s, name);
                    s.push_str(",\"data\":");
                    push_escaped(&mut s, data);
                    s.push('}');
                }
                s.push_str("]}");
            }
            ServerMsg::Cancelled { id } => {
                s.push_str("{\"type\":\"cancelled\",\"id\":");
                push_escaped(&mut s, id);
                s.push('}');
            }
            ServerMsg::Stats(st) => {
                s.push_str(&format!(
                    "{{\"type\":\"stats\",\"clients\":{},\"jobs_active\":{},\
                     \"jobs_done\":{},\"unique_runs\":{},\"runs_running\":{},\
                     \"simulated\":{},\"store_hits\":{},\"inflight_hits\":{}}}",
                    st.clients,
                    st.jobs_active,
                    st.jobs_done,
                    st.unique_runs,
                    st.runs_running,
                    st.simulated,
                    st.store_hits,
                    st.inflight_hits
                ));
            }
            ServerMsg::Error { id, message } => {
                s.push_str("{\"type\":\"error\"");
                if let Some(id) = id {
                    s.push_str(",\"id\":");
                    push_escaped(&mut s, id);
                }
                s.push_str(",\"message\":");
                push_escaped(&mut s, message);
                s.push('}');
            }
            ServerMsg::Stopping => s.push_str("{\"type\":\"stopping\"}"),
        }
        s
    }

    /// Parses one protocol line.
    pub fn parse(line: &str) -> Result<ServerMsg, String> {
        let v = Json::parse(line)?;
        let ty = str_field(&v, "type")?;
        match ty.as_str() {
            "accepted" => Ok(ServerMsg::Accepted {
                id: str_field(&v, "id")?,
                total: usize_field(&v, "total")?,
            }),
            "progress" => {
                let source = str_field(&v, "source")?;
                Ok(ServerMsg::Progress {
                    id: str_field(&v, "id")?,
                    done: usize_field(&v, "done")?,
                    total: usize_field(&v, "total")?,
                    app: str_field(&v, "app")?,
                    mech: str_field(&v, "mech")?,
                    x: f64_field(&v, "x")?,
                    runtime_cycles: u64_field(&v, "runtime_cycles")?,
                    source: Source::from_label(&source)
                        .ok_or_else(|| format!("unknown source {source:?}"))?,
                })
            }
            "point-failed" => Ok(ServerMsg::PointFailed {
                id: str_field(&v, "id")?,
                done: usize_field(&v, "done")?,
                total: usize_field(&v, "total")?,
                app: str_field(&v, "app")?,
                mech: str_field(&v, "mech")?,
                x: f64_field(&v, "x")?,
                message: str_field(&v, "message")?,
            }),
            "done" => {
                let stats = JobStats {
                    total: usize_field(&v, "total")?,
                    simulated: usize_field(&v, "simulated")?,
                    store_hits: usize_field(&v, "store_hits")?,
                    inflight_hits: usize_field(&v, "inflight_hits")?,
                    failed: usize_field(&v, "failed")?,
                };
                let arr = v.get("csv").and_then(Json::as_arr).ok_or("missing 'csv'")?;
                let mut csvs = Vec::with_capacity(arr.len());
                for item in arr {
                    csvs.push((str_field(item, "name")?, str_field(item, "data")?));
                }
                Ok(ServerMsg::Done {
                    id: str_field(&v, "id")?,
                    stats,
                    csvs,
                })
            }
            "cancelled" => Ok(ServerMsg::Cancelled {
                id: str_field(&v, "id")?,
            }),
            "stats" => Ok(ServerMsg::Stats(ServiceStats {
                clients: usize_field(&v, "clients")?,
                jobs_active: usize_field(&v, "jobs_active")?,
                jobs_done: usize_field(&v, "jobs_done")?,
                unique_runs: usize_field(&v, "unique_runs")?,
                runs_running: usize_field(&v, "runs_running")?,
                simulated: usize_field(&v, "simulated")?,
                store_hits: usize_field(&v, "store_hits")?,
                inflight_hits: usize_field(&v, "inflight_hits")?,
            })),
            "error" => Ok(ServerMsg::Error {
                id: v.get("id").and_then(Json::as_str).map(str::to_string),
                message: str_field(&v, "message")?,
            }),
            "stopping" => Ok(ServerMsg::Stopping),
            other => Err(format!("unknown server message type {other:?}")),
        }
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field '{key}'"))
}

fn str_list(v: &Json, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(arr) => {
            let arr = arr
                .as_arr()
                .ok_or_else(|| format!("field '{key}' must be an array"))?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("field '{key}' must hold strings"))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_messages_round_trip() {
        let msgs = [
            ClientMsg::Submit {
                id: "job-1".into(),
                plan: PlanSpec {
                    figure: Figure::Fig8,
                    scale: Scale::Small,
                    apps: vec!["EM3D".into()],
                    mechanisms: vec!["sm".into(), "mp-poll".into()],
                },
            },
            ClientMsg::Cancel {
                id: "j\"x\"".into(),
            },
            ClientMsg::Stats,
            ClientMsg::Shutdown,
        ];
        for m in msgs {
            assert_eq!(ClientMsg::parse(&m.line()).unwrap(), m);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let msgs = [
            ServerMsg::Accepted {
                id: "j".into(),
                total: 20,
            },
            ServerMsg::Progress {
                id: "j".into(),
                done: 3,
                total: 20,
                app: "EM3D".into(),
                mech: "sm+pf".into(),
                x: 11.43,
                runtime_cycles: 123_456,
                source: Source::Inflight,
            },
            ServerMsg::PointFailed {
                id: "j".into(),
                done: 4,
                total: 20,
                app: "ICCG".into(),
                mech: "bulk".into(),
                x: 0.0,
                message: "panicked:\n\"deadline\"".into(),
            },
            ServerMsg::Done {
                id: "j".into(),
                stats: JobStats {
                    total: 20,
                    simulated: 10,
                    store_hits: 5,
                    inflight_hits: 5,
                    failed: 0,
                },
                csvs: vec![("fig4_em3d.csv".into(), "a,b\n1,2\n".into())],
            },
            ServerMsg::Cancelled { id: "j".into() },
            ServerMsg::Stats(ServiceStats {
                clients: 2,
                jobs_active: 1,
                jobs_done: 3,
                unique_runs: 40,
                runs_running: 2,
                simulated: 30,
                store_hits: 10,
                inflight_hits: 20,
            }),
            ServerMsg::Error {
                id: None,
                message: "bad line".into(),
            },
            ServerMsg::Error {
                id: Some("j".into()),
                message: "unknown app".into(),
            },
            ServerMsg::Stopping,
        ];
        for m in msgs {
            assert_eq!(
                ServerMsg::parse(&m.line()).unwrap(),
                m,
                "line: {}",
                m.line()
            );
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(ClientMsg::parse("not json").is_err());
        assert!(ClientMsg::parse("{\"type\":\"warp\"}").is_err());
        assert!(ClientMsg::parse("{\"type\":\"submit\",\"id\":\"x\"}").is_err());
        assert!(
            ClientMsg::parse("{\"type\":\"submit\",\"id\":\"x\",\"figure\":\"fig99\"}").is_err()
        );
        assert!(ServerMsg::parse("{\"type\":\"accepted\"}").is_err());
    }
}
