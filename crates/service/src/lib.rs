//! The resident sweep service (ROADMAP item: "serving" the simulator).
//!
//! A daemon (`repro serve`) accepts sweep-plan submissions over a local
//! TCP socket speaking line-delimited JSON (reusing the repo's
//! hand-rolled [`commsense_core::json`] — no serde), validates them
//! against the same plan builders the `repro` binary uses, and shards
//! the resolved [`RunRequest`](commsense_core::engine::RunRequest)s
//! across a worker pool writing through the shared
//! [`ResultStore`](commsense_core::store::ResultStore). Concurrent
//! clients deduplicate at the canonical-request-hash level: a second
//! client asking for a point that is already being simulated subscribes
//! to the in-flight run instead of re-running it.
//!
//! The crate is layered so all policy is pure and table-testable:
//!
//! - [`protocol`] — the wire codec, both directions, no IO;
//! - [`plan`] — name resolution to requests + CSV recipes, no IO;
//! - [`machine`] — the event→action state machine (submission, dedup,
//!   progress fan-out, cancellation, drain), no IO;
//! - [`shell`] — the only IO: sockets, threads, the worker pool;
//! - [`client`] — the reference client `repro submit` is built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod machine;
pub mod plan;
pub mod protocol;
pub mod shell;
