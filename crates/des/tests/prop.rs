//! Property tests: the event queue against a reference model, and RNG
//! distribution sanity.

use commsense_des::{EventQueue, Rng, Time};
use proptest::prelude::*;

proptest! {
    /// The queue pops in exactly the order of a stable sort by time of the
    /// scheduled events (ties by insertion order).
    #[test]
    fn queue_matches_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), i);
        }
        let mut want: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        want.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_ns(), i)).collect();
        prop_assert_eq!(got, want);
    }

    /// Interleaved schedule/pop keeps the never-into-the-past invariant and
    /// loses no events.
    #[test]
    fn interleaved_operation_is_lossless(
        batches in proptest::collection::vec(proptest::collection::vec(0u64..100, 1..10), 1..20)
    ) {
        let mut q = EventQueue::new();
        let mut scheduled = 0usize;
        let mut popped = 0usize;
        let mut base = 0u64;
        for batch in batches {
            for &dt in &batch {
                q.schedule(Time::from_ns(base + dt), scheduled);
                scheduled += 1;
            }
            // Pop half of what's pending.
            for _ in 0..(q.len() / 2) {
                let (t, _) = q.pop().expect("non-empty");
                base = base.max(t.as_ns());
                popped += 1;
            }
        }
        popped += std::iter::from_fn(|| q.pop()).count();
        prop_assert_eq!(popped, scheduled);
    }

    /// gen_range stays in range and hits both halves of any sizable range.
    #[test]
    fn rng_range_is_uniformish(seed in 1u64.., lo in 0u64..1000, span in 2u64..1000) {
        let mut rng = Rng::new(seed);
        let hi = lo + span;
        let mut low_half = 0;
        let n = 400;
        for _ in 0..n {
            let v = rng.gen_range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
            if v < lo + span / 2 {
                low_half += 1;
            }
        }
        // Crude two-sided bound; overwhelmingly satisfied for uniform draws.
        prop_assert!((n / 8..n * 7 / 8).contains(&low_half), "low half {low_half}");
    }

    /// Forked streams do not repeat the parent's next outputs.
    #[test]
    fn rng_forks_are_decorrelated(seed in 1u64..) {
        let mut parent = Rng::new(seed);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        prop_assert_ne!(a, b);
    }
}
