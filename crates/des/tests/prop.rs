//! Property tests: the event queue against a reference model, and RNG
//! distribution sanity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use commsense_des::{EventQueue, Rng, Time};
use proptest::prelude::*;

/// The pre-calendar-queue pending-event set: a binary heap over
/// `(time, seq)` with reversed ordering. Kept here as the reference model
/// the production queue must be pop-for-pop identical to.
struct RefHeap<E> {
    heap: BinaryHeap<RefScheduled<E>>,
    next_seq: u64,
}

struct RefScheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for RefScheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for RefScheduled<E> {}
impl<E> PartialOrd for RefScheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for RefScheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> RefHeap<E> {
    fn new() -> Self {
        RefHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefScheduled { time, seq, event });
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }
}

proptest! {
    /// The calendar queue and the reference heap produce identical pop
    /// sequences on adversarial interleaved schedules: clustered times
    /// with heavy same-instant ties, occasional long jumps (which stress
    /// the instant index), and pops interleaved with scheduling so
    /// inserts land on drained, draining, and brand-new instants.
    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in proptest::collection::vec(
            // (pops before this batch, batch of time offsets)
            (0usize..6, proptest::collection::vec(
                // Repeated arms stand in for weights (the vendored
                // prop_oneof! is unweighted): mostly same-instant ties
                // and dense near-now clusters, some mid-range, and the
                // occasional far jump to a distant new instant.
                prop_oneof![
                    Just(0u64),             // heavy same-instant ties
                    Just(0u64),
                    0u64..3,                // dense near-now cluster
                    0u64..3,
                    0u64..50,               // mid-range
                    1_000u64..100_000,      // far jump: a distant new instant
                ],
                1..20,
            )),
            1..40,
        )
    ) {
        let mut q = EventQueue::new();
        let mut r = RefHeap::new();
        let mut id = 0usize;
        let mut now = 0u64;
        for (pops, batch) in ops {
            for &dt in &batch {
                q.schedule(Time::from_ns(now + dt), id);
                r.schedule(Time::from_ns(now + dt), id);
                id += 1;
            }
            for _ in 0..pops {
                let got = q.pop();
                let want = r.pop();
                prop_assert_eq!(got, want);
                if let Some((t, _)) = got {
                    now = now.max(t.as_ns());
                }
            }
        }
        // Drain both completely: every remaining pop must agree too.
        loop {
            let got = q.pop();
            let want = r.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }


    /// Batched same-instant draining (`pop_instant_into`) consumes the
    /// exact sequence the one-at-a-time reference heap produces, on
    /// adversarial tie-heavy schedules where consuming an event can
    /// schedule follow-ups *at the instant currently being drained* (the
    /// machine's dominant pattern: a protocol handler emitting same-cycle
    /// messages mid-batch). Follow-ups land in a fresh head bucket and
    /// must come out after every event scheduled before them — the FIFO
    /// seq-order tie-break of the PR 2 calendar queue.
    #[test]
    fn batched_draining_matches_reference_heap(
        times in proptest::collection::vec(
            prop_oneof![
                Just(0u64),        // heavy same-instant ties
                Just(0u64),
                0u64..2,           // dense near-zero cluster
                0u64..40,          // mid-range spread
            ],
            1..60,
        ),
        spawn_mod in 2usize..5,
    ) {
        // Consuming event `id` with `id % spawn_mod == 0` schedules two
        // follow-ups: one at the same instant, one a little later. The
        // spawn budget bounds the cascade.
        let cap = 4 * times.len();

        // Batched consumer over the calendar queue.
        let mut q = EventQueue::new();
        for (id, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), id);
        }
        let mut next_id = times.len();
        let mut got = Vec::new();
        let mut buf = std::collections::VecDeque::new();
        while let Some(t) = q.pop_instant_into(&mut buf) {
            while let Some(id) = buf.pop_front() {
                got.push((t, id));
                if id % spawn_mod == 0 && next_id + 1 < cap {
                    q.schedule(t, next_id);
                    q.schedule(t + Time::from_ns(1), next_id + 1);
                    next_id += 2;
                }
            }
        }

        // One-at-a-time consumer over the reference heap, same rule.
        let mut r = RefHeap::new();
        for (id, &t) in times.iter().enumerate() {
            r.schedule(Time::from_ns(t), id);
        }
        let mut next_id = times.len();
        let mut want = Vec::new();
        while let Some((t, id)) = r.pop() {
            want.push((t, id));
            if id % spawn_mod == 0 && next_id + 1 < cap {
                r.schedule(t, next_id);
                r.schedule(t + Time::from_ns(1), next_id + 1);
                next_id += 2;
            }
        }

        prop_assert_eq!(got, want);
    }

    /// The queue pops in exactly the order of a stable sort by time of the
    /// scheduled events (ties by insertion order).
    #[test]
    fn queue_matches_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), i);
        }
        let mut want: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        want.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_ns(), i)).collect();
        prop_assert_eq!(got, want);
    }

    /// Interleaved schedule/pop keeps the never-into-the-past invariant and
    /// loses no events.
    #[test]
    fn interleaved_operation_is_lossless(
        batches in proptest::collection::vec(proptest::collection::vec(0u64..100, 1..10), 1..20)
    ) {
        let mut q = EventQueue::new();
        let mut scheduled = 0usize;
        let mut popped = 0usize;
        let mut base = 0u64;
        for batch in batches {
            for &dt in &batch {
                q.schedule(Time::from_ns(base + dt), scheduled);
                scheduled += 1;
            }
            // Pop half of what's pending.
            for _ in 0..(q.len() / 2) {
                let (t, _) = q.pop().expect("non-empty");
                base = base.max(t.as_ns());
                popped += 1;
            }
        }
        popped += std::iter::from_fn(|| q.pop()).count();
        prop_assert_eq!(popped, scheduled);
    }

    /// gen_range stays in range and hits both halves of any sizable range.
    #[test]
    fn rng_range_is_uniformish(seed in 1u64.., lo in 0u64..1000, span in 2u64..1000) {
        let mut rng = Rng::new(seed);
        let hi = lo + span;
        let mut low_half = 0;
        let n = 400;
        for _ in 0..n {
            let v = rng.gen_range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
            if v < lo + span / 2 {
                low_half += 1;
            }
        }
        // Crude two-sided bound; overwhelmingly satisfied for uniform draws.
        prop_assert!((n / 8..n * 7 / 8).contains(&low_half), "low half {low_half}");
    }

    /// Forked streams do not repeat the parent's next outputs.
    #[test]
    fn rng_forks_are_decorrelated(seed in 1u64..) {
        let mut parent = Rng::new(seed);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        prop_assert_ne!(a, b);
    }
}
