//! Canonical, declaration-order-independent encoding of configuration
//! values, for content-addressed result caching.
//!
//! The persistent result store (`commsense-core`'s `store` module) keys
//! each record by a hash of the run request that produced it. That hash
//! must be *stable*: independent of struct field declaration order (a
//! refactor that reorders fields must not invalidate a store), sensitive
//! to every field value, and identical across platforms and processes.
//! `Debug` output and `std::hash::Hash` give none of those guarantees, so
//! configuration types implement a `stable_encode(&self, &mut
//! StableEncoder)` method instead: each field is `put` under an explicit
//! dotted name, the encoder sorts the pairs by name, and the canonical
//! text is hashed with a fixed 128-bit FNV-1a.
//!
//! Floating-point fields go through [`StableEncoder::put_f64`], which
//! encodes the IEEE-754 bit pattern — two configs hash equal exactly when
//! their floats are bit-identical, with no formatting round-trip in
//! between.
//!
//! # Examples
//!
//! ```
//! use commsense_des::StableEncoder;
//!
//! let hash = |width: u32, height: u32, flipped: bool| {
//!     let mut enc = StableEncoder::new();
//!     if flipped {
//!         enc.put("net.height", height); // same fields, opposite order
//!         enc.put("net.width", width);
//!     } else {
//!         enc.put("net.width", width);
//!         enc.put("net.height", height);
//!     }
//!     enc.finish_hash()
//! };
//! assert_eq!(hash(8, 4, false), hash(8, 4, true));
//! assert_ne!(hash(8, 4, false), hash(8, 2, false)); // one field differs
//! ```

use std::fmt::Display;
use std::fmt::Write as _;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hashes `bytes` with 128-bit FNV-1a. Deterministic across platforms and
/// processes (no per-process seed).
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes `bytes` with 64-bit FNV-1a (used for record checksums, where 64
/// bits of corruption detection is plenty).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Collects `(name, value)` pairs and produces a canonical text or hash
/// that does not depend on the order the pairs were added.
///
/// # Panics
///
/// [`StableEncoder::finish`] panics on duplicate names — two fields
/// encoding under the same name is a programming error that would make
/// the hash silently insensitive to one of them.
#[derive(Debug, Default)]
pub struct StableEncoder {
    pairs: Vec<(String, String)>,
}

impl StableEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one field under an explicit dotted name (e.g. `"cfg.nodes"`).
    /// Names must be unique across the whole encoding; use prefixes to
    /// namespace nested structures.
    pub fn put(&mut self, name: &str, value: impl Display) {
        self.pairs.push((name.to_string(), value.to_string()));
    }

    /// Adds a floating-point field by its IEEE-754 bit pattern, so the
    /// encoding is exact (no shortest-representation formatting involved)
    /// and total (NaNs and infinities encode fine).
    pub fn put_f64(&mut self, name: &str, value: f64) {
        self.put(name, format!("f64:{:016x}", value.to_bits()));
    }

    /// Adds an optional field: `None` encodes as a distinguished token so
    /// `Some(default)` and `None` never collide.
    pub fn put_opt(&mut self, name: &str, value: Option<impl Display>) {
        match value {
            Some(v) => self.put(name, v),
            None => self.put(name, "none"),
        }
    }

    /// The canonical text: `name=value` lines sorted by name.
    ///
    /// # Panics
    ///
    /// Panics if two fields were added under the same name.
    pub fn finish(mut self) -> String {
        self.pairs.sort();
        for w in self.pairs.windows(2) {
            assert_ne!(
                w[0].0, w[1].0,
                "duplicate field {:?} in stable encoding",
                w[0].0
            );
        }
        let mut out = String::new();
        for (k, v) in &self.pairs {
            let _ = writeln!(out, "{k}={v}");
        }
        out
    }

    /// The 128-bit FNV-1a hash of the canonical text.
    pub fn finish_hash(self) -> u128 {
        fnv1a_128(self.finish().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_independent_and_value_sensitive() {
        let mut a = StableEncoder::new();
        a.put("x", 1);
        a.put("y", 2);
        let mut b = StableEncoder::new();
        b.put("y", 2);
        b.put("x", 1);
        assert_eq!(a.finish_hash(), b.finish_hash());
        let mut c = StableEncoder::new();
        c.put("x", 1);
        c.put("y", 3);
        let mut a2 = StableEncoder::new();
        a2.put("x", 1);
        a2.put("y", 2);
        assert_ne!(a2.finish_hash(), c.finish_hash());
    }

    #[test]
    fn f64_encoding_is_bitwise() {
        let mut a = StableEncoder::new();
        a.put_f64("v", 0.1 + 0.2);
        let mut b = StableEncoder::new();
        b.put_f64("v", 0.3);
        // 0.1 + 0.2 != 0.3 bitwise; the encoding must see that.
        assert_ne!(a.finish(), b.finish());
        // NaN encodes without panicking and reproducibly.
        let mut c = StableEncoder::new();
        c.put_f64("v", f64::NAN);
        let mut d = StableEncoder::new();
        d.put_f64("v", f64::NAN);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn none_and_value_never_collide() {
        let mut a = StableEncoder::new();
        a.put_opt("v", None::<u64>);
        let mut b = StableEncoder::new();
        b.put_opt("v", Some(0u64));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_names_are_rejected() {
        let mut e = StableEncoder::new();
        e.put("x", 1);
        e.put("x", 2);
        e.finish();
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_128(b""), FNV_OFFSET);
        // Single-byte flips change both hashes.
        assert_ne!(fnv1a_64(b"abc"), fnv1a_64(b"abd"));
        assert_ne!(fnv1a_128(b"abc"), fnv1a_128(b"abd"));
    }
}
