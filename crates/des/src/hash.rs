//! A minimal Fx-style hasher for small integer keys.
//!
//! The simulator's hot maps are keyed by small sequential integers (line
//! ids, node ids, tokens). `std`'s default SipHash is DoS-resistant but an
//! order of magnitude slower than needed for trusted keys, and external
//! hash crates are off-limits for this workspace. This is the classic
//! multiply-rotate mix used by rustc's FxHasher: one wrapping multiply per
//! word, no finalization, deterministic across runs and platforms.
//!
//! Determinism matters here: the simulation must be a pure function of its
//! inputs, so the hasher has no per-process random seed. Do not use these
//! maps for untrusted external input.
//!
//! # Examples
//!
//! ```
//! use commsense_des::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "line seven");
//! assert_eq!(m.get(&7), Some(&"line seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// 64-bit multiply constant (derived from the golden ratio, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast multiply-rotate hasher for trusted integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&(3u16, 17u64)), hash_of(&(3u16, 17u64)));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential small integers (the dominant key shape) must not
        // collide in the low bits the table indexes with.
        let hashes: Vec<u64> = (0u64..64).map(|i| hash_of(&i) >> 57).collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert!(distinct.len() > 16, "high bits too clumpy: {distinct:?}");
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<(u16, u64), u32> = FxHashMap::default();
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100u64 {
            m.insert((i as u16, i), i as u32);
            s.insert(i * 3);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, 7)), Some(&7));
        assert!(s.contains(&33));
        assert!(!s.contains(&34));
    }

    #[test]
    fn byte_slices_hash_tail_correctly() {
        assert_ne!(hash_of(&b"abcdefgh1"[..]), hash_of(&b"abcdefgh2"[..]));
        assert_ne!(hash_of(&b"a"[..]), hash_of(&b"b"[..]));
    }
}
