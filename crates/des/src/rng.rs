//! A small deterministic random-number generator.
//!
//! The simulation core must be reproducible bit-for-bit across runs and
//! platforms, so it uses this self-contained xorshift64* generator rather
//! than a thread-seeded external RNG. Workload generators take a `Rng`
//! explicitly; the same seed always produces the same graph, mesh, matrix,
//! and molecule set.

/// Deterministic xorshift64\* pseudo-random generator.
///
/// Not cryptographically secure — it exists to make simulations and workload
/// generation reproducible.
///
/// # Examples
///
/// ```
/// use commsense_des::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Rng { state }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): xorshift followed by a multiplicative scramble.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Multiply-shift range reduction; bias is negligible for our ranges.
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Returns a uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Returns an approximately standard-normal sample (Irwin–Hall sum of 12).
    ///
    /// Adequate for Maxwellian velocity initialization in the MOLDYN
    /// workload; not intended for statistical work in the tails.
    pub fn normal(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.f64();
        }
        s - 6.0
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated node its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() | 1)
    }
}

impl Default for Rng {
    /// Seeds with a fixed constant (deterministic, like everything here).
    fn default() -> Self {
        Rng::new(0xC0FF_EE11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(4);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Rng::new(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut r = Rng::new(6);
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(8);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let want: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, want);
        assert_ne!(xs, want, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::new(10);
        let _ = r.gen_range(5, 5);
    }
}
