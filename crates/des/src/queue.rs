//! A deterministic event queue.
//!
//! The pending-event set is the hottest data structure in the whole
//! simulator, so instead of a binary heap (`O(log n)` per operation, with
//! cache-hostile percolation and an explicit `(time, seq)` tag on every
//! element) it is a *calendar* specialised for the schedules a machine
//! simulation produces — a small pending set, near-monotone times, and
//! heavy bursts of events at the same instant:
//!
//! * every distinct pending instant owns a **bucket**, a FIFO ring of the
//!   events scheduled for it, so same-instant ordering is the bucket's
//!   insertion order — the tie-breaking `seq` counter of the old heap is
//!   now structural rather than stored — and both the burst-append and
//!   the pop are O(1);
//! * the pending instants live in a small **sorted index** (a `Vec` with
//!   a consumed-prefix head, kept ascending by time), so advancing to the
//!   next instant is O(1) and registering a brand-new instant is a binary
//!   search plus a short shift towards whichever end is closer — paid
//!   once per *instant*, not once per event;
//! * the bucket at the head is cached in `current`, making the dominant
//!   operations — schedule-at-now and pop — branch-light and
//!   allocation-free (drained buckets are recycled through a free list
//!   with their capacity intact).
//!
//! Determinism is structural: buckets are FIFO and the index is ordered
//! by time, so the pop sequence is identical to the old heap's ordering
//! by `(time, insertion seq)` on every schedule — a property test in
//! `tests/prop.rs` checks this against a reference heap on adversarial
//! schedules.

use std::collections::VecDeque;

use crate::Time;

/// A deterministic min-priority queue of timestamped events.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, which makes whole-machine simulations reproducible:
/// identical inputs and seeds yield identical event interleavings and thus
/// identical cycle counts.
///
/// # Examples
///
/// ```
/// use commsense_des::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(20), "b");
/// q.schedule(Time::from_ns(10), "a");
/// q.schedule(Time::from_ns(20), "c"); // same instant as "b", scheduled later
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The earliest pending instant and its bucket. `None` iff the queue
    /// is empty (so `peek_time` never has to search).
    current: Option<(Time, u32)>,
    /// The remaining pending instants, ascending by time, all strictly
    /// later than `current`. `instants[..ihead]` is consumed slack kept
    /// so a front insertion can shift left in O(1).
    instants: Vec<(Time, u32)>,
    /// First live entry of `instants`.
    ihead: usize,
    /// Bucket storage, indexed by the ids in `current`/`instants`. A
    /// bucket is a FIFO of the events of one instant.
    buckets: Vec<VecDeque<E>>,
    /// Drained buckets available for reuse, capacity intact.
    free: Vec<u32>,
    /// Total pending events.
    count: usize,
    last_popped: Time,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: None,
            instants: Vec::new(),
            ihead: 0,
            buckets: Vec::new(),
            free: Vec::new(),
            count: 0,
            last_popped: Time::ZERO,
        }
    }

    /// Takes a bucket from the free list (or creates one) and seeds it
    /// with `event`.
    fn new_bucket(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(bi) => {
                self.buckets[bi as usize].push_back(event);
                bi
            }
            None => {
                let bi = self.buckets.len() as u32;
                let mut b = VecDeque::with_capacity(4);
                b.push_back(event);
                self.buckets.push(b);
                bi
            }
        }
    }

    /// Registers a new instant `t` with bucket `bi` at index `p` of the
    /// live region, shifting towards whichever end is closer.
    fn insert_instant(&mut self, p: usize, t: Time, bi: u32) {
        if self.ihead > 0 && p - self.ihead <= self.instants.len() - p {
            self.instants[self.ihead - 1..p].rotate_left(1);
            self.ihead -= 1;
            self.instants[p - 1] = (t, bi);
        } else {
            self.instants.insert(p, (t, bi));
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event's time:
    /// scheduling into the past would violate causality.
    pub fn schedule(&mut self, time: Time, event: E) {
        assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < {}",
            self.last_popped
        );
        match self.current {
            // The dominant case: another event for the earliest pending
            // instant (usually "now") — a plain FIFO append.
            Some((ct, cbi)) if time == ct => {
                self.buckets[cbi as usize].push_back(event);
            }
            Some((ct, _)) if time > ct => {
                let p =
                    self.ihead + self.instants[self.ihead..].partition_point(|&(ti, _)| ti < time);
                match self.instants.get(p) {
                    Some(&(ti, bi)) if ti == time => {
                        self.buckets[bi as usize].push_back(event);
                    }
                    _ => {
                        let bi = self.new_bucket(event);
                        self.insert_instant(p, time, bi);
                    }
                }
            }
            // Earlier than every pending instant (but not in the past):
            // demote the current head into the index front.
            Some(cur) => {
                if self.ihead > 0 {
                    self.ihead -= 1;
                    self.instants[self.ihead] = cur;
                } else {
                    self.instants.insert(0, cur);
                }
                let bi = self.new_bucket(event);
                self.current = Some((time, bi));
            }
            None => {
                let bi = self.new_bucket(event);
                self.current = Some((time, bi));
            }
        }
        self.count += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let (t, bi) = self.current?;
        let e = self.buckets[bi as usize]
            .pop_front()
            .expect("current bucket is never empty");
        self.count -= 1;
        self.last_popped = t;
        if self.buckets[bi as usize].is_empty() {
            self.free.push(bi);
            match self.instants.get(self.ihead) {
                Some(&next) => {
                    self.current = Some(next);
                    self.ihead += 1;
                }
                None => {
                    self.current = None;
                    // The index is fully consumed: reclaim the prefix
                    // slack while it costs nothing.
                    self.instants.clear();
                    self.ihead = 0;
                }
            }
        }
        Some((t, e))
    }

    /// Removes *every* event of the earliest pending instant in one
    /// operation, moving them into `buf` (which must be empty) in their
    /// FIFO schedule order, and returns that instant. `None` iff the
    /// queue is empty.
    ///
    /// This is the batched form of [`EventQueue::pop`]: the whole head
    /// bucket is swapped into the caller's buffer in O(1), so per-event
    /// queue bookkeeping is paid once per *instant*. Draining `buf` and
    /// then calling `pop_instant_into` again yields exactly the sequence
    /// [`EventQueue::pop`] would have produced — events scheduled for the
    /// same instant *while the batch is being processed* land in a fresh
    /// head bucket and come out on the next call, which is the same
    /// global order as appending to a bucket that is being popped one
    /// event at a time (a property test in `tests/prop.rs` checks this
    /// against the reference heap).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not empty: swapping a non-empty buffer would
    /// silently discard its events.
    pub fn pop_instant_into(&mut self, buf: &mut VecDeque<E>) -> Option<Time> {
        assert!(buf.is_empty(), "pop_instant_into requires an empty buffer");
        let (t, bi) = self.current?;
        let bucket = &mut self.buckets[bi as usize];
        self.count -= bucket.len();
        self.last_popped = t;
        // O(1): the bucket's storage becomes the caller's buffer and the
        // caller's (empty, capacity-bearing) buffer goes on the free list.
        std::mem::swap(bucket, buf);
        self.free.push(bi);
        match self.instants.get(self.ihead) {
            Some(&next) => {
                self.current = Some(next);
                self.ihead += 1;
            }
            None => {
                self.current = None;
                self.instants.clear();
                self.ihead = 0;
            }
        }
        Some(t)
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.current.map(|(t, _)| t)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<_> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ties_break_by_insertion_order_while_draining() {
        // Same-instant events appended while that instant's bucket is
        // already being popped still come out FIFO.
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(5), 0);
        q.schedule(Time::from_ns(5), 1);
        assert_eq!(q.pop(), Some((Time::from_ns(5), 0)));
        q.schedule(Time::from_ns(5), 2);
        q.schedule(Time::from_ns(5), 3);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn earlier_than_every_pending_instant_becomes_the_head() {
        // After popping at t=10 with t=30 pending, scheduling t=20 (and
        // then t=15) must displace the cached head instant each time.
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(30), 30);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        q.schedule(Time::from_ns(20), 20);
        q.schedule(Time::from_ns(15), 15);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [15, 20, 30]);
    }

    #[test]
    fn interleaves_inserts_with_pops() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(Time::from_ns(100 + i), i);
        }
        assert_eq!(q.pop(), Some((Time::from_ns(100), 0)));
        // Insert at, just above, and well above the next pending time.
        q.schedule(Time::from_ns(100), 90);
        q.schedule(Time::from_ns(101), 91);
        q.schedule(Time::from_ns(105), 95);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [90, 1, 91, 2, 3, 4, 5, 95, 6, 7, 8, 9]);
    }

    #[test]
    fn buckets_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            q.schedule(Time::from_ns(round * 10), round);
            q.schedule(Time::from_ns(round * 10), round + 100);
            assert_eq!(q.pop().map(|(_, e)| e), Some(round));
            assert_eq!(q.pop().map(|(_, e)| e), Some(round + 100));
        }
        // One live instant at a time: the storage must not have grown a
        // bucket per round.
        assert!(q.buckets.len() <= 2, "buckets grew to {}", q.buckets.len());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_tracks_new_minimum() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(1000), 1);
        assert_eq!(q.peek_time(), Some(Time::from_us(1000)));
        q.schedule(Time::from_ns(3), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Time::from_us(1000)));
    }

    #[test]
    fn wide_time_spread_drains_fully() {
        let mut q = EventQueue::new();
        let mut t = 1u64;
        for i in 0..40 {
            q.schedule(Time::from_ps(t), i);
            t = t.saturating_mul(3);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<_> = (0..40).collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn scheduling_at_current_time_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        q.pop();
        q.schedule(Time::from_ns(10), 2); // same instant: fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn pop_instant_drains_one_bucket_in_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(5), 0);
        q.schedule(Time::from_ns(9), 9);
        q.schedule(Time::from_ns(5), 1);
        q.schedule(Time::from_ns(5), 2);
        let mut buf = VecDeque::new();
        assert_eq!(q.pop_instant_into(&mut buf), Some(Time::from_ns(5)));
        assert_eq!(buf.drain(..).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_instant_into(&mut buf), Some(Time::from_ns(9)));
        assert_eq!(buf.drain(..).collect::<Vec<_>>(), [9]);
        assert_eq!(q.pop_instant_into(&mut buf), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_schedules_during_batch_form_the_next_batch() {
        // Events scheduled *at* the drained instant while its batch is
        // out come back as a second batch at the same time — the order a
        // one-at-a-time pop interleaved with those schedules produces.
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), 0);
        q.schedule(Time::from_ns(7), 1);
        let mut buf = VecDeque::new();
        assert_eq!(q.pop_instant_into(&mut buf), Some(Time::from_ns(7)));
        assert_eq!(buf.drain(..).collect::<Vec<_>>(), [0, 1]);
        q.schedule(Time::from_ns(7), 2);
        q.schedule(Time::from_ns(8), 8);
        q.schedule(Time::from_ns(7), 3);
        assert_eq!(q.pop_instant_into(&mut buf), Some(Time::from_ns(7)));
        assert_eq!(buf.drain(..).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(q.pop_instant_into(&mut buf), Some(Time::from_ns(8)));
        assert_eq!(buf.drain(..).collect::<Vec<_>>(), [8]);
    }

    #[test]
    fn pop_instant_recycles_bucket_storage() {
        let mut q = EventQueue::new();
        let mut buf = VecDeque::new();
        for round in 0..50u64 {
            q.schedule(Time::from_ns(round * 10), round);
            q.schedule(Time::from_ns(round * 10), round + 100);
            assert_eq!(
                q.pop_instant_into(&mut buf),
                Some(Time::from_ns(round * 10))
            );
            assert_eq!(buf.drain(..).collect::<Vec<_>>(), [round, round + 100]);
        }
        assert!(q.buckets.len() <= 2, "buckets grew to {}", q.buckets.len());
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn pop_instant_rejects_non_empty_buffer() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(1), 1);
        let mut buf: VecDeque<u64> = VecDeque::new();
        buf.push_back(99);
        let _ = q.pop_instant_into(&mut buf);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_before_a_drained_instant_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        let mut buf = VecDeque::new();
        let _ = q.pop_instant_into(&mut buf);
        q.schedule(Time::from_ns(5), 2);
    }
}
