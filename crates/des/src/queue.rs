//! A deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// A pending event: ordered by time, ties broken by insertion sequence.
#[derive(Debug)]
struct Scheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, which makes whole-machine simulations reproducible:
/// identical inputs and seeds yield identical event interleavings and thus
/// identical cycle counts.
///
/// # Examples
///
/// ```
/// use commsense_des::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(20), "b");
/// q.schedule(Time::from_ns(10), "a");
/// q.schedule(Time::from_ns(20), "c"); // same instant as "b", scheduled later
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    last_popped: Time,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: Time::ZERO,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event's time:
    /// scheduling into the past would violate causality.
    pub fn schedule(&mut self, time: Time, event: E) {
        assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        self.last_popped = s.time;
        Some((s.time, s.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<_> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn scheduling_at_current_time_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        q.pop();
        q.schedule(Time::from_ns(10), 2); // same instant: fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }
}
