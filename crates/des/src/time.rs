//! Simulated time and processor clocks.
//!
//! Time is kept in integer **picoseconds** so that a 20 MHz processor cycle
//! (50 000 ps) and network wall-clock latencies are both exactly
//! representable, and so the event queue's total order never depends on
//! floating-point rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in picoseconds since the start of the run.
///
/// `Time` is an absolute instant; durations are also represented as `Time`
/// (picosecond spans) for simplicity, matching how the simulator composes
/// them with `+`.
///
/// # Examples
///
/// ```
/// use commsense_des::Time;
///
/// let t = Time::from_ns(750); // one-way 24-byte packet on Alewife: ~0.75us
/// assert_eq!(t.as_ps(), 750_000);
/// assert_eq!(t + Time::from_ns(250), Time::from_us(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero: the start of the simulation.
    pub const ZERO: Time = Time(0);

    /// The far future: later than any reachable simulation instant. Useful
    /// as a "never" sentinel for periodic activities that are disabled
    /// (comparing against it is one branch, with no `Option` unwrapping on
    /// a hot path).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns this time in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns this time as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction; returns [`Time::ZERO`] instead of wrapping.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

/// A processor clock: converts between cycles and wall-clock [`Time`].
///
/// The paper's latency-scaling experiment (§5.3) slows the Sparcle clock from
/// 20 MHz to 14 MHz while the asynchronous network keeps fixed wall-clock
/// latency, so the *same* network appears faster or slower in processor
/// cycles. `Clock` is therefore the only place cycles and picoseconds meet.
///
/// # Examples
///
/// ```
/// use commsense_des::Clock;
///
/// let alewife = Clock::from_mhz(20.0);
/// assert_eq!(alewife.cycle_ps(), 50_000);
/// let slow = Clock::from_mhz(14.0);
/// // The same 750ns network transit costs more cycles on the slower clock
/// // (i.e. the network looks *faster* relative to the processor — the paper
/// // plots this as lower relative network latency when the clock is fast).
/// use commsense_des::Time;
/// assert!(slow.cycles_at_f64(Time::from_ns(750)) < alewife.cycles_at_f64(Time::from_ns(750)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    cycle_ps: u64,
    mhz: f64,
}

impl Clock {
    /// Creates a clock running at `mhz` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "clock rate must be positive");
        let cycle_ps = (1e6 / mhz).round() as u64;
        Clock { cycle_ps, mhz }
    }

    /// The length of one processor cycle in picoseconds.
    pub fn cycle_ps(self) -> u64 {
        self.cycle_ps
    }

    /// The clock rate in MHz.
    pub fn mhz(self) -> f64 {
        self.mhz
    }

    /// Converts a whole number of cycles to a time span.
    pub fn cycles(self, n: u64) -> Time {
        Time::from_ps(n * self.cycle_ps)
    }

    /// Converts a fractional number of cycles to a time span (rounded).
    pub fn cycles_f64(self, n: f64) -> Time {
        Time::from_ps((n * self.cycle_ps as f64).round() as u64)
    }

    /// Converts a time span to whole cycles (truncated).
    pub fn cycles_at(self, t: Time) -> u64 {
        t.as_ps() / self.cycle_ps
    }

    /// Converts a time span to fractional cycles.
    pub fn cycles_at_f64(self, t: Time) -> f64 {
        t.as_ps() as f64 / self.cycle_ps as f64
    }
}

impl Default for Clock {
    /// The Alewife Sparcle clock: 20 MHz.
    fn default() -> Self {
        Clock::from_mhz(20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(3).as_ns(), 3_000);
        assert_eq!(Time::from_ps(1_234_567).as_ns(), 1_234);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(100);
        let b = Time::from_ns(40);
        assert_eq!(a + b, Time::from_ns(140));
        assert_eq!(a - b, Time::from_ns(60));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_ns(140));
    }

    #[test]
    fn time_display_is_nonempty() {
        assert_eq!(format!("{}", Time::from_us(2)), "2.000us");
    }

    #[test]
    fn clock_20mhz_cycle_is_50ns() {
        let c = Clock::from_mhz(20.0);
        assert_eq!(c.cycle_ps(), 50_000);
        assert_eq!(c.cycles(42), Time::from_ns(2_100));
        assert_eq!(c.cycles_at(Time::from_us(1)), 20);
    }

    #[test]
    fn clock_scaling_changes_relative_latency() {
        // At a slower processor clock the same wall-clock network latency
        // costs *fewer* cycles, emulating a relatively faster network.
        let net = Time::from_ns(750);
        let fast = Clock::from_mhz(20.0).cycles_at_f64(net);
        let slow = Clock::from_mhz(14.0).cycles_at_f64(net);
        assert!(slow < fast);
        assert!((fast - 15.0).abs() < 0.01, "20MHz: 750ns == 15 cycles");
    }

    #[test]
    fn fractional_cycles_round() {
        let c = Clock::from_mhz(20.0);
        // 1.6 cycles/hop from the Alewife cost table.
        assert_eq!(c.cycles_f64(1.6), Time::from_ps(80_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let _ = Clock::from_mhz(0.0);
    }

    #[test]
    fn default_clock_is_alewife() {
        assert_eq!(Clock::default().cycle_ps(), 50_000);
    }
}
