//! Deterministic discrete-event simulation substrate for the `commsense`
//! machine emulator.
//!
//! This crate provides the three primitives every other simulation crate in
//! the workspace builds on:
//!
//! * [`Time`] — simulated time in integer picoseconds, with conversions to
//!   and from processor cycles at a configurable clock ([`Clock`]). Using
//!   wall-clock picoseconds (rather than cycles) is essential to the paper's
//!   clock-scaling experiment (§5.3): the network operates on fixed wall-clock
//!   latencies while the processor cycle time changes.
//! * [`EventQueue`] — a priority queue of `(Time, event)` pairs with a
//!   deterministic total order: ties in time are broken by insertion sequence
//!   number, so a simulation run is a pure function of its inputs and seed.
//! * [`Rng`] — a small, fast, seedable xorshift-based generator used by the
//!   workload generators and cross-traffic injectors, so that runs are
//!   reproducible without pulling a heavyweight dependency into the
//!   simulation core.
//!
//! It also provides [`FxHashMap`]/[`FxHashSet`], deterministic unseeded hash
//! containers for the simulator's trusted small-integer keys (line ids,
//! tokens), where `std`'s DoS-resistant SipHash is wasted cost.
//!
//! # Examples
//!
//! ```
//! use commsense_des::{Clock, EventQueue, Time};
//!
//! let clock = Clock::from_mhz(20.0); // MIT Alewife's Sparcle clock
//! let mut q = EventQueue::new();
//! q.schedule(clock.cycles(42), "remote clean miss done");
//! q.schedule(clock.cycles(11), "local miss done");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "local miss done");
//! assert_eq!(clock.cycles_at(t), 11);
//! # let _ = t;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod queue;
mod rng;
pub mod stable;
mod time;

pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use queue::EventQueue;
pub use rng::Rng;
pub use stable::{fnv1a_128, fnv1a_64, StableEncoder};
pub use time::{Clock, Time};
