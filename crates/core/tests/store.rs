//! Result-store integration and property tests: records round-trip bit
//! for bit, every single-byte corruption is detected (and the point
//! recomputed, never trusted), concurrent writers cannot tear a read,
//! and the content-address is exactly as sensitive as the model.

use std::sync::Arc;
use std::time::Duration;

use commsense_apps::{AppSpec, RunResult};
use commsense_core::engine::{RunOutcome, RunRequest, Runner, WorkloadCache};
use commsense_core::store::ResultStore;
use commsense_des::{Rng, Time};
use commsense_machine::{
    LatencyHistogram, MachineConfig, Mechanism, NodeStats, ObserveConfig, RunStats,
};
use commsense_mesh::VolumeBreakdown;
use commsense_workloads::bipartite::Em3dParams;
use proptest::prelude::*;

/// A store rooted in a fresh per-test temp directory (no tempfile crate
/// in the offline build; process id keeps concurrent test *processes*
/// apart, the per-test name keeps the threads of one process apart).
fn temp_store(name: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!(
        "commsense-store-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::open(&dir).expect("open temp store")
}

fn em3d_request(cfg: &MachineConfig, mech: Mechanism) -> RunRequest {
    let mut em = Em3dParams::small();
    em.iterations = 1;
    RunRequest {
        spec: AppSpec::Em3d(em),
        mechanism: mech,
        cfg: cfg.clone().with_mechanism(mech),
    }
}

/// The one record file of a store holding exactly one result.
fn single_record_path(store: &ResultStore) -> std::path::PathBuf {
    fn walk(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        for e in std::fs::read_dir(dir).expect("read store dir") {
            let p = e.expect("dir entry").path();
            if p.is_dir() {
                walk(&p, out);
            } else if p.extension().is_some_and(|x| x == "rec") {
                out.push(p);
            }
        }
    }
    let mut recs = Vec::new();
    walk(&store.root().join("records"), &mut recs);
    assert_eq!(recs.len(), 1, "expected exactly one record");
    recs.pop().unwrap()
}

/// Every mechanism's real result — histograms, per-node buckets, volume
/// and protocol counters, the f64 error bound, the wall-time metadata —
/// must read back exactly as written. `RunResult`'s `Debug` covers all
/// simulation outputs; `wall` is compared separately (it is excluded
/// from `Debug`).
#[test]
fn real_results_round_trip_bit_identically() {
    let store = temp_store("roundtrip");
    let cfg = MachineConfig::alewife();
    let mut cache = WorkloadCache::new();
    let reqs: Vec<RunRequest> = Mechanism::ALL
        .iter()
        .map(|&m| em3d_request(&cfg, m))
        .collect();
    let results = Runner::serial().run_cached(&reqs, &mut cache);
    for (req, r) in reqs.iter().zip(&results) {
        store.save(req, r).expect("save record");
        let back = store.load(req).expect("load saved record");
        assert_eq!(
            format!("{back:?}"),
            format!("{r:?}"),
            "{}: replayed result diverged",
            r.mechanism.label()
        );
        assert_eq!(back.wall, r.wall, "wall nanos must round-trip");
        assert!(back.observation.is_none(), "records carry no observation");
    }
    let st = store.stats();
    assert_eq!(st.hits, reqs.len() as u64);
    assert_eq!((st.misses, st.corrupt), (0, 0));
    assert!(st.bytes_written > 0 && st.bytes_read > 0);
}

proptest! {
    /// Round-tripping is not an artifact of the values real runs happen
    /// to produce: a result whose every counter, histogram bucket, node
    /// budget, and f64 bit pattern (including NaN and -0.0 payloads for
    /// `max_abs_err`) is adversarial still reads back exactly.
    #[test]
    fn synthetic_results_round_trip_exactly(seed in 0u64..256) {
        let store = temp_store("proptest");
        let cfg = MachineConfig::alewife();
        let req = em3d_request(&cfg, Mechanism::SharedMem);
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let volume = |rng: &mut Rng| VolumeBreakdown {
            invalidates: rng.next_u64(),
            requests: rng.next_u64(),
            headers: rng.next_u64(),
            data: rng.next_u64(),
            cross_traffic: rng.next_u64(),
        };
        let mut hist = LatencyHistogram::default();
        for b in hist.buckets.iter_mut() {
            *b = rng.next_u64();
        }
        hist.count = rng.next_u64();
        hist.sum_cycles = rng.next_u64();
        hist.max_cycles = rng.next_u64();
        let stats = RunStats {
            runtime: Time::from_ps(rng.next_u64()),
            runtime_cycles: rng.next_u64(),
            nodes: (0..4)
                .map(|_| NodeStats {
                    sync: Time::from_ps(rng.next_u64()),
                    overhead: Time::from_ps(rng.next_u64()),
                    mem: Time::from_ps(rng.next_u64()),
                    compute: Time::from_ps(rng.next_u64()),
                })
                .collect(),
            volume: volume(&mut rng),
            bisection: volume(&mut rng),
            proto: commsense_cache::ProtoStats {
                read_misses: rng.next_u64(),
                write_misses: rng.next_u64(),
                invalidations: rng.next_u64(),
                interventions: rng.next_u64(),
                limitless_traps: rng.next_u64(),
                writebacks: rng.next_u64(),
                deferred: rng.next_u64(),
            },
            messages_sent: rng.next_u64(),
            events: rng.next_u64(),
            mean_packet_latency: if rng.chance(0.5) {
                Some(Time::from_ps(rng.next_u64()))
            } else {
                None
            },
            useless_prefetches: rng.next_u64(),
            useful_prefetches: rng.next_u64(),
            cache_hit_miss: (rng.next_u64(), rng.next_u64()),
            miss_latency: hist,
            priority_bypasses: rng.next_u64(),
            low_bypassed: rng.next_u64(),
        };
        let max_abs_err = match rng.index(4) {
            0 => f64::from_bits(rng.next_u64()), // arbitrary, possibly NaN
            1 => -0.0,
            2 => f64::INFINITY,
            _ => rng.f64(),
        };
        let result = RunResult {
            app: req.spec.name(),
            mechanism: req.mechanism,
            runtime_cycles: stats.runtime_cycles,
            verified: rng.chance(0.5),
            max_abs_err,
            stats,
            wall: Duration::from_nanos(rng.next_u64() >> 1),
            observation: None,
            profile: None,
        };
        store.save(&req, &result).expect("save synthetic record");
        let back = store.load(&req).expect("load synthetic record");
        prop_assert_eq!(format!("{:?}", back.stats), format!("{:?}", result.stats));
        prop_assert_eq!(back.runtime_cycles, result.runtime_cycles);
        prop_assert_eq!(back.verified, result.verified);
        prop_assert_eq!(
            back.max_abs_err.to_bits(),
            result.max_abs_err.to_bits(),
            "f64 bits must survive, including NaN payloads"
        );
        prop_assert_eq!(back.wall, result.wall);
    }
}

/// Flipping any single byte of a record — magic, length, checksum, or
/// payload — must be detected. A detected record is evicted and the
/// point recomputed from scratch: the store never serves bad data.
#[test]
fn any_single_byte_flip_is_detected_and_recomputed() {
    let store = Arc::new(temp_store("corrupt"));
    let cfg = MachineConfig::alewife();
    let req = em3d_request(&cfg, Mechanism::SharedMem);
    let mut cache = WorkloadCache::new();
    let expected = Runner::serial()
        .run_cached(std::slice::from_ref(&req), &mut cache)
        .pop()
        .unwrap();
    store.save(&req, &expected).expect("save record");
    let path = single_record_path(&store);
    let good = std::fs::read(&path).expect("read record bytes");

    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        std::fs::write(&path, &bad).expect("write corrupted record");
        assert!(
            store.load(&req).is_none(),
            "flip of byte {i}/{} must be detected",
            good.len()
        );
        // Detection evicts the record; restore it for the next position.
        std::fs::write(&path, &good).expect("restore record");
    }
    let st = store.stats();
    assert_eq!(st.corrupt, good.len() as u64);
    assert_eq!(st.evictions, good.len() as u64);

    // The pristine record still loads...
    let back = store.load(&req).expect("pristine record loads");
    assert_eq!(format!("{back:?}"), format!("{expected:?}"));

    // ...and a corrupted one makes the runner recompute, not trust.
    std::fs::write(&path, {
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0xff;
        bad
    })
    .expect("corrupt once more");
    let runner = Runner::serial().with_store(store.clone());
    let outcomes = runner.run_outcomes(std::slice::from_ref(&req), &mut cache);
    match &outcomes[0] {
        RunOutcome::Done { result, cached } => {
            assert!(!cached, "corrupt record must be recomputed, not replayed");
            assert_eq!(format!("{result:?}"), format!("{expected:?}"));
        }
        other => panic!("expected a recomputed result, got {other:?}"),
    }
    // The recomputation healed the store: the next pass replays.
    let healed = runner.run_outcomes(std::slice::from_ref(&req), &mut cache);
    assert!(healed[0].is_cached(), "healed record must replay");
}

/// Writers racing on the same key never expose a torn record: the
/// tmp-file + rename protocol means a concurrent reader sees either the
/// old complete record or the new complete record, both valid.
#[test]
fn interleaved_writers_never_tear_a_read() {
    let store = Arc::new(temp_store("torn"));
    let cfg = MachineConfig::alewife();
    let req = em3d_request(&cfg, Mechanism::MsgPoll);
    let mut cache = WorkloadCache::new();
    let expected = Runner::serial()
        .run_cached(std::slice::from_ref(&req), &mut cache)
        .pop()
        .unwrap();
    store.save(&req, &expected).expect("initial save");
    let want = format!("{expected:?}");

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (store, req, expected) = (store.clone(), req.clone(), expected.clone());
            scope.spawn(move || {
                for _ in 0..50 {
                    store.save(&req, &expected).expect("concurrent save");
                }
            });
        }
        for _ in 0..200 {
            let got = store
                .load(&req)
                .expect("a record must always be present and valid");
            assert_eq!(format!("{got:?}"), want, "torn or stale-mixed read");
        }
    });
    assert_eq!(store.stats().corrupt, 0);
}

/// The content-address sees exactly the model: identical requests hash
/// identically, pure bookkeeping (observability, checking) is invisible,
/// and the mechanism, every workload parameter, and machine knobs all
/// perturb the key.
#[test]
fn request_keys_are_stable_and_exactly_model_sensitive() {
    let cfg = MachineConfig::alewife();
    let base = em3d_request(&cfg, Mechanism::SharedMem);
    let key = ResultStore::request_key(&base);
    assert_eq!(
        key,
        ResultStore::request_key(&base.clone()),
        "deterministic"
    );

    // Bookkeeping that cannot change simulated cycles is excluded.
    let mut observed = base.clone();
    observed.cfg.observe = Some(ObserveConfig::default());
    assert_eq!(key, ResultStore::request_key(&observed));
    let mut checked = base.clone();
    checked.cfg.check = Some(commsense_machine::CheckConfig::full());
    assert_eq!(key, ResultStore::request_key(&checked));

    // Everything that reaches the simulation is included.
    let mut keys = vec![key];
    for &mech in &Mechanism::ALL[1..] {
        keys.push(ResultStore::request_key(&em3d_request(&cfg, mech)));
    }
    let mut other_spec = base.clone();
    if let AppSpec::Em3d(p) = &mut other_spec.spec {
        p.iterations += 1;
    }
    keys.push(ResultStore::request_key(&other_spec));
    let mut other_seed = base.clone();
    if let AppSpec::Em3d(p) = &mut other_seed.spec {
        p.seed ^= 1;
    }
    keys.push(ResultStore::request_key(&other_seed));
    let mut other_clock = base.clone();
    other_clock.cfg.cpu_mhz += 1.0;
    keys.push(ResultStore::request_key(&other_clock));
    let mut other_net = base.clone();
    other_net.cfg.net.ps_per_byte += 1;
    keys.push(ResultStore::request_key(&other_net));
    let n = keys.len();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(
        keys.len(),
        n,
        "every model-visible change must move the key"
    );
}

/// The on-disk path of `req`'s record (reconstructed from the public
/// key, the way the store shards records).
fn record_path_of(store: &ResultStore, req: &RunRequest) -> std::path::PathBuf {
    let hex = format!("{:032x}", ResultStore::request_key(req));
    store
        .root()
        .join("records")
        .join(&hex[..2])
        .join(format!("{hex}.rec"))
}

/// Size-capped gc evicts in least-recently-used order, where "used"
/// includes loads: a hit refreshes the record's mtime, so a record that
/// keeps getting asked for survives caps that evict colder ones.
#[test]
fn gc_max_bytes_evicts_least_recently_used_first() {
    let store = temp_store("lru");
    let cfg = MachineConfig::alewife();
    let mut cache = WorkloadCache::new();
    let reqs: Vec<RunRequest> = Mechanism::ALL
        .iter()
        .map(|&m| em3d_request(&cfg, m))
        .collect();
    let results = Runner::serial().run_cached(&reqs, &mut cache);
    for (req, r) in reqs.iter().zip(&results) {
        store.save(req, r).expect("save record");
    }
    let paths: Vec<std::path::PathBuf> = reqs.iter().map(|r| record_path_of(&store, r)).collect();
    let sizes: Vec<u64> = paths
        .iter()
        .map(|p| std::fs::metadata(p).expect("record exists").len())
        .collect();
    let total: u64 = sizes.iter().sum();

    // Pin an explicit age order: record 0 is the coldest, 4 the hottest.
    let base = std::time::SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
    for (i, p) in paths.iter().enumerate() {
        let f = std::fs::File::options().write(true).open(p).expect("open");
        f.set_modified(base + Duration::from_secs(i as u64))
            .expect("set mtime");
    }

    // A cap the store already fits leaves everything alone.
    let noop = store.gc_max_bytes(total).expect("noop gc");
    assert_eq!((noop.removed, noop.kept), (0, 5));
    assert_eq!(noop.kept_bytes, total);

    // A cap that requires shedding the two coldest sheds exactly those.
    let cap = total - sizes[0] - sizes[1];
    let shed = store.gc_max_bytes(cap).expect("capped gc");
    assert_eq!((shed.removed, shed.kept), (2, 3));
    assert_eq!(shed.removed_bytes, sizes[0] + sizes[1]);
    assert!(store.load(&reqs[0]).is_none(), "coldest record evicted");
    assert!(store.load(&reqs[1]).is_none(), "second-coldest evicted");
    for req in &reqs[2..] {
        assert!(store.load(req).is_some(), "hot records survive");
    }
    assert_eq!(store.stats().evictions, 2);

    // A load refreshes recency: re-age the survivors so record 2 is the
    // coldest again, then *use* it — the next capped gc must evict the
    // untouched record 3 instead.
    for (i, p) in paths.iter().enumerate().skip(2) {
        let f = std::fs::File::options().write(true).open(p).expect("open");
        f.set_modified(base + Duration::from_secs(i as u64))
            .expect("set mtime");
    }
    assert!(store.load(&reqs[2]).is_some(), "touch the cold record");
    let shed = store
        .gc_max_bytes(sizes[2] + sizes[3] + sizes[4] - 1)
        .expect("capped gc after touch");
    assert_eq!(shed.removed, 1);
    assert!(
        store.load(&reqs[2]).is_some(),
        "the touched record survives"
    );
    assert!(
        store.load(&reqs[3]).is_none(),
        "the untouched record is the LRU victim"
    );
}

/// Readers, writers, and a size-capped evictor hammering one store
/// concurrently never observe a torn record: every load is either a miss
/// or the exact expected result, and the surviving records all validate.
#[test]
fn concurrent_readers_writers_and_gc_never_tear() {
    let store = Arc::new(temp_store("gc-stress"));
    let cfg = MachineConfig::alewife();
    let mut cache = WorkloadCache::new();
    let reqs: Vec<RunRequest> = [Mechanism::SharedMem, Mechanism::MsgPoll, Mechanism::Bulk]
        .iter()
        .map(|&m| em3d_request(&cfg, m))
        .collect();
    let results = Runner::serial().run_cached(&reqs, &mut cache);
    let expected: Vec<String> = results.iter().map(|r| format!("{r:?}")).collect();
    for (req, r) in reqs.iter().zip(&results) {
        store.save(req, r).expect("seed record");
    }
    let one_record = std::fs::metadata(record_path_of(&store, &reqs[0]))
        .expect("record exists")
        .len();

    std::thread::scope(|scope| {
        // Writers continuously re-save every key.
        for _ in 0..2 {
            let (store, reqs, results) = (store.clone(), reqs.clone(), results.clone());
            scope.spawn(move || {
                for _ in 0..40 {
                    for (req, r) in reqs.iter().zip(&results) {
                        store.save(req, r).expect("concurrent save");
                    }
                }
            });
        }
        // An evictor keeps squeezing the store below two records, so
        // loads race against both rename-overwrites and deletions.
        {
            let store = store.clone();
            scope.spawn(move || {
                for _ in 0..60 {
                    store
                        .gc_max_bytes(one_record.saturating_mul(2))
                        .expect("concurrent capped gc");
                }
            });
        }
        // Readers: a load may miss (evicted) but never tears.
        for _ in 0..2 {
            let (store, reqs, expected) = (store.clone(), reqs.clone(), expected.clone());
            scope.spawn(move || {
                for _ in 0..120 {
                    for (req, want) in reqs.iter().zip(&expected) {
                        if let Some(got) = store.load(req) {
                            assert_eq!(&format!("{got:?}"), want, "torn concurrent read");
                        }
                    }
                }
            });
        }
    });
    assert_eq!(store.stats().corrupt, 0, "no read ever saw a torn record");
    let report = store.verify().expect("verify");
    assert_eq!(report.corrupt, 0, "every surviving record validates");
}

/// `verify` and `gc` agree with the stats counters and leave valid
/// records alone.
#[test]
fn verify_and_gc_report_and_prune() {
    let store = temp_store("scan");
    let cfg = MachineConfig::alewife();
    let req = em3d_request(&cfg, Mechanism::Bulk);
    let mut cache = WorkloadCache::new();
    let r = Runner::serial()
        .run_cached(std::slice::from_ref(&req), &mut cache)
        .pop()
        .unwrap();
    store.save(&req, &r).expect("save");
    let clean = store.verify().expect("verify");
    assert_eq!((clean.ok, clean.corrupt, clean.removed), (1, 0, 0));
    assert!(clean.live_bytes > 0);

    // Plant a garbage record next to the real one; gc removes only it.
    let path = single_record_path(&store);
    let junk = path.with_file_name("00000000000000000000000000000000.rec");
    std::fs::write(&junk, b"not a record").expect("write junk");
    let seen = store.verify().expect("verify sees junk");
    assert_eq!((seen.ok, seen.corrupt, seen.removed), (1, 1, 0));
    let swept = store.gc().expect("gc");
    assert_eq!((swept.ok, swept.corrupt, swept.removed), (1, 1, 1));
    assert!(!junk.exists(), "gc removes the corrupt record");
    assert!(path.exists(), "gc keeps the valid record");
    assert!(store.load(&req).is_some(), "valid record still replays");
}
