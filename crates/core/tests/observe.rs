//! Golden structural tests for the observability artifacts: the Perfetto
//! trace export and the run manifest produced from one tiny 4-node run.

use commsense_apps::{run_app, AppSpec, RunResult};
use commsense_core::engine::RunRequest;
use commsense_core::json::Json;
use commsense_core::manifest::{manifest_json, validate_manifest};
use commsense_machine::perfetto::{export_trace, export_trace_critical, TRACE_SCHEMA_VERSION};
use commsense_machine::{MachineConfig, Mechanism, ObserveConfig};
use commsense_workloads::bipartite::Em3dParams;

fn observed_run() -> (RunRequest, RunResult) {
    let mut p = Em3dParams::small();
    p.iterations = 1;
    let mut cfg = MachineConfig::tiny();
    cfg.observe = Some(ObserveConfig {
        epoch_cycles: 100,
        trace_capacity: 1 << 16,
        max_packets: 1 << 16,
        ..Default::default()
    });
    let req = RunRequest {
        spec: AppSpec::Em3d(p),
        mechanism: Mechanism::MsgInterrupt,
        cfg,
    };
    let result = run_app(&req.spec, req.mechanism, &req.cfg);
    (req, result)
}

#[test]
fn perfetto_export_is_structurally_valid() {
    let (_, result) = observed_run();
    let obs = result.observation.as_ref().expect("observation recorded");
    let text = export_trace(obs);
    let v = Json::parse(&text).expect("export parses as JSON");

    let other = v.get("otherData").expect("otherData present");
    assert_eq!(
        other.get("schema_version").and_then(Json::as_u64),
        Some(TRACE_SCHEMA_VERSION as u64)
    );
    assert_eq!(
        other.get("trace_dropped_events").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        other.get("net_dropped_packets").and_then(Json::as_u64),
        Some(0)
    );

    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert!(!events.is_empty());

    // Within every (pid, tid) track, timestamps must be non-decreasing and
    // every event well-formed.
    let mut last_ts: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    let mut flows: std::collections::HashMap<u64, (u32, u32)> = std::collections::HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event has ph");
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let pid = e.get("pid").and_then(Json::as_u64).expect("event has pid");
        let tid = e.get("tid").and_then(Json::as_u64).expect("event has tid");
        let ts = e.get("ts").and_then(Json::as_f64).expect("event has ts");
        let prev = last_ts.insert((pid, tid), ts);
        if let Some(prev) = prev {
            assert!(
                ts >= prev,
                "ts regression on track ({pid},{tid}): {prev} -> {ts}"
            );
        }
        if matches!(ph, "s" | "t" | "f") {
            let id = e.get("id").and_then(Json::as_u64).expect("flow has id");
            let counts = flows.entry(id).or_insert((0, 0));
            match ph {
                "s" => counts.0 += 1,
                "f" => counts.1 += 1,
                _ => {}
            }
        }
    }

    // Every flow id pairs exactly one send with exactly one receive.
    assert!(!flows.is_empty(), "expected message flows in the trace");
    for (id, (starts, finishes)) in &flows {
        assert_eq!(*starts, 1, "flow {id} has {starts} starts");
        assert_eq!(*finishes, 1, "flow {id} has {finishes} finishes");
    }
}

#[test]
fn perfetto_export_flags_critical_path_flows() {
    let (req, result) = observed_run();
    let obs = result.observation.as_ref().expect("observation recorded");
    let cp = commsense_machine::critpath::analyze(obs, &req.cfg);
    assert!(
        !cp.critical_records.is_empty(),
        "a message-passing run must cross messages on its critical path"
    );

    // The plain export carries no critical markers (and stays schema v2).
    let plain = export_trace(obs);
    assert!(!plain.contains("msg-critical"));

    let text = export_trace_critical(obs, &cp.critical_records);
    let v = Json::parse(&text).expect("critical export parses as JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let mut critical_ids = std::collections::HashSet::new();
    for e in events {
        let Some(cat) = e.get("cat").and_then(Json::as_str) else {
            continue;
        };
        let id = e.get("id").and_then(Json::as_u64).expect("flow has id") as u32;
        if cat == "msg-critical" {
            // Flagged flows carry the queryable arg and belong to the path.
            assert_eq!(
                e.get("args")
                    .and_then(|a| a.get("critical"))
                    .and_then(Json::as_bool),
                Some(true),
                "msg-critical flow {id} missing critical arg"
            );
            assert!(cp.is_critical(id), "flow {id} flagged but not on path");
            critical_ids.insert(id);
        } else {
            assert!(
                !cp.is_critical(id),
                "flow {id} on the critical path but not flagged"
            );
        }
    }
    assert!(
        !critical_ids.is_empty(),
        "critical path messages must appear as flagged flows"
    );
}

#[test]
fn perfetto_export_is_deterministic() {
    let (_, a) = observed_run();
    let (_, b) = observed_run();
    let ta = export_trace(a.observation.as_ref().unwrap());
    let tb = export_trace(b.observation.as_ref().unwrap());
    assert_eq!(ta, tb, "identical runs must export byte-identical traces");
}

#[test]
fn manifest_for_observed_run_validates() {
    let (req, result) = observed_run();
    let text = manifest_json(&req, Some(18.0), &result);
    validate_manifest(&text).expect("manifest validates");

    let v = Json::parse(&text).unwrap();
    assert_eq!(v.get("app").and_then(Json::as_str), Some("EM3D"));
    assert_eq!(v.get("mechanism").and_then(Json::as_str), Some("mp-int"));
    let series = v.get("series").expect("observed run embeds series");
    let samples = series.get("samples").and_then(Json::as_u64).unwrap() as usize;
    assert!(samples > 0);
    // Utilization series stays within [0, 1].
    for u in series
        .get("mean_link_utilization")
        .and_then(Json::as_arr)
        .unwrap()
    {
        let u = u.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
    // State fractions at each sample sum to ~1 across the five states.
    let fractions = series.get("state_fraction").and_then(Json::as_obj).unwrap();
    for s in 0..samples {
        let total: f64 = fractions
            .iter()
            .map(|(_, arr)| arr.as_arr().unwrap()[s].as_f64().unwrap())
            .sum();
        assert!(
            (total - 1.0).abs() < 0.01,
            "state fractions at sample {s} sum to {total}"
        );
    }
}
