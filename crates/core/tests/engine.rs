//! Engine integration tests: parallel execution is bit-identical to
//! serial, and an experiment prepares each workload exactly once.

use commsense_apps::{AppSpec, PreparedWorkload};
use commsense_core::engine::{Runner, WorkloadCache};
use commsense_core::experiment::{base_comparison_requests, bisection_plan, ctx_switch_plan};
use commsense_machine::{MachineConfig, Mechanism};
use commsense_workloads::bipartite::Em3dParams;
use commsense_workloads::moldyn::MoldynParams;
use commsense_workloads::sparse::IccgParams;
use commsense_workloads::unstruct::UnstrucParams;

fn small_suite() -> Vec<AppSpec> {
    let mut em = Em3dParams::small();
    em.iterations = 2;
    vec![
        AppSpec::Em3d(em),
        AppSpec::Unstruc(UnstrucParams::small()),
        AppSpec::Iccg(IccgParams::small()),
        AppSpec::Moldyn(MoldynParams::small()),
    ]
}

/// Every measured point is a pure function of its request, and the runner
/// keys results by request index, so a parallel run must reproduce the
/// serial run bit for bit — runtimes, verification, error bounds, volume
/// counters, histograms, everything `RunResult` carries.
#[test]
fn parallel_runs_are_bit_identical_to_serial() {
    let cfg = MachineConfig::alewife();
    for spec in small_suite() {
        let requests = base_comparison_requests(&spec, &cfg);
        let serial = Runner::serial().run(&requests);
        let parallel = Runner::new(4).run(&requests);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert!(s.verified, "{} {} must verify", s.app, s.mechanism);
            assert_eq!(
                format!("{s:?}"),
                format!("{p:?}"),
                "{} {}: parallel result diverged from serial",
                s.app,
                s.mechanism
            );
        }
    }
}

/// The same holds through plan assembly: sweeps built from a parallel run
/// match sweeps built from a serial run point for point.
#[test]
fn plan_sweeps_are_identical_across_job_counts() {
    let cfg = MachineConfig::alewife();
    let mut em = Em3dParams::small();
    em.iterations = 2;
    let spec = AppSpec::Em3d(em);
    let mechs = [Mechanism::SharedMem, Mechanism::MsgPoll];
    let plan = bisection_plan(&spec, &mechs, &cfg, &[0.0, 8.0, 12.0], 64);
    let a = plan.run(&Runner::serial());
    let b = plan.run(&Runner::new(8));
    assert_eq!(a.len(), b.len());
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.mechanism, sb.mechanism);
        assert_eq!(sa.runtimes(), sb.runtimes());
        for (pa, pb) in sa.points.iter().zip(&sb.points) {
            assert_eq!(pa.x, pb.x);
            assert_eq!(pa.result.max_abs_err, pb.result.max_abs_err);
            assert_eq!(pa.result.verified, pb.result.verified);
        }
    }
}

/// A whole sweep — every mechanism, every latency point — must generate
/// and solve its workload exactly once, sharing the preparation by `Arc`.
#[test]
fn sweep_prepares_the_workload_exactly_once() {
    let cfg = MachineConfig::alewife();
    let mut em = Em3dParams::small();
    em.iterations = 1;
    let spec = AppSpec::Em3d(em);
    let plan = ctx_switch_plan(&spec, &Mechanism::ALL, &cfg, &[50, 100, 400]);
    let mut cache = WorkloadCache::new();
    let sweeps = plan.run_with(&Runner::serial(), &mut cache);
    assert_eq!(sweeps.len(), Mechanism::ALL.len());
    assert_eq!(
        cache.len(),
        1,
        "one spec at one machine size = one preparation"
    );

    // The cached entry is shared, not copied, on every later lookup.
    let (a, b) = (cache.get(&spec, cfg.nodes), cache.get(&spec, cfg.nodes));
    match (&a, &b) {
        (PreparedWorkload::Em3d(x), PreparedWorkload::Em3d(y)) => {
            assert!(std::sync::Arc::ptr_eq(x, y), "lookups must share one Arc");
        }
        _ => panic!("expected an EM3D preparation"),
    }
    assert_eq!(cache.len(), 1);
}

/// One cache threaded through several plans (as `repro` does) keeps a
/// single preparation per distinct `(spec, nprocs)` across all of them.
#[test]
fn cache_is_shared_across_plans() {
    let cfg = MachineConfig::alewife();
    let suite = small_suite();
    let mechs = [Mechanism::SharedMem, Mechanism::MsgPoll];
    let runner = Runner::from_env();
    let mut cache = WorkloadCache::new();
    for spec in &suite {
        bisection_plan(spec, &mechs, &cfg, &[0.0, 12.0], 64).run_with(&runner, &mut cache);
    }
    assert_eq!(cache.len(), suite.len());
    for spec in &suite {
        ctx_switch_plan(spec, &mechs, &cfg, &[50, 400]).run_with(&runner, &mut cache);
    }
    assert_eq!(
        cache.len(),
        suite.len(),
        "second round of plans must reuse every preparation"
    );
}
