//! Runner fault tolerance: a request that panics deterministically must
//! not kill its sweep. The poisoned point is retried a bounded number of
//! times, reported failed, and — with a store attached — quarantined so
//! warm re-runs skip it instead of re-panicking.

use std::sync::Arc;

use commsense_apps::AppSpec;
use commsense_core::engine::{ExperimentPlan, RunRequest, Runner, WorkloadCache};
use commsense_core::store::ResultStore;
use commsense_machine::{MachineConfig, Mechanism};
use commsense_workloads::bipartite::Em3dParams;

/// Keeps the deliberate `INJECTED-FAULT` panics out of the test output
/// (they are caught by the runner; only the default hook's backtrace
/// spam would escape). Anything else still reports normally.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("INJECTED-FAULT") {
                prev(info);
            }
        }));
    });
}

/// A two-mechanism, three-point plan (x = processor MHz, so every point
/// is a distinct machine and a distinct store key) whose mp-poll point
/// at x=16 panics deterministically via `MachineConfig::inject_panic`.
fn poisoned_plan(cfg: &MachineConfig) -> ExperimentPlan {
    let mut em = Em3dParams::small();
    em.iterations = 1;
    let spec = AppSpec::Em3d(em);
    let mut plan = ExperimentPlan::new("EM3D");
    for &mech in &[Mechanism::SharedMem, Mechanism::MsgPoll] {
        for (j, &x) in [14.0f64, 16.0, 20.0].iter().enumerate() {
            let mut cfg = cfg.clone().with_mechanism(mech);
            cfg.cpu_mhz = x;
            cfg.inject_panic = mech == Mechanism::MsgPoll && j == 1;
            let request = plan.add_request(RunRequest {
                spec: spec.clone(),
                mechanism: mech,
                cfg,
            });
            plan.add_point(mech, x, request);
        }
    }
    plan
}

#[test]
fn poisoned_point_fails_without_killing_the_sweep() {
    silence_injected_panics();
    let cfg = MachineConfig::alewife();
    let plan = poisoned_plan(&cfg);
    let mut cache = WorkloadCache::new();
    let run = plan.run_reported(&Runner::serial(), &mut cache);

    // The sweep completed: both curves exist, only the poisoned point is
    // missing from the mp-poll curve.
    assert_eq!(run.sweeps.len(), 2);
    assert_eq!(run.sweeps[0].mechanism, Mechanism::SharedMem);
    assert_eq!(run.sweeps[0].points.len(), 3);
    assert_eq!(run.sweeps[1].mechanism, Mechanism::MsgPoll);
    assert_eq!(run.sweeps[1].points.len(), 2);
    assert!(run.sweeps[1].point_at(16.0).is_none());
    assert_eq!((run.simulated, run.cached), (5, 0));

    // The failure is reported, with the configured retry count honored:
    // the default one retry means two attempts.
    assert_eq!(run.failed.len(), 1);
    let f = &run.failed[0];
    assert_eq!(f.mechanism, Mechanism::MsgPoll);
    assert_eq!(f.x, 16.0);
    assert_eq!(f.attempts, 2);
    assert!(
        f.message.contains("INJECTED-FAULT"),
        "failure must carry the panic message, got {:?}",
        f.message
    );

    // Raising the retry budget raises the attempt count.
    let run = plan.run_reported(&Runner::serial().with_retries(3), &mut cache);
    assert_eq!(run.failed[0].attempts, 4);
}

#[test]
fn serial_and_parallel_report_identical_outcomes() {
    silence_injected_panics();
    let cfg = MachineConfig::alewife();
    let plan = poisoned_plan(&cfg);
    let mut cache = WorkloadCache::new();
    let serial = plan.run_reported(&Runner::serial(), &mut cache);
    let parallel = plan.run_reported(&Runner::new(4), &mut cache);
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "failure reporting must be deterministic across job counts"
    );
}

#[test]
fn quarantine_skips_the_poisoned_point_on_warm_reruns() {
    silence_injected_panics();
    let dir = std::env::temp_dir().join(format!(
        "commsense-store-test-quarantine-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ResultStore::open(&dir).expect("open store"));
    let cfg = MachineConfig::alewife();
    let plan = poisoned_plan(&cfg);
    let mut cache = WorkloadCache::new();

    // Cold run: the poisoned point exhausts its attempts and lands in
    // quarantine; the five good points are written through.
    let runner = Runner::serial().with_store(store.clone());
    let cold = plan.run_reported(&runner, &mut cache);
    assert_eq!((cold.simulated, cold.cached), (5, 0));
    assert_eq!(cold.failed[0].attempts, 2);

    // Warm run, fresh runner: the good points replay from the store and
    // the poisoned point is skipped outright — zero attempts, sweep still
    // completes with the same shape.
    let warm = plan.run_reported(&Runner::serial().with_store(store.clone()), &mut cache);
    assert_eq!((warm.simulated, warm.cached), (0, 5));
    assert_eq!(warm.failed.len(), 1);
    assert_eq!(warm.failed[0].attempts, 0);
    assert!(warm.failed[0].message.contains("INJECTED-FAULT"));
    assert_eq!(warm.sweeps[1].points.len(), 2);

    // Lifting the quarantine makes the runner try again.
    let poisoned = plan
        .requests()
        .iter()
        .find(|r| r.cfg.inject_panic)
        .expect("plan has a poisoned request");
    store.clear_quarantine(poisoned);
    let retried = plan.run_reported(&Runner::serial().with_store(store.clone()), &mut cache);
    assert_eq!(retried.failed[0].attempts, 2);
    assert_eq!((retried.simulated, retried.cached), (0, 5));
}
