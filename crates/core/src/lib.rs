//! The sensitivity-analysis framework: the paper's primary contribution as
//! a reusable library.
//!
//! The paper's insight is that the *relative* performance of communication
//! mechanisms depends on two machine ratios — bisection bandwidth per
//! processor cycle, and network latency in processor cycles — and that a
//! single flexible machine can be used as an emulator to sweep both. This
//! crate packages those sweeps over the `commsense` machine emulator:
//!
//! * [`engine`] — the experiment engine: [`engine::ExperimentPlan`]s of
//!   indexed run requests, a [`engine::Runner`] executing them on a scoped
//!   thread pool with bit-identical-to-serial results, and a
//!   [`engine::WorkloadCache`] sharing each prepared workload (graph,
//!   reference solution, exchange plans) across all points and mechanisms.
//! * [`experiment`] — the three parametric experiments of §5 as plan
//!   builders: bisection emulation via cross-traffic (Figures 7 and 8),
//!   latency emulation via clock scaling (Figure 9), and uniform-latency
//!   emulation via context-switching (Figure 10), plus the
//!   communication-volume study (Figure 5) and the base-machine comparison
//!   (Figure 4).
//! * [`machines`] — the Table 1 dataset of 32-processor machine parameters
//!   and its Table 2 recalculation in local-cache-miss units.
//! * [`regions`] — classification of measured curves into the paper's
//!   Latency Hiding / Latency Dominated / Congestion Dominated regions
//!   (Figures 1 and 2), and crossover detection between mechanisms.
//! * [`report`] — ASCII tables and CSV output for every figure and table.
//! * [`manifest`] — self-describing JSON run manifests (versioned by
//!   [`manifest::MANIFEST_SCHEMA_VERSION`]) for observability artifacts,
//!   validated with the dependency-free parser in [`json`].
//! * [`store`] — a persistent, content-addressed [`store::ResultStore`]:
//!   finished runs are durable units of work keyed by a stable hash of
//!   their request, so interrupted sweeps resume instead of restarting
//!   and a poisoned point is quarantined instead of killing the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod json;
pub mod machines;
pub mod manifest;
pub mod model;
pub mod regions;
pub mod report;
pub mod store;
pub mod survey;
