//! Region classification and crossover detection (Figures 1 and 2).
//!
//! The paper frames its results with two conceptual figures: as bandwidth
//! falls (or latency rises), an application's runtime curve passes through
//! a *Latency Hiding* region (flat — slack absorbs the change), a *Latency
//! Dominated* region (roughly linear growth), and — for bandwidth — a
//! *Congestion Dominated* region where queueing makes growth superlinear.
//! This module classifies measured curves into those regions and finds the
//! crossover points between two mechanisms' curves.

use crate::experiment::Sweep;

/// The paper's performance regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Performance is insensitive to the swept parameter.
    LatencyHiding,
    /// Performance degrades roughly linearly.
    LatencyDominated,
    /// Performance degrades superlinearly (queueing).
    CongestionDominated,
}

impl Region {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Region::LatencyHiding => "latency-hiding",
            Region::LatencyDominated => "latency-dominated",
            Region::CongestionDominated => "congestion-dominated",
        }
    }
}

/// A classified segment of a curve: between `x_lo` and `x_hi` (in sweep
/// order) the curve behaves as `region`.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment start (first point's x).
    pub x_lo: f64,
    /// Segment end (second point's x).
    pub x_hi: f64,
    /// Classification.
    pub region: Region,
}

/// Classifies each adjacent pair of sweep points by its *stress slope*.
///
/// The sweep must be ordered from least to most stressed (bandwidth sweeps
/// go from high to low bandwidth; latency sweeps from low to high
/// latency). For each segment the relative runtime growth is compared to
/// the relative stress growth: below `flat_tol` relative growth is
/// latency-hiding; growth up to `super_ratio` times the stress growth is
/// latency-dominated; beyond that, congestion-dominated.
///
/// # Panics
///
/// Panics if the sweep has fewer than two points.
pub fn classify(sweep: &Sweep, stress: &[f64], flat_tol: f64, super_ratio: f64) -> Vec<Segment> {
    let runtimes = sweep.runtimes();
    assert!(runtimes.len() >= 2, "need at least two points to classify");
    assert_eq!(runtimes.len(), stress.len(), "one stress value per point");
    let mut segments = Vec::new();
    for i in 1..runtimes.len() {
        let growth = runtimes[i] as f64 / runtimes[i - 1] as f64 - 1.0;
        let stress_growth = (stress[i] / stress[i - 1] - 1.0).max(1e-12);
        let region = if growth <= flat_tol {
            Region::LatencyHiding
        } else if growth <= super_ratio * stress_growth {
            Region::LatencyDominated
        } else {
            Region::CongestionDominated
        };
        segments.push(Segment {
            x_lo: sweep.points[i - 1].x,
            x_hi: sweep.points[i].x,
            region,
        });
    }
    segments
}

/// Finds the crossover `x` where curve `a` first becomes slower than curve
/// `b`, interpolating linearly between sweep points. Returns `None` if `a`
/// never crosses above `b` (or starts above it).
///
/// Both sweeps must be measured at identical `x` values in identical
/// order.
pub fn crossover(a: &Sweep, b: &Sweep) -> Option<f64> {
    assert_eq!(a.points.len(), b.points.len(), "sweeps must align");
    let mut prev: Option<(f64, f64)> = None; // (x, diff)
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert!((pa.x - pb.x).abs() < 1e-9, "sweeps must share x values");
        let diff = pa.result.runtime_cycles as f64 - pb.result.runtime_cycles as f64;
        if let Some((px, pdiff)) = prev {
            if pdiff <= 0.0 && diff > 0.0 {
                // Linear interpolation of the zero crossing.
                let t = pdiff / (pdiff - diff);
                return Some(px + t * (pa.x - px));
            }
        } else if diff > 0.0 {
            return None; // starts above
        }
        prev = Some((pa.x, diff));
    }
    None
}

/// Test-support helpers shared with sibling modules' tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use crate::experiment::{Sweep, SweepPoint};
    use commsense_machine::Mechanism;

    /// Builds a sweep with synthetic runtimes `f(x)` carried on a cheap
    /// real run (only `x` and `runtime_cycles` matter to the consumers).
    pub fn synthetic_sweep(xs: &[f64], f: impl Fn(f64) -> u64) -> Sweep {
        let carrier = commsense_apps::run_app(
            &commsense_apps::AppSpec::Em3d({
                let mut p = commsense_workloads::bipartite::Em3dParams::small();
                p.nodes = 64;
                p.degree = 2;
                p.iterations = 1;
                p
            }),
            Mechanism::MsgPoll,
            &commsense_machine::MachineConfig::tiny(),
        );
        Sweep {
            app: "SYNTH",
            mechanism: Mechanism::MsgPoll,
            points: xs
                .iter()
                .map(|&x| {
                    let mut r = carrier.clone();
                    r.runtime_cycles = f(x);
                    SweepPoint { x, result: r }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_sweep(xs: &[f64], runtimes: &[u64]) -> Sweep {
        let i = std::cell::Cell::new(0usize);
        super::tests_support::synthetic_sweep(xs, |_| {
            let k = i.get();
            i.set(k + 1);
            runtimes[k.min(runtimes.len() - 1)]
        })
    }

    #[test]
    fn classify_three_regions() {
        // Stress doubles each step; runtime: flat, linear-ish, explosive.
        let s = fake_sweep(&[18.0, 9.0, 4.5, 2.25], &[100, 102, 160, 1000]);
        let stress = [1.0, 2.0, 4.0, 8.0];
        let segs = classify(&s, &stress, 0.05, 1.2);
        assert_eq!(segs[0].region, Region::LatencyHiding);
        assert_eq!(segs[1].region, Region::LatencyDominated);
        assert_eq!(segs[2].region, Region::CongestionDominated);
    }

    #[test]
    fn crossover_interpolates() {
        let a = fake_sweep(&[18.0, 12.0, 6.0], &[100, 100, 300]);
        let b = fake_sweep(&[18.0, 12.0, 6.0], &[150, 150, 150]);
        // a crosses b between 12 and 6: diff goes -50 -> +150 => t=0.25.
        let x = crossover(&a, &b).expect("crossover exists");
        assert!((x - 10.5).abs() < 1e-9, "crossover at {x}");
    }

    #[test]
    fn no_crossover_when_always_faster() {
        let a = fake_sweep(&[18.0, 6.0], &[100, 120]);
        let b = fake_sweep(&[18.0, 6.0], &[150, 150]);
        assert_eq!(crossover(&a, &b), None);
    }

    #[test]
    fn region_labels() {
        assert_eq!(Region::CongestionDominated.label(), "congestion-dominated");
    }
}
