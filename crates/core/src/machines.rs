//! Table 1 / Table 2: parameter estimates for 32-processor machines.
//!
//! The paper grounds its sweeps in a survey of contemporary machines:
//! Table 1 lists processor clock, bisection bandwidth, one-way network
//! latency for a 24-byte packet, and remote/local miss latencies; Table 2
//! recalculates bandwidth and latency in units of the local cache-miss
//! time, the right frame of reference for memory-bound applications
//! (§5.4).

use commsense_mesh::TopoSpec;

/// One row of Table 1 (32-processor configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRow {
    /// Machine name.
    pub name: &'static str,
    /// Processor clock in MHz (projected/simulated entries flagged below).
    pub proc_mhz: f64,
    /// Network topology description.
    pub topology: &'static str,
    /// Bisection bandwidth in Mbytes/s (`None` where the study simulated
    /// no network).
    pub bisection_mb_s: Option<f64>,
    /// One-way network latency for a 24-byte packet, in processor cycles
    /// (`None` where unknown).
    pub net_latency_cycles: Option<f64>,
    /// Average remote-miss latency in cycles (`None` for machines without
    /// hardware shared memory).
    pub remote_miss_cycles: Option<f64>,
    /// Local cache-miss latency in cycles.
    pub local_miss_cycles: f64,
    /// Whether the clock is projected or simulated rather than shipped.
    pub estimated: bool,
}

impl MachineRow {
    /// Bisection bandwidth in bytes per processor cycle (Table 1's
    /// `bytes/cycle` column).
    pub fn bytes_per_cycle(&self) -> Option<f64> {
        self.bisection_mb_s.map(|mb| mb / self.proc_mhz)
    }

    /// The nearest emulatable [`TopoSpec`] for this machine's interconnect
    /// at its 32-processor configuration: meshes and tori collapse to their
    /// 2-D equivalents, the CM-5's fat tree to an arity the leaf count
    /// supports. `None` for rings, clustered buses, hypercubes, and rows
    /// without a simulated network.
    pub fn native_topo(&self) -> Option<TopoSpec> {
        let kind = if self.topology.contains("Mesh") {
            "mesh"
        } else if self.topology.contains("Torus") {
            "torus"
        } else if self.topology.contains("Fat-Tree") {
            "fat-tree"
        } else {
            return None;
        };
        Some(TopoSpec::with_nodes(kind, 32))
    }

    /// Table 2: bisection bandwidth in bytes per local-miss time.
    pub fn bytes_per_local_miss(&self) -> Option<f64> {
        self.bytes_per_cycle().map(|b| b * self.local_miss_cycles)
    }

    /// Table 2: network latency in local-miss times.
    pub fn latency_in_local_misses(&self) -> Option<f64> {
        self.net_latency_cycles.map(|l| l / self.local_miss_cycles)
    }
}

/// The Table 1 dataset.
pub fn table1() -> Vec<MachineRow> {
    let row = |name,
               proc_mhz,
               topology,
               bisection_mb_s,
               net_latency_cycles,
               remote_miss_cycles,
               local_miss_cycles,
               estimated| MachineRow {
        name,
        proc_mhz,
        topology,
        bisection_mb_s,
        net_latency_cycles,
        remote_miss_cycles,
        local_miss_cycles,
        estimated,
    };
    vec![
        row(
            "MIT Alewife",
            20.0,
            "4x8 Mesh",
            Some(360.0),
            Some(15.0),
            Some(50.0),
            11.0,
            false,
        ),
        row(
            "TMC CM5",
            33.0,
            "4-ary Fat-Tree",
            Some(640.0),
            Some(50.0),
            None,
            16.0,
            false,
        ),
        row(
            "KSR-2",
            20.0,
            "Ring",
            Some(1000.0),
            None,
            Some(126.0),
            18.0,
            false,
        ),
        row(
            "MIT J-Machine",
            12.5,
            "4x4x2 Mesh",
            Some(3200.0),
            Some(7.0),
            None,
            7.0,
            false,
        ),
        row(
            "MIT M-Machine",
            100.0,
            "4x4x2 Mesh",
            Some(12800.0),
            Some(10.0),
            Some(154.0),
            21.0,
            true,
        ),
        row(
            "Intel Delta",
            40.0,
            "4x8 Mesh",
            Some(216.0),
            Some(15.0),
            None,
            10.0,
            false,
        ),
        row(
            "Intel Paragon",
            50.0,
            "4x8 Mesh",
            Some(2800.0),
            Some(12.0),
            None,
            10.0,
            false,
        ),
        row(
            "Stanford DASH",
            33.0,
            "2x4 clusters",
            Some(480.0),
            Some(31.0),
            Some(120.0),
            30.0,
            false,
        ),
        row(
            "Stanford FLASH",
            200.0,
            "4x8 Mesh",
            Some(3200.0),
            Some(62.0),
            Some(352.0),
            40.0,
            true,
        ),
        row(
            "Wisconsin T0",
            200.0,
            "none simulated",
            None,
            Some(200.0),
            Some(1461.0),
            40.0,
            true,
        ),
        row(
            "Wisconsin T1",
            200.0,
            "none simulated",
            None,
            Some(200.0),
            Some(401.0),
            40.0,
            true,
        ),
        row(
            "Cray T3D",
            150.0,
            "4x2x2 Torus",
            Some(4800.0),
            Some(15.0),
            Some(100.0),
            23.0,
            false,
        ),
        row(
            "Cray T3E",
            300.0,
            "4x4x2 Torus",
            Some(19200.0),
            Some(110.0),
            Some(450.0),
            80.0,
            false,
        ),
        row(
            "SGI Origin",
            200.0,
            "Hypercube",
            Some(10800.0),
            Some(60.0),
            Some(150.0),
            61.0,
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(name: &str) -> MachineRow {
        table1()
            .into_iter()
            .find(|r| r.name == name)
            .expect("machine present")
    }

    #[test]
    fn fourteen_machines() {
        assert_eq!(table1().len(), 14);
    }

    #[test]
    fn alewife_bytes_per_cycle_is_18() {
        let a = find("MIT Alewife");
        assert!((a.bytes_per_cycle().unwrap() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn table2_alewife_matches_paper() {
        // Table 2: Alewife = 198 bytes/local-miss, 1.36 -> "1.3" miss times.
        let a = find("MIT Alewife");
        assert!((a.bytes_per_local_miss().unwrap() - 198.0).abs() < 1.0);
        assert!((a.latency_in_local_misses().unwrap() - 1.36).abs() < 0.1);
    }

    #[test]
    fn table2_jmachine_matches_paper() {
        // J-Machine: 256 bytes/cycle x 7-cycle local miss = 1792.
        let j = find("MIT J-Machine");
        assert!((j.bytes_per_cycle().unwrap() - 256.0).abs() < 1e-9);
        assert!((j.bytes_per_local_miss().unwrap() - 1792.0).abs() < 1.0);
        assert!((j.latency_in_local_misses().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn simulated_machines_have_no_bisection() {
        assert_eq!(find("Wisconsin T0").bytes_per_cycle(), None);
        assert_eq!(find("Wisconsin T1").bytes_per_local_miss(), None);
    }

    #[test]
    fn delta_is_the_low_bisection_outlier() {
        // Table 1's lowest bytes/cycle among real networks is the Delta
        // at 5.4 — the region where the paper expects crossovers.
        let d = find("Intel Delta");
        assert!((d.bytes_per_cycle().unwrap() - 5.4).abs() < 0.01);
        let min = table1()
            .iter()
            .filter_map(|r| r.bytes_per_cycle())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, d.bytes_per_cycle().unwrap());
    }

    #[test]
    fn estimated_flags() {
        assert!(find("Stanford FLASH").estimated);
        assert!(!find("Cray T3D").estimated);
    }

    #[test]
    fn native_topologies_map_to_specs() {
        assert_eq!(find("MIT Alewife").native_topo(), Some(TopoSpec::alewife()));
        let cm5 = find("TMC CM5").native_topo().expect("fat tree");
        assert_eq!(cm5.kind(), "fat-tree");
        assert_eq!(cm5.num_nodes(), 32);
        let t3d = find("Cray T3D").native_topo().expect("torus");
        assert_eq!(t3d.kind(), "torus");
        assert_eq!(t3d.num_nodes(), 32);
        assert_eq!(find("KSR-2").native_topo(), None);
        assert_eq!(find("Wisconsin T0").native_topo(), None);
    }
}
