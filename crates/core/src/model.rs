//! The §2 performance model, made quantitative.
//!
//! Section 2 of the paper sketches how runtime should respond to bandwidth
//! and latency: flat while slack hides communication (*Latency Hiding*),
//! growing with the reciprocal of bandwidth once stalls appear (*Latency
//! Dominated*), and growing superlinearly once queueing sets in
//! (*Congestion Dominated*); under a latency sweep, a mechanism's slope is
//! the product of its blocking-operation count and the fraction of latency
//! it cannot overlap.
//!
//! This module fits those functional forms to measured sweeps:
//!
//! * [`fit_bandwidth`] — `T(b) = c0 + c1/b + c2/b²`, whose three terms are
//!   exactly the three regions.
//! * [`fit_latency`] — `T(L) = d0 + d1·L`, whose slope `d1` estimates the
//!   number of unhidden round trips on the critical path.
//!
//! Both return goodness-of-fit so tests can assert the model actually
//! explains the measurements, and both predict held-out points.

use crate::experiment::Sweep;

/// Solves the 3×3 normal equations `A x = y` by Gaussian elimination with
/// partial pivoting. Returns `None` for singular systems.
fn solve3(mut a: [[f64; 3]; 3], mut y: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        y.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, entry) in a[row].iter_mut().enumerate().skip(col) {
                *entry -= f * pivot_row[k];
            }
            y[row] -= f * y[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = y[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Least-squares fit of `y ≈ Σ c_i · basis_i(x)` for three basis functions.
fn lsq3(xs: &[f64], ys: &[f64], basis: impl Fn(f64) -> [f64; 3]) -> Option<([f64; 3], f64)> {
    assert_eq!(xs.len(), ys.len());
    let mut ata = [[0.0; 3]; 3];
    let mut aty = [0.0; 3];
    for (&x, &y) in xs.iter().zip(ys) {
        let b = basis(x);
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += b[i] * b[j];
            }
            aty[i] += b[i] * y;
        }
    }
    let c = solve3(ata, aty)?;
    // R² against the mean.
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let b = basis(x);
            let pred = c[0] * b[0] + c[1] * b[1] + c[2] * b[2];
            (y - pred).powi(2)
        })
        .sum();
    let r2 = if ss_tot < 1e-9 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some((c, r2))
}

/// Fitted bandwidth response `T(b) = c0 + c1/b + c2/b²` (Figure 1's
/// regions as terms: base, latency-dominated, congestion-dominated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthModel {
    /// Bandwidth-independent runtime (compute + hidden communication).
    pub c0: f64,
    /// Latency-dominated coefficient (cycles · bytes/cycle).
    pub c1: f64,
    /// Congestion-dominated coefficient.
    pub c2: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

impl BandwidthModel {
    /// Predicted runtime at bisection `b` (bytes/cycle).
    ///
    /// # Panics
    ///
    /// Panics if `b <= 0`.
    pub fn predict(&self, b: f64) -> f64 {
        assert!(b > 0.0, "bandwidth must be positive");
        self.c0 + self.c1 / b + self.c2 / (b * b)
    }

    /// The bandwidth below which the congestion term exceeds the
    /// latency-dominated term (the Figure 1 region boundary), if the fit
    /// has a meaningful congestion component.
    pub fn congestion_knee(&self) -> Option<f64> {
        if self.c2 <= 0.0 || self.c1 <= 0.0 {
            return None;
        }
        Some(self.c2 / self.c1)
    }
}

/// Fits the bandwidth model to a sweep whose `x` is bisection bytes/cycle.
///
/// Returns `None` if the sweep has fewer than three points or the system
/// is degenerate.
pub fn fit_bandwidth(sweep: &Sweep) -> Option<BandwidthModel> {
    if sweep.points.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = sweep.points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.result.runtime_cycles as f64)
        .collect();
    let (c, r2) = lsq3(&xs, &ys, |x| [1.0, 1.0 / x, 1.0 / (x * x)])?;
    Some(BandwidthModel {
        c0: c[0],
        c1: c[1],
        c2: c[2],
        r2,
    })
}

/// Fitted latency response `T(L) = d0 + d1·L` (Figure 2: the slope is the
/// unhidden round-trip count on the critical path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Latency-independent runtime.
    pub d0: f64,
    /// Cycles of runtime per cycle of remote-miss latency.
    pub d1: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

impl LatencyModel {
    /// Predicted runtime at remote-miss latency `l` (cycles).
    pub fn predict(&self, l: f64) -> f64 {
        self.d0 + self.d1 * l
    }
}

/// Fits the latency model to a sweep whose `x` is remote-miss cycles.
pub fn fit_latency(sweep: &Sweep) -> Option<LatencyModel> {
    if sweep.points.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = sweep.points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.result.runtime_cycles as f64)
        .collect();
    // Reuse the 3-parameter solver with a dead third basis.
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-12 {
        return None;
    }
    let d1 = (n * sxy - sx * sy) / det;
    let d0 = (sy - d1 * sx) / n;
    let mean = sy / n;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (d0 + d1 * x)).powi(2))
        .sum();
    let r2 = if ss_tot < 1e-9 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LatencyModel { d0, d1, r2 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{bisection_sweep, ctx_switch_sweep};
    use commsense_apps::AppSpec;
    use commsense_machine::{MachineConfig, Mechanism};
    use commsense_workloads::bipartite::Em3dParams;

    fn em3d() -> AppSpec {
        let mut p = Em3dParams::small();
        p.nodes = 1000;
        p.iterations = 2;
        AppSpec::Em3d(p)
    }

    #[test]
    fn solve3_inverts_a_known_system() {
        // x = [1, 2, 3] under A = identity-ish.
        let a = [[2.0, 0.0, 0.0], [0.0, 4.0, 0.0], [1.0, 0.0, 1.0]];
        let y = [2.0, 8.0, 4.0];
        let x = solve3(a, y).expect("nonsingular");
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve3_rejects_singular() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert_eq!(solve3(a, [1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn bandwidth_model_recovers_synthetic_coefficients() {
        // Build a synthetic sweep T(b) = 100 + 200/b + 50/b^2 and refit.
        let sweep = crate::regions::tests_support::synthetic_sweep(
            &[18.0, 12.0, 8.0, 5.0, 3.0, 2.0],
            |b| (100.0 + 200.0 / b + 50.0 / (b * b)) as u64,
        );
        let m = fit_bandwidth(&sweep).expect("fit");
        assert!(m.r2 > 0.999, "r2 {}", m.r2);
        assert!((m.c0 - 100.0).abs() < 5.0, "c0 {}", m.c0);
        assert!((m.c1 - 200.0).abs() < 20.0, "c1 {}", m.c1);
    }

    #[test]
    fn latency_model_recovers_synthetic_line() {
        let sweep = crate::regions::tests_support::synthetic_sweep(&[30.0, 100.0, 400.0], |l| {
            (5_000.0 + 12.5 * l) as u64
        });
        let m = fit_latency(&sweep).expect("fit");
        assert!(m.r2 > 0.999);
        assert!((m.d1 - 12.5).abs() < 0.1, "slope {}", m.d1);
    }

    #[test]
    fn measured_latency_sweep_is_linear_for_sm_and_flat_for_mp() {
        let cfg = MachineConfig::alewife();
        let sweeps = ctx_switch_sweep(
            &em3d(),
            &[Mechanism::SharedMem, Mechanism::MsgPoll],
            &cfg,
            &[50, 100, 200, 400],
        );
        let sm = fit_latency(&sweeps[0]).expect("sm fit");
        let mp = fit_latency(&sweeps[1]).expect("mp fit");
        assert!(
            sm.r2 > 0.98,
            "the Figure 2 sm curve is linear: r2 {}",
            sm.r2
        );
        assert!(sm.d1 > 1.0, "sm has unhidden round trips: slope {}", sm.d1);
        assert!(mp.d1.abs() < 0.01, "mp is flat: slope {}", mp.d1);
    }

    #[test]
    fn measured_bandwidth_sweep_fits_and_interpolates() {
        let cfg = MachineConfig::alewife();
        let sweeps = bisection_sweep(
            &em3d(),
            &[Mechanism::SharedMem],
            &cfg,
            &[0.0, 6.0, 10.0, 14.0, 16.0],
            64,
        );
        let m = fit_bandwidth(&sweeps[0]).expect("fit");
        assert!(
            m.r2 > 0.85,
            "bandwidth model explains the sweep: r2 {}",
            m.r2
        );
        // Interpolate a held-out point (12 consumed = 6 B/cycle emulated).
        let held = bisection_sweep(&em3d(), &[Mechanism::SharedMem], &cfg, &[12.0], 64);
        let got = held[0].points[0].result.runtime_cycles as f64;
        let pred = m.predict(held[0].points[0].x);
        let err = (pred - got).abs() / got;
        assert!(
            err < 0.10,
            "prediction off by {:.1}% (pred {pred:.0}, got {got:.0})",
            err * 100.0
        );
    }
}
