//! The parametric experiments of §5.
//!
//! # Examples
//!
//! ```
//! use commsense_core::experiment::bisection_sweep;
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_apps::AppSpec;
//! use commsense_workloads::bipartite::Em3dParams;
//!
//! let mut p = Em3dParams::small();
//! p.iterations = 1;
//! let sweeps = bisection_sweep(
//!     &AppSpec::Em3d(p),
//!     &[Mechanism::MsgPoll],
//!     &MachineConfig::alewife(),
//!     &[0.0, 12.0],
//!     64,
//! );
//! sweeps[0].assert_verified();
//! assert_eq!(sweeps[0].points.len(), 2);
//! ```

use commsense_apps::{run_app, AppSpec, RunResult};
use commsense_machine::{LatencyEmulation, MachineConfig, Mechanism};
use commsense_mesh::CrossTrafficConfig;

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter (meaning depends on the sweep).
    pub x: f64,
    /// The measurement.
    pub result: RunResult,
}

/// One mechanism's curve across a sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Application name.
    pub app: &'static str,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Measured points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Runtime (cycles) at each point.
    pub fn runtimes(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.result.runtime_cycles).collect()
    }

    /// Asserts every point verified against its reference.
    ///
    /// # Panics
    ///
    /// Panics if any point failed verification.
    pub fn assert_verified(&self) {
        for p in &self.points {
            assert!(
                p.result.verified,
                "{} {} at x={} failed verification (err {})",
                self.app, self.mechanism, p.x, p.result.max_abs_err
            );
        }
    }
}

/// Analytic one-way network latency for a `bytes`-byte packet at the mean
/// hop distance, in processor cycles — the x-axis of Figure 9 (Table 1's
/// "Network Latency" metric).
pub fn one_way_latency_cycles(cfg: &MachineConfig, bytes: u32) -> f64 {
    let mesh = commsense_mesh::Mesh::new(cfg.net.width, cfg.net.height);
    let ps = mesh.mean_hops() * cfg.net.router_delay_ps as f64
        + bytes as f64 * cfg.net.ps_per_byte as f64;
    ps / cfg.clock().cycle_ps() as f64
}

/// Figure 4 / Figure 5: runs `spec` under every mechanism on the base
/// machine, returning the five results in [`Mechanism::ALL`] order.
pub fn base_comparison(spec: &AppSpec, cfg: &MachineConfig) -> Vec<RunResult> {
    Mechanism::ALL.iter().map(|&m| run_app(spec, m, cfg)).collect()
}

/// Figure 8 (and Figure 1's measured analogue): sweeps emulated bisection
/// bandwidth by consuming `consumed_bytes_per_cycle` of the base machine's
/// bisection with cross-traffic of `msg_bytes`-byte messages.
///
/// `x` of each point is the *emulated* bisection in bytes per processor
/// cycle (base bisection minus consumption), so curves read left-to-right
/// like the paper's Figure 8.
pub fn bisection_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    consumed_bytes_per_cycle: &[f64],
    msg_bytes: u32,
) -> Vec<Sweep> {
    let base = cfg.net.bisection_bytes_per_cycle(cfg.clock());
    mechanisms
        .iter()
        .map(|&mech| {
            let points = consumed_bytes_per_cycle
                .iter()
                .map(|&c| {
                    let mut cfg = cfg.clone().with_mechanism(mech);
                    if c > 0.0 {
                        cfg.cross_traffic = Some(CrossTrafficConfig::consuming(
                            c,
                            cfg.clock(),
                            msg_bytes,
                            cfg.net.height,
                        ));
                    }
                    SweepPoint { x: base - c, result: run_app(spec, mech, &cfg) }
                })
                .collect();
            Sweep { app: spec.name(), mechanism: mech, points }
        })
        .collect()
}

/// Figure 7: sensitivity to cross-traffic message length at a fixed
/// bisection consumption. `x` is the message length in bytes.
pub fn msg_len_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    consumed_bytes_per_cycle: f64,
    msg_lens: &[u32],
) -> Vec<Sweep> {
    mechanisms
        .iter()
        .map(|&mech| {
            let points = msg_lens
                .iter()
                .map(|&len| {
                    let mut cfg = cfg.clone().with_mechanism(mech);
                    cfg.cross_traffic = Some(CrossTrafficConfig::consuming(
                        consumed_bytes_per_cycle,
                        cfg.clock(),
                        len,
                        cfg.net.height,
                    ));
                    SweepPoint { x: len as f64, result: run_app(spec, mech, &cfg) }
                })
                .collect();
            Sweep { app: spec.name(), mechanism: mech, points }
        })
        .collect()
}

/// Figure 9 (and Figure 2's measured analogue): sweeps relative network
/// latency by scaling the processor clock against the fixed wall-clock
/// network. `x` is the one-way 24-byte latency in processor cycles.
pub fn clock_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    mhz_values: &[f64],
) -> Vec<Sweep> {
    mechanisms
        .iter()
        .map(|&mech| {
            let points = mhz_values
                .iter()
                .map(|&mhz| {
                    let cfg = cfg.clone().with_mechanism(mech).with_cpu_mhz(mhz);
                    let x = one_way_latency_cycles(&cfg, 24);
                    SweepPoint { x, result: run_app(spec, mech, &cfg) }
                })
                .collect();
            Sweep { app: spec.name(), mechanism: mech, points }
        })
        .collect()
}

/// Figure 10: uniform remote-miss latency emulation on an ideal network
/// (the paper's context-switch-to-delay-loop technique). Shared-memory
/// mechanisms sweep `latencies` (x = emulated remote-miss cycles);
/// message-passing mechanisms are run once at the base machine and
/// replicated flat for reference, exactly as the paper plots them.
pub fn ctx_switch_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    latencies: &[u64],
) -> Vec<Sweep> {
    mechanisms
        .iter()
        .map(|&mech| {
            if mech.is_shared_memory() {
                let points = latencies
                    .iter()
                    .map(|&lat| {
                        let mut cfg = cfg.clone().with_mechanism(mech);
                        cfg.latency_emulation = Some(LatencyEmulation::uniform(lat));
                        SweepPoint { x: lat as f64, result: run_app(spec, mech, &cfg) }
                    })
                    .collect();
                Sweep { app: spec.name(), mechanism: mech, points }
            } else {
                let result = run_app(spec, mech, &cfg.clone().with_mechanism(mech));
                let points = latencies
                    .iter()
                    .map(|&lat| SweepPoint { x: lat as f64, result: result.clone() })
                    .collect();
                Sweep { app: spec.name(), mechanism: mech, points }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsense_workloads::bipartite::Em3dParams;

    fn tiny_spec() -> AppSpec {
        let mut p = Em3dParams::small();
        p.iterations = 2;
        AppSpec::Em3d(p)
    }

    #[test]
    fn one_way_latency_matches_table1() {
        let cfg = MachineConfig::alewife();
        let lat = one_way_latency_cycles(&cfg, 24);
        assert!((13.0..18.0).contains(&lat), "Alewife 24B latency {lat} cycles");
    }

    #[test]
    fn base_comparison_covers_all_mechanisms() {
        let results = base_comparison(&tiny_spec(), &MachineConfig::alewife());
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.verified);
        }
    }

    #[test]
    fn bisection_sweep_shapes() {
        let cfg = MachineConfig::alewife();
        let sweeps = bisection_sweep(
            &tiny_spec(),
            &[Mechanism::SharedMem, Mechanism::MsgPoll],
            &cfg,
            &[0.0, 12.0],
            64,
        );
        assert_eq!(sweeps.len(), 2);
        for s in &sweeps {
            s.assert_verified();
            assert_eq!(s.points.len(), 2);
            assert!((s.points[0].x - 18.0).abs() < 0.1);
            assert!((s.points[1].x - 6.0).abs() < 0.1);
        }
        // Shared memory must degrade as bisection shrinks.
        let sm = &sweeps[0];
        assert!(sm.runtimes()[1] > sm.runtimes()[0]);
    }

    #[test]
    fn clock_sweep_scales_relative_latency() {
        let cfg = MachineConfig::alewife();
        let sweeps =
            clock_sweep(&tiny_spec(), &[Mechanism::SharedMem], &cfg, &[20.0, 14.0]);
        let s = &sweeps[0];
        s.assert_verified();
        // Slower clock => fewer cycles of relative network latency.
        assert!(s.points[1].x < s.points[0].x);
        assert!(s.runtimes()[1] < s.runtimes()[0]);
    }

    #[test]
    fn ctx_switch_sweep_flatlines_message_passing() {
        let cfg = MachineConfig::alewife();
        let sweeps = ctx_switch_sweep(
            &tiny_spec(),
            &[Mechanism::SharedMem, Mechanism::MsgPoll],
            &cfg,
            &[50, 400],
        );
        let sm = &sweeps[0];
        let mp = &sweeps[1];
        assert!(sm.runtimes()[1] > sm.runtimes()[0], "sm must degrade with latency");
        assert_eq!(mp.runtimes()[0], mp.runtimes()[1], "mp is plotted flat for reference");
    }
}
