//! The parametric experiments of §5, as pure plan builders.
//!
//! Each experiment (`bisection`, `msg_len`, `clock`, `ctx_switch`) is a
//! *plan builder* producing an [`ExperimentPlan`](crate::engine::ExperimentPlan):
//! an indexed list of run requests plus the recipe for folding results back
//! into per-mechanism [`Sweep`]s in deterministic order. Plans execute on a
//! [`Runner`](crate::engine::Runner) — serial or parallel, with identical
//! output — sharing one prepared workload (graph, reference solution,
//! exchange plans) across all points and mechanisms. The `*_sweep`
//! functions are convenience wrappers that build and immediately run the
//! plan on an environment-sized runner.
//!
//! # Examples
//!
//! ```
//! use commsense_core::experiment::bisection_sweep;
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_apps::AppSpec;
//! use commsense_workloads::bipartite::Em3dParams;
//!
//! let mut p = Em3dParams::small();
//! p.iterations = 1;
//! let sweeps = bisection_sweep(
//!     &AppSpec::Em3d(p),
//!     &[Mechanism::MsgPoll],
//!     &MachineConfig::alewife(),
//!     &[0.0, 12.0],
//!     64,
//! );
//! sweeps[0].assert_verified();
//! assert_eq!(sweeps[0].points.len(), 2);
//! ```

use commsense_apps::{AppSpec, RunResult};
use commsense_machine::{LatencyEmulation, MachineConfig, Mechanism};
use commsense_mesh::CrossTrafficConfig;

use crate::engine::{ExperimentPlan, RunRequest, Runner};

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter (meaning depends on the sweep).
    pub x: f64,
    /// The measurement.
    pub result: RunResult,
}

/// One mechanism's curve across a sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Application name.
    pub app: &'static str,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Measured points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Runtime (cycles) at each point.
    pub fn runtimes(&self) -> Vec<u64> {
        self.points
            .iter()
            .map(|p| p.result.runtime_cycles)
            .collect()
    }

    /// The point whose x value matches `x` approximately (within a 1e-6
    /// relative tolerance, absolute near zero). Sweep x values come from
    /// floating-point arithmetic — clock ratios, bandwidth subtractions —
    /// so exact `==` lookups are brittle.
    pub fn point_at(&self, x: f64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() <= 1e-6 * x.abs().max(1.0))
    }

    /// Asserts every point verified against its reference.
    ///
    /// # Panics
    ///
    /// Panics if any point failed verification.
    pub fn assert_verified(&self) {
        for p in &self.points {
            assert!(
                p.result.verified,
                "{} {} at x={} failed verification (err {})",
                self.app, self.mechanism, p.x, p.result.max_abs_err
            );
        }
    }
}

/// Analytic one-way network latency for a `bytes`-byte packet at the mean
/// hop distance, in processor cycles — the x-axis of Figure 9 (Table 1's
/// "Network Latency" metric).
pub fn one_way_latency_cycles(cfg: &MachineConfig, bytes: u32) -> f64 {
    let topo = cfg.net.topo.build();
    let ps = topo.mean_hops() * cfg.net.router_delay_ps as f64
        + bytes as f64 * cfg.net.ps_per_byte as f64;
    ps / cfg.clock().cycle_ps() as f64
}

/// Figure 4 / Figure 5: the base-machine requests for `spec` under every
/// mechanism, in [`Mechanism::ALL`] order.
pub fn base_comparison_requests(spec: &AppSpec, cfg: &MachineConfig) -> Vec<RunRequest> {
    Mechanism::ALL
        .iter()
        .map(|&mech| RunRequest {
            spec: spec.clone(),
            mechanism: mech,
            cfg: cfg.clone().with_mechanism(mech),
        })
        .collect()
}

/// Figure 4 / Figure 5: runs `spec` under every mechanism on the base
/// machine, returning the five results in [`Mechanism::ALL`] order.
pub fn base_comparison(spec: &AppSpec, cfg: &MachineConfig) -> Vec<RunResult> {
    Runner::from_env().run(&base_comparison_requests(spec, cfg))
}

/// Figure 8 (and Figure 1's measured analogue): plans a sweep of emulated
/// bisection bandwidth, consuming `consumed_bytes_per_cycle` of the base
/// machine's bisection with cross-traffic of `msg_bytes`-byte messages.
///
/// `x` of each point is the *emulated* bisection in bytes per processor
/// cycle (base bisection minus consumption), so curves read left-to-right
/// like the paper's Figure 8.
pub fn bisection_plan(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    consumed_bytes_per_cycle: &[f64],
    msg_bytes: u32,
) -> ExperimentPlan {
    let base = cfg.net.bisection_bytes_per_cycle(cfg.clock());
    let mut plan = ExperimentPlan::new(spec.name());
    for &mech in mechanisms {
        for &c in consumed_bytes_per_cycle {
            let mut cfg = cfg.clone().with_mechanism(mech);
            if c > 0.0 {
                cfg.cross_traffic = Some(CrossTrafficConfig::consuming(
                    c,
                    cfg.clock(),
                    msg_bytes,
                    cfg.net.topo.build().io_streams(),
                ));
            }
            let idx = plan.add_request(RunRequest {
                spec: spec.clone(),
                mechanism: mech,
                cfg,
            });
            plan.add_point(mech, base - c, idx);
        }
    }
    plan
}

/// Figure 8 as a one-call sweep: builds [`bisection_plan`] and runs it on
/// an environment-sized runner.
pub fn bisection_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    consumed_bytes_per_cycle: &[f64],
    msg_bytes: u32,
) -> Vec<Sweep> {
    bisection_plan(spec, mechanisms, cfg, consumed_bytes_per_cycle, msg_bytes)
        .run(&Runner::from_env())
}

/// Figure 7: plans a sweep of cross-traffic message length at a fixed
/// bisection consumption. `x` is the message length in bytes.
pub fn msg_len_plan(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    consumed_bytes_per_cycle: f64,
    msg_lens: &[u32],
) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new(spec.name());
    for &mech in mechanisms {
        for &len in msg_lens {
            let mut cfg = cfg.clone().with_mechanism(mech);
            cfg.cross_traffic = Some(CrossTrafficConfig::consuming(
                consumed_bytes_per_cycle,
                cfg.clock(),
                len,
                cfg.net.topo.build().io_streams(),
            ));
            let idx = plan.add_request(RunRequest {
                spec: spec.clone(),
                mechanism: mech,
                cfg,
            });
            plan.add_point(mech, len as f64, idx);
        }
    }
    plan
}

/// Figure 7 as a one-call sweep.
pub fn msg_len_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    consumed_bytes_per_cycle: f64,
    msg_lens: &[u32],
) -> Vec<Sweep> {
    msg_len_plan(spec, mechanisms, cfg, consumed_bytes_per_cycle, msg_lens).run(&Runner::from_env())
}

/// Figure 9 (and Figure 2's measured analogue): plans a sweep of relative
/// network latency by scaling the processor clock against the fixed
/// wall-clock network. `x` is the one-way 24-byte latency in processor
/// cycles.
pub fn clock_plan(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    mhz_values: &[f64],
) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new(spec.name());
    for &mech in mechanisms {
        for &mhz in mhz_values {
            let cfg = cfg.clone().with_mechanism(mech).with_cpu_mhz(mhz);
            let x = one_way_latency_cycles(&cfg, 24);
            let idx = plan.add_request(RunRequest {
                spec: spec.clone(),
                mechanism: mech,
                cfg,
            });
            plan.add_point(mech, x, idx);
        }
    }
    plan
}

/// Figure 9 as a one-call sweep.
pub fn clock_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    mhz_values: &[f64],
) -> Vec<Sweep> {
    clock_plan(spec, mechanisms, cfg, mhz_values).run(&Runner::from_env())
}

/// Figure 10: plans uniform remote-miss latency emulation on an ideal
/// network (the paper's context-switch-to-delay-loop technique).
/// Shared-memory mechanisms sweep `latencies` (x = emulated remote-miss
/// cycles); message-passing mechanisms are run once at the base machine
/// and their single result is replicated flat across the x axis for
/// reference, exactly as the paper plots them.
pub fn ctx_switch_plan(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    latencies: &[u64],
) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new(spec.name());
    for &mech in mechanisms {
        if mech.is_shared_memory() {
            for &lat in latencies {
                let mut cfg = cfg.clone().with_mechanism(mech);
                cfg.latency_emulation = Some(LatencyEmulation::uniform(lat));
                let idx = plan.add_request(RunRequest {
                    spec: spec.clone(),
                    mechanism: mech,
                    cfg,
                });
                plan.add_point(mech, lat as f64, idx);
            }
        } else {
            let idx = plan.add_request(RunRequest {
                spec: spec.clone(),
                mechanism: mech,
                cfg: cfg.clone().with_mechanism(mech),
            });
            for &lat in latencies {
                plan.add_point(mech, lat as f64, idx);
            }
        }
    }
    plan
}

/// Figure 10 as a one-call sweep.
pub fn ctx_switch_sweep(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    cfg: &MachineConfig,
    latencies: &[u64],
) -> Vec<Sweep> {
    ctx_switch_plan(spec, mechanisms, cfg, latencies).run(&Runner::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> AppSpec {
        let mut p = commsense_workloads::bipartite::Em3dParams::small();
        p.iterations = 2;
        AppSpec::Em3d(p)
    }

    #[test]
    fn one_way_latency_matches_table1() {
        let cfg = MachineConfig::alewife();
        let lat = one_way_latency_cycles(&cfg, 24);
        assert!(
            (13.0..18.0).contains(&lat),
            "Alewife 24B latency {lat} cycles"
        );
    }

    #[test]
    fn base_comparison_covers_all_mechanisms() {
        let results = base_comparison(&tiny_spec(), &MachineConfig::alewife());
        assert_eq!(results.len(), 5);
        for (r, mech) in results.iter().zip(Mechanism::ALL) {
            assert!(r.verified);
            assert_eq!(
                r.mechanism, mech,
                "results must stay in Mechanism::ALL order"
            );
        }
    }

    #[test]
    fn bisection_sweep_shapes() {
        let cfg = MachineConfig::alewife();
        let sweeps = bisection_sweep(
            &tiny_spec(),
            &[Mechanism::SharedMem, Mechanism::MsgPoll],
            &cfg,
            &[0.0, 12.0],
            64,
        );
        assert_eq!(sweeps.len(), 2);
        for s in &sweeps {
            s.assert_verified();
            assert_eq!(s.points.len(), 2);
            assert!((s.points[0].x - 18.0).abs() < 0.1);
            assert!((s.points[1].x - 6.0).abs() < 0.1);
        }
        // Shared memory must degrade as bisection shrinks.
        let sm = &sweeps[0];
        assert!(sm.runtimes()[1] > sm.runtimes()[0]);
    }

    #[test]
    fn clock_sweep_scales_relative_latency() {
        let cfg = MachineConfig::alewife();
        let sweeps = clock_sweep(&tiny_spec(), &[Mechanism::SharedMem], &cfg, &[20.0, 14.0]);
        let s = &sweeps[0];
        s.assert_verified();
        // Slower clock => fewer cycles of relative network latency.
        assert!(s.points[1].x < s.points[0].x);
        assert!(s.runtimes()[1] < s.runtimes()[0]);
    }

    #[test]
    fn ctx_switch_sweep_flatlines_message_passing() {
        let cfg = MachineConfig::alewife();
        let sweeps = ctx_switch_sweep(
            &tiny_spec(),
            &[Mechanism::SharedMem, Mechanism::MsgPoll],
            &cfg,
            &[50, 400],
        );
        let sm = &sweeps[0];
        let mp = &sweeps[1];
        assert!(
            sm.runtimes()[1] > sm.runtimes()[0],
            "sm must degrade with latency"
        );
        assert_eq!(
            mp.runtimes()[0],
            mp.runtimes()[1],
            "mp is plotted flat for reference"
        );
    }

    #[test]
    fn ctx_switch_plan_shares_the_flat_mp_request() {
        let plan = ctx_switch_plan(
            &tiny_spec(),
            &Mechanism::ALL,
            &MachineConfig::alewife(),
            &[50, 400],
        );
        // 2 shared-memory mechanisms x 2 latencies + 3 message-passing
        // mechanisms x 1 base run.
        assert_eq!(plan.len(), 7);
    }

    #[test]
    fn point_at_tolerates_float_noise() {
        let cfg = MachineConfig::alewife();
        let sweeps = ctx_switch_sweep(&tiny_spec(), &[Mechanism::SharedMem], &cfg, &[100]);
        let p = sweeps[0].point_at(100.0).expect("point exists");
        assert_eq!(p.x, 100.0);
        assert!(sweeps[0].point_at(100.0 + 1e-5).is_some(), "near match");
        assert!(
            sweeps[0].point_at(120.0).is_none(),
            "far x values do not match"
        );
    }
}
