//! Surveying Table 1's machine design points with the emulator.
//!
//! §5 closes by relating the Alewife measurements to other machines'
//! (bisection bytes/cycle, network latency) ratios. This module makes that
//! an operation: [`config_for`] retargets the emulated network to a
//! surveyed machine's ratios (topology and clock stay fixed — "using the
//! machine as an emulator", §1.1), and [`survey`] runs an application
//! across every Table 1 row that has a physical network.

use commsense_apps::{AppSpec, RunResult};
use commsense_machine::{MachineConfig, Mechanism};

use crate::engine::{RunRequest, Runner};
use crate::machines::MachineRow;

/// One surveyed design point.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Machine name (Table 1).
    pub machine: &'static str,
    /// Bisection bytes per processor cycle.
    pub bytes_per_cycle: f64,
    /// One-way 24-byte latency in processor cycles.
    pub latency_cycles: f64,
    /// Results in the order of the surveyed mechanisms.
    pub results: Vec<RunResult>,
    /// The latency target was below the serialization floor and was
    /// clamped (very low-bandwidth machines).
    pub approx: bool,
}

impl SurveyRow {
    /// Runtime ratio between two surveyed mechanisms (by index).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn ratio(&self, a: usize, b: usize) -> f64 {
        self.results[a].runtime_cycles as f64 / self.results[b].runtime_cycles as f64
    }
}

/// Builds a 32-node config matching `row`'s bisection bytes/cycle and
/// one-way 24-byte latency. Returns `None` for rows without a physical
/// network; the `bool` reports whether the latency target was clamped to
/// the serialization floor.
pub fn config_for(row: &MachineRow, base: &MachineConfig) -> Option<(MachineConfig, bool)> {
    let bpc = row.bytes_per_cycle()?;
    let lat = row.net_latency_cycles?;
    let mut cfg = base.clone();
    let cycle_ps = cfg.clock().cycle_ps() as f64;
    let topo = cfg.net.topo.build();
    let channels = topo.bisection_channels() as f64;
    // bisection B/cycle = channels * cycle_ps / ps_per_byte.
    cfg.net.ps_per_byte = (channels * cycle_ps / bpc).round().max(1.0) as u64;
    let mean_hops = topo.mean_hops();
    let serial_ps = 24.0 * cfg.net.ps_per_byte as f64;
    let router = (lat * cycle_ps - serial_ps) / mean_hops;
    let approx = router < 1_000.0;
    cfg.net.router_delay_ps = router.max(1_000.0).round() as u64;
    Some((cfg, approx))
}

/// Runs `spec` under `mechanisms` at every surveyed design point that has
/// a physical network. All design points share one prepared workload and
/// execute on an environment-sized [`Runner`].
pub fn survey(
    spec: &AppSpec,
    mechanisms: &[Mechanism],
    rows: &[MachineRow],
    base: &MachineConfig,
) -> Vec<SurveyRow> {
    let networked: Vec<(&MachineRow, MachineConfig, bool)> = rows
        .iter()
        .filter_map(|row| {
            let (cfg, approx) = config_for(row, base)?;
            Some((row, cfg, approx))
        })
        .collect();
    let requests: Vec<RunRequest> = networked
        .iter()
        .flat_map(|(_, cfg, _)| {
            mechanisms.iter().map(|&mech| RunRequest {
                spec: spec.clone(),
                mechanism: mech,
                cfg: cfg.clone().with_mechanism(mech),
            })
        })
        .collect();
    let mut results = Runner::from_env().run(&requests).into_iter();
    networked
        .into_iter()
        .map(|(row, _, approx)| SurveyRow {
            machine: row.name,
            bytes_per_cycle: row.bytes_per_cycle().expect("filtered"),
            latency_cycles: row.net_latency_cycles.expect("filtered"),
            results: results
                .by_ref()
                .take(mechanisms.len())
                .collect::<Vec<RunResult>>(),
            approx,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::table1;
    use commsense_workloads::bipartite::Em3dParams;

    fn find(name: &str) -> MachineRow {
        table1()
            .into_iter()
            .find(|r| r.name == name)
            .expect("present")
    }

    fn tiny_spec() -> AppSpec {
        let mut p = Em3dParams::small();
        p.nodes = 1000;
        p.iterations = 2;
        AppSpec::Em3d(p)
    }

    #[test]
    fn alewife_maps_to_roughly_itself() {
        let base = MachineConfig::alewife();
        let (cfg, approx) = config_for(&find("MIT Alewife"), &base).expect("has a network");
        assert!(!approx);
        // Same bisection within rounding.
        let bpc = cfg.net.bisection_bytes_per_cycle(cfg.clock());
        assert!((bpc - 18.0).abs() < 0.2, "bisection {bpc}");
        // Latency within a cycle or two of the base machine's.
        let lat = crate::experiment::one_way_latency_cycles(&cfg, 24);
        let base_lat = crate::experiment::one_way_latency_cycles(&base, 24);
        assert!((lat - 15.0).abs() < 2.0, "latency {lat} (base {base_lat})");
    }

    #[test]
    fn simulated_machines_are_skipped() {
        let base = MachineConfig::alewife();
        assert!(config_for(&find("Wisconsin T0"), &base).is_none());
        let rows = table1();
        let surveyed = survey(&tiny_spec(), &[Mechanism::MsgPoll], &rows[..1], &base);
        assert_eq!(surveyed.len(), 1); // Alewife only
        assert!(surveyed[0].results[0].verified);
    }

    #[test]
    fn high_latency_points_disfavor_shared_memory() {
        let base = MachineConfig::alewife();
        let spec = tiny_spec();
        let mechs = [Mechanism::SharedMem, Mechanism::MsgPoll];
        let jm = survey(&spec, &mechs, &[find("MIT J-Machine")], &base).remove(0);
        let t3e = survey(&spec, &mechs, &[find("Cray T3E")], &base).remove(0);
        assert!(
            t3e.ratio(0, 1) > jm.ratio(0, 1) * 1.3,
            "T3E ratios must punish shared memory far more than the J-Machine: {} vs {}",
            t3e.ratio(0, 1),
            jm.ratio(0, 1)
        );
    }

    #[test]
    fn low_bandwidth_latency_floor_is_flagged() {
        let base = MachineConfig::alewife();
        let (_, approx) = config_for(&find("Intel Delta"), &base).expect("has a network");
        assert!(approx, "5.4 B/cycle cannot serialize 24 bytes in 15 cycles");
    }
}
