//! Persistent, content-addressed result store.
//!
//! Every measured point in the paper is a pure function of its
//! [`RunRequest`] — `(workload, mechanism, machine config)` — so a finished
//! run can be stored on disk under a deterministic key and replayed later
//! instead of re-simulated. That turns `repro all --paper` from an
//! all-or-nothing batch into an incremental computation: an interrupted
//! sweep resumes in seconds, and iterating on one figure stops re-paying
//! for the others.
//!
//! ## Key derivation
//!
//! The key is the 128-bit FNV-1a hash of the request's canonical
//! [`StableEncoder`] encoding (every model-affecting field under an
//! explicit sorted name; see `commsense_des::stable`) plus
//! [`MODEL_VERSION`], a salt bumped whenever simulated cycles can
//! legitimately change. Bookkeeping-only knobs (`observe`, `check`) are
//! excluded by `MachineConfig::stable_encode`; the runner additionally
//! bypasses the store entirely for such runs, since a cached record
//! carries no observation to hand back.
//!
//! ## Record integrity
//!
//! Records are written to a temporary file and atomically renamed into
//! place, so a concurrent reader sees either the old record or the new
//! one, never a torn prefix. Each record is framed with a magic, the
//! payload length, and a 64-bit FNV-1a checksum; a record that fails any
//! of those checks — or that decodes to the wrong key or model version —
//! is deleted and treated as a miss (recomputed, never trusted).
//!
//! # Examples
//!
//! ```
//! use commsense_core::engine::RunRequest;
//! use commsense_core::store::ResultStore;
//! use commsense_apps::{run_app, AppSpec};
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_workloads::sparse::IccgParams;
//!
//! let dir = std::env::temp_dir().join(format!("commsense-doc-{}", std::process::id()));
//! let store = ResultStore::open(&dir).unwrap();
//! let req = RunRequest {
//!     spec: AppSpec::Iccg(IccgParams::small()),
//!     mechanism: Mechanism::MsgPoll,
//!     cfg: MachineConfig::tiny(),
//! };
//! assert!(store.load(&req).is_none());
//! let result = run_app(&req.spec, req.mechanism, &req.cfg);
//! store.save(&req, &result).unwrap();
//! let warm = store.load(&req).expect("hit");
//! assert_eq!(warm.runtime_cycles, result.runtime_cycles);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use commsense_apps::RunResult;
use commsense_cache::ProtoStats;
use commsense_des::{fnv1a_64, StableEncoder, Time};
use commsense_machine::{LatencyHistogram, Mechanism, NodeStats, RunStats};
use commsense_mesh::VolumeBreakdown;

use crate::engine::RunRequest;
use crate::json::{push_escaped, Json};

/// Model-version salt folded into every store key. Bump whenever the
/// simulator can legitimately produce different cycle counts for the same
/// request (cost-model recalibration, protocol changes, workload-generator
/// changes): old records become unreachable instead of wrong, and
/// [`ResultStore::gc`] reclaims them.
pub const MODEL_VERSION: u32 = 1;

/// Magic bytes opening every record file (version in the name).
const RECORD_MAGIC: &[u8; 8] = b"CSSTORE1";

/// Schema tag inside the record payload.
const RECORD_SCHEMA: &str = "commsense-store-record";

/// Monotonic counters describing one store handle's traffic.
///
/// `hits`/`misses` count [`ResultStore::load`] outcomes (a corrupt record
/// counts as a miss *and* a corruption); `evictions` counts records
/// removed, whether by corruption handling or by [`ResultStore::gc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads satisfied from disk.
    pub hits: u64,
    /// Loads that found no usable record.
    pub misses: u64,
    /// Records that failed framing/checksum/schema validation.
    pub corrupt: u64,
    /// Record files removed (corruption cleanup + gc).
    pub evictions: u64,
    /// Payload bytes read from disk on hits.
    pub bytes_read: u64,
    /// Payload bytes written by saves.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// An on-disk, content-addressed store of [`RunResult`]s.
///
/// Handles are `Sync`: loads and saves may race freely across the runner's
/// worker threads (and across processes sharing one directory), because
/// every write is an atomic rename and every read validates framing.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    stats: StatCells,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        let root = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("records"))?;
        std::fs::create_dir_all(root.join("quarantine"))?;
        Ok(ResultStore {
            root,
            stats: StatCells::default(),
        })
    }

    /// Opens the store named by the `COMMSENSE_STORE` environment
    /// variable, or `None` when it is unset or empty.
    pub fn from_env() -> Option<std::io::Result<ResultStore>> {
        match std::env::var("COMMSENSE_STORE") {
            Ok(dir) if !dir.is_empty() => Some(ResultStore::open(dir)),
            _ => None,
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The deterministic 128-bit key of a request: the hash of its
    /// canonical encoding plus the [`MODEL_VERSION`] salt. The config's
    /// receive mode and barrier style are normalized to the request's
    /// mechanism first, exactly as execution does, so a request hashes by
    /// what would actually run.
    pub fn request_key(req: &RunRequest) -> u128 {
        let mut enc = StableEncoder::new();
        enc.put("store.model_version", MODEL_VERSION);
        enc.put("mechanism", req.mechanism.label());
        req.spec.stable_encode(&mut enc);
        req.cfg
            .clone()
            .with_mechanism(req.mechanism)
            .stable_encode(&mut enc);
        enc.finish_hash()
    }

    fn record_path(&self, key: u128) -> PathBuf {
        let hex = format!("{key:032x}");
        self.root
            .join("records")
            .join(&hex[..2])
            .join(format!("{hex}.rec"))
    }

    fn quarantine_path(&self, key: u128) -> PathBuf {
        self.root.join("quarantine").join(format!("{key:032x}.txt"))
    }

    /// Loads the stored result for `req`, or `None` on a miss. A record
    /// that fails validation is deleted and reported as a miss; the caller
    /// recomputes, and the recomputed result overwrites the bad record.
    pub fn load(&self, req: &RunRequest) -> Option<RunResult> {
        let key = Self::request_key(req);
        let path = self.record_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_record(&bytes, key, req) {
            Some(result) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                // Refresh the record's mtime so [`ResultStore::gc_max_bytes`]
                // evicts least-recently-*used* records, not merely
                // least-recently-written ones. Best effort: a failed touch
                // (e.g. a concurrent gc won the race) costs LRU accuracy,
                // never correctness.
                if let Ok(f) = std::fs::File::options().write(true).open(&path) {
                    let _ = f.set_modified(std::time::SystemTime::now());
                }
                Some(result)
            }
            None => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                if std::fs::remove_file(&path).is_ok() {
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Stores `result` as the record for `req` (write-through). The write
    /// goes to a temporary file in the record's directory and is renamed
    /// into place, so concurrent readers and writers of the same key never
    /// observe a torn record.
    pub fn save(&self, req: &RunRequest, result: &RunResult) -> std::io::Result<()> {
        let key = Self::request_key(req);
        let path = self.record_path(key);
        let dir = path.parent().expect("record path has a parent");
        std::fs::create_dir_all(dir)?;
        let bytes = encode_record(key, req, result);
        // Unique tmp name per (process, thread) so concurrent writers of
        // the same key never collide on the staging file either.
        let tmp = dir.join(format!(
            "{key:032x}.tmp.{}.{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.stats
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Marks `req` as poisoned: subsequent warm runs report it failed
    /// immediately instead of re-tripping the same panic. The message is
    /// what the quarantined point reports.
    pub fn quarantine(&self, req: &RunRequest, message: &str) {
        let path = self.quarantine_path(Self::request_key(req));
        let _ = std::fs::write(&path, message);
    }

    /// The quarantine message for `req`, if it was quarantined.
    pub fn quarantined(&self, req: &RunRequest) -> Option<String> {
        std::fs::read_to_string(self.quarantine_path(Self::request_key(req))).ok()
    }

    /// Clears `req`'s quarantine mark (e.g. after a model fix).
    pub fn clear_quarantine(&self, req: &RunRequest) {
        let _ = std::fs::remove_file(self.quarantine_path(Self::request_key(req)));
    }

    /// A snapshot of this handle's counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }

    fn record_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for shard in std::fs::read_dir(self.root.join("records"))? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard)? {
                let p = entry?.path();
                if p.extension().and_then(|e| e.to_str()) == Some("rec") {
                    files.push(p);
                }
            }
        }
        files.sort();
        Ok(files)
    }

    /// Scans every record, reporting how many validate and how many are
    /// corrupt or stale (wrong model version). Read-only; see
    /// [`ResultStore::gc`] to reclaim the bad ones.
    pub fn verify(&self) -> std::io::Result<ScanReport> {
        self.scan(false)
    }

    /// Scans every record like [`ResultStore::verify`] and deletes the
    /// corrupt and stale ones, counting them as evictions.
    pub fn gc(&self) -> std::io::Result<ScanReport> {
        self.scan(true)
    }

    /// Size-capped LRU eviction: if the records exceed `max_bytes` in
    /// total, deletes least-recently-used records (by mtime, which
    /// [`ResultStore::load`] refreshes on every hit) until the remainder
    /// fits. Returns what was kept and what was evicted.
    ///
    /// Concurrency: eviction races benignly with readers and writers. A
    /// reader of an evicted key sees a miss and recomputes; a writer that
    /// lands after the scan simply isn't counted this round. A record
    /// that disappears mid-scan (another gc, a corruption eviction) is
    /// skipped.
    pub fn gc_max_bytes(&self, max_bytes: u64) -> std::io::Result<EvictionReport> {
        let mut entries: Vec<(PathBuf, std::time::SystemTime, u64)> = Vec::new();
        for path in self.record_files()? {
            let Ok(meta) = std::fs::metadata(&path) else {
                continue;
            };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((path, mtime, meta.len()));
        }
        // Oldest first; ties broken by path so the pass is deterministic.
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mut total: u64 = entries.iter().map(|e| e.2).sum();
        let mut report = EvictionReport {
            kept: entries.len() as u64,
            kept_bytes: total,
            ..Default::default()
        };
        for (path, _, len) in &entries {
            if total <= max_bytes {
                break;
            }
            if std::fs::remove_file(path).is_ok() {
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                report.removed += 1;
                report.removed_bytes += len;
                report.kept -= 1;
                report.kept_bytes -= len;
            }
            // Whether or not the delete landed (a concurrent gc may have
            // beaten us to it), the bytes are gone from this round's total.
            total -= len;
        }
        Ok(report)
    }

    fn scan(&self, remove_bad: bool) -> std::io::Result<ScanReport> {
        let mut report = ScanReport::default();
        for path in self.record_files()? {
            let bytes = std::fs::read(&path)?;
            let expected_key = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u128::from_str_radix(s, 16).ok());
            match (
                expected_key,
                expected_key.and_then(|k| validate_record(&bytes, k)),
            ) {
                (Some(_), Some(version)) if version == MODEL_VERSION => {
                    report.ok += 1;
                    report.live_bytes += bytes.len() as u64;
                }
                (Some(_), Some(_)) => {
                    report.stale += 1;
                    if remove_bad && std::fs::remove_file(&path).is_ok() {
                        report.removed += 1;
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    report.corrupt += 1;
                    if remove_bad && std::fs::remove_file(&path).is_ok() {
                        report.removed += 1;
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(report)
    }
}

/// What a size-capped [`ResultStore::gc_max_bytes`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionReport {
    /// Records surviving the pass.
    pub kept: u64,
    /// Bytes surviving the pass.
    pub kept_bytes: u64,
    /// Records evicted to meet the cap.
    pub removed: u64,
    /// Bytes reclaimed.
    pub removed_bytes: u64,
}

/// What a [`ResultStore::verify`]/[`ResultStore::gc`] scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Records that validated at the current model version.
    pub ok: u64,
    /// Records that validated but carry an old model version (unreachable:
    /// the version is part of the key).
    pub stale: u64,
    /// Records that failed framing, checksum, or schema validation.
    pub corrupt: u64,
    /// Records deleted (gc only).
    pub removed: u64,
    /// Total bytes of valid current-version records.
    pub live_bytes: u64,
}

// ---------------------------------------------------------------------------
// Record encoding.
//
// The payload is JSON (so `core::json` parses and validates it), but every
// number is carried as a *string*: the parser holds numbers as f64, which
// would silently round u64 cycle counts above 2^53 and perturb f64 error
// bounds — and a store whose round-trip is merely "close" would break the
// bit-identical guarantee the engine tests pin. u64 fields encode as
// decimal strings; f64 fields as the hex of their IEEE-754 bits.

fn push_field(out: &mut String, key: &str, value: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    push_escaped(out, key);
    out.push(':');
    push_escaped(out, value);
}

fn push_u64(out: &mut String, key: &str, value: u64) {
    push_field(out, key, &value.to_string());
}

fn push_time(out: &mut String, key: &str, value: Time) {
    push_u64(out, key, value.as_ps());
}

fn push_f64_bits(out: &mut String, key: &str, value: f64) {
    push_field(out, key, &format!("{:016x}", value.to_bits()));
}

fn push_volume(out: &mut String, key: &str, v: &VolumeBreakdown) {
    if !out.ends_with('{') {
        out.push(',');
    }
    push_escaped(out, key);
    out.push_str(":{");
    push_u64(out, "invalidates", v.invalidates);
    push_u64(out, "requests", v.requests);
    push_u64(out, "headers", v.headers);
    push_u64(out, "data", v.data);
    push_u64(out, "cross_traffic", v.cross_traffic);
    out.push('}');
}

fn encode_payload(key: u128, req: &RunRequest, r: &RunResult) -> String {
    let mut out = String::with_capacity(2048);
    out.push('{');
    push_field(&mut out, "schema", RECORD_SCHEMA);
    push_u64(&mut out, "model_version", MODEL_VERSION as u64);
    push_field(&mut out, "key", &format!("{key:032x}"));
    push_field(&mut out, "app", r.app);
    push_field(&mut out, "mechanism", r.mechanism.label());
    push_u64(&mut out, "runtime_cycles", r.runtime_cycles);
    push_field(
        &mut out,
        "verified",
        if r.verified { "true" } else { "false" },
    );
    push_f64_bits(&mut out, "max_abs_err", r.max_abs_err);
    // Wall time is measurement metadata, but storing it lets a warm run
    // reproduce the cold run's reports (e.g. `repro perf` footers) without
    // pretending the replay took zero time.
    push_u64(&mut out, "wall_nanos", r.wall.as_nanos() as u64);
    out.push_str(",\"stats\":{");
    let s = &r.stats;
    push_time(&mut out, "runtime_ps", s.runtime);
    push_u64(&mut out, "runtime_cycles", s.runtime_cycles);
    push_u64(&mut out, "messages_sent", s.messages_sent);
    push_u64(&mut out, "events", s.events);
    match s.mean_packet_latency {
        Some(t) => push_time(&mut out, "mean_packet_latency_ps", t),
        None => push_field(&mut out, "mean_packet_latency_ps", "none"),
    }
    push_u64(&mut out, "useless_prefetches", s.useless_prefetches);
    push_u64(&mut out, "useful_prefetches", s.useful_prefetches);
    push_u64(&mut out, "priority_bypasses", s.priority_bypasses);
    push_u64(&mut out, "low_bypassed", s.low_bypassed);
    push_u64(&mut out, "cache_hits", s.cache_hit_miss.0);
    push_u64(&mut out, "cache_misses", s.cache_hit_miss.1);
    push_volume(&mut out, "volume", &s.volume);
    push_volume(&mut out, "bisection", &s.bisection);
    out.push_str(",\"proto\":{");
    push_u64(&mut out, "read_misses", s.proto.read_misses);
    push_u64(&mut out, "write_misses", s.proto.write_misses);
    push_u64(&mut out, "invalidations", s.proto.invalidations);
    push_u64(&mut out, "interventions", s.proto.interventions);
    push_u64(&mut out, "limitless_traps", s.proto.limitless_traps);
    push_u64(&mut out, "writebacks", s.proto.writebacks);
    push_u64(&mut out, "deferred", s.proto.deferred);
    out.push_str("},\"miss_latency\":{");
    let h = &s.miss_latency;
    push_field(
        &mut out,
        "buckets",
        &h.buckets.map(|b| b.to_string()).join(" "),
    );
    push_u64(&mut out, "count", h.count);
    push_u64(&mut out, "sum_cycles", h.sum_cycles);
    push_u64(&mut out, "max_cycles", h.max_cycles);
    out.push_str("},\"nodes\":[");
    for (i, n) in s.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_time(&mut out, "sync", n.sync);
        push_time(&mut out, "overhead", n.overhead);
        push_time(&mut out, "mem", n.mem);
        push_time(&mut out, "compute", n.compute);
        out.push('}');
    }
    out.push_str("]}}");
    // The encoding request is only used for documentation-grade sanity: a
    // record always describes the request that keyed it.
    debug_assert_eq!(r.app, req.spec.name());
    out
}

fn encode_record(key: u128, req: &RunRequest, r: &RunResult) -> Vec<u8> {
    let payload = encode_payload(key, req, r);
    let mut bytes = Vec::with_capacity(payload.len() + 24);
    bytes.extend_from_slice(RECORD_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a_64(payload.as_bytes()).to_le_bytes());
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

/// Checks framing + checksum + schema + key, returning the payload on
/// success.
fn framed_payload(bytes: &[u8], key: u128) -> Option<Json> {
    let payload = bytes.strip_prefix(RECORD_MAGIC)?;
    let (len_bytes, payload) = payload.split_first_chunk::<8>()?;
    let (sum_bytes, payload) = payload.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*len_bytes) != payload.len() as u64 {
        return None;
    }
    if u64::from_le_bytes(*sum_bytes) != fnv1a_64(payload) {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let v = Json::parse(text).ok()?;
    if v.get("schema")?.as_str()? != RECORD_SCHEMA {
        return None;
    }
    if v.get("key")?.as_str()? != format!("{key:032x}") {
        return None;
    }
    Some(v)
}

/// Validation-only pass for `verify`/`gc`: returns the record's model
/// version if its framing, checksum, schema, and key all check out.
fn validate_record(bytes: &[u8], key: u128) -> Option<u32> {
    let v = framed_payload(bytes, key)?;
    str_u64(&v, "model_version").map(|mv| mv as u32)
}

fn str_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_str()?.parse().ok()
}

fn str_time(v: &Json, key: &str) -> Option<Time> {
    str_u64(v, key).map(Time::from_ps)
}

fn str_f64_bits(v: &Json, key: &str) -> Option<f64> {
    u64::from_str_radix(v.get(key)?.as_str()?, 16)
        .ok()
        .map(f64::from_bits)
}

fn decode_volume(v: &Json, key: &str) -> Option<VolumeBreakdown> {
    let o = v.get(key)?;
    Some(VolumeBreakdown {
        invalidates: str_u64(o, "invalidates")?,
        requests: str_u64(o, "requests")?,
        headers: str_u64(o, "headers")?,
        data: str_u64(o, "data")?,
        cross_traffic: str_u64(o, "cross_traffic")?,
    })
}

fn decode_record(bytes: &[u8], key: u128, req: &RunRequest) -> Option<RunResult> {
    let v = framed_payload(bytes, key)?;
    if str_u64(&v, "model_version")? != MODEL_VERSION as u64 {
        return None;
    }
    let mechanism = Mechanism::from_label(v.get("mechanism")?.as_str()?)?;
    if mechanism != req.mechanism || v.get("app")?.as_str()? != req.spec.name() {
        return None;
    }
    let s = v.get("stats")?;
    let mean_packet_latency = match s.get("mean_packet_latency_ps")?.as_str()? {
        "none" => None,
        ps => Some(Time::from_ps(ps.parse().ok()?)),
    };
    let h = s.get("miss_latency")?;
    let mut buckets = [0u64; 14];
    let parts: Vec<&str> = h.get("buckets")?.as_str()?.split(' ').collect();
    if parts.len() != buckets.len() {
        return None;
    }
    for (slot, part) in buckets.iter_mut().zip(parts) {
        *slot = part.parse().ok()?;
    }
    let mut nodes = Vec::new();
    for n in s.get("nodes")?.as_arr()? {
        nodes.push(NodeStats {
            sync: str_time(n, "sync")?,
            overhead: str_time(n, "overhead")?,
            mem: str_time(n, "mem")?,
            compute: str_time(n, "compute")?,
        });
    }
    let p = s.get("proto")?;
    let stats = RunStats {
        runtime: str_time(s, "runtime_ps")?,
        runtime_cycles: str_u64(s, "runtime_cycles")?,
        nodes,
        volume: decode_volume(s, "volume")?,
        bisection: decode_volume(s, "bisection")?,
        proto: ProtoStats {
            read_misses: str_u64(p, "read_misses")?,
            write_misses: str_u64(p, "write_misses")?,
            invalidations: str_u64(p, "invalidations")?,
            interventions: str_u64(p, "interventions")?,
            limitless_traps: str_u64(p, "limitless_traps")?,
            writebacks: str_u64(p, "writebacks")?,
            deferred: str_u64(p, "deferred")?,
        },
        messages_sent: str_u64(s, "messages_sent")?,
        events: str_u64(s, "events")?,
        mean_packet_latency,
        useless_prefetches: str_u64(s, "useless_prefetches")?,
        useful_prefetches: str_u64(s, "useful_prefetches")?,
        // Absent in records written before the priority channel existed;
        // those runs could not have bypassed anything.
        priority_bypasses: str_u64(s, "priority_bypasses").unwrap_or(0),
        low_bypassed: str_u64(s, "low_bypassed").unwrap_or(0),
        cache_hit_miss: (str_u64(s, "cache_hits")?, str_u64(s, "cache_misses")?),
        miss_latency: LatencyHistogram {
            buckets,
            count: str_u64(h, "count")?,
            sum_cycles: str_u64(h, "sum_cycles")?,
            max_cycles: str_u64(h, "max_cycles")?,
        },
    };
    Some(RunResult {
        // `RunResult::app` is a `&'static str`; the request supplies the
        // static name the record was checked against above.
        app: req.spec.name(),
        mechanism,
        runtime_cycles: str_u64(&v, "runtime_cycles")?,
        verified: match v.get("verified")?.as_str()? {
            "true" => true,
            "false" => false,
            _ => return None,
        },
        max_abs_err: str_f64_bits(&v, "max_abs_err")?,
        stats,
        wall: std::time::Duration::from_nanos(str_u64(&v, "wall_nanos")?),
        observation: None,
        profile: None,
    })
}
