//! Self-describing run manifests: one JSON record per executed
//! [`RunRequest`] capturing what was run (workload, mechanism, machine
//! configuration, sweep point), what came out ([`RunResult`] summary), and —
//! when observation was enabled — the epoch-sampled metric series.
//!
//! A manifest makes an artifact directory self-contained: a reader can
//! reconstruct the experimental point from the manifest alone, without the
//! command line that produced it. The format is versioned by
//! [`MANIFEST_SCHEMA_VERSION`] and checked by [`validate_manifest`], which
//! CI runs against freshly produced manifests.
//!
//! # Examples
//!
//! ```
//! use commsense_core::engine::RunRequest;
//! use commsense_core::manifest::{manifest_json, validate_manifest};
//! use commsense_apps::{run_app, AppSpec};
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_workloads::sparse::IccgParams;
//!
//! let req = RunRequest {
//!     spec: AppSpec::Iccg(IccgParams::small()),
//!     mechanism: Mechanism::MsgPoll,
//!     cfg: MachineConfig::tiny(),
//! };
//! let result = run_app(&req.spec, req.mechanism, &req.cfg);
//! let text = manifest_json(&req, None, &result);
//! validate_manifest(&text).unwrap();
//! ```

use commsense_apps::RunResult;
use commsense_machine::critpath::{CritPath, Stage};
use commsense_machine::{Bucket, RunState};

use crate::engine::RunRequest;
use crate::json::{push_escaped, Json};

/// Version stamp written into every manifest; bump on breaking layout
/// changes so downstream readers can dispatch. Version 2 replaced the
/// mesh-only `mesh_width`/`mesh_height` config fields with `topology`
/// (human-readable shape) and `topology_kind`. Version 3 added the
/// optional `critpath` block (critical-path stage breakdown and predicted
/// latency slope, see [`manifest_json_with_analysis`]).
pub const MANIFEST_SCHEMA_VERSION: u32 = 3;

fn push_str_field(out: &mut String, key: &str, value: &str) {
    push_escaped(out, key);
    out.push(':');
    push_escaped(out, value);
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    push_escaped(out, key);
    out.push_str(&format!(":{value}"));
}

fn push_f64_field(out: &mut String, key: &str, value: f64) {
    push_escaped(out, key);
    if value.is_finite() {
        out.push_str(&format!(":{value}"));
    } else {
        out.push_str(":null");
    }
}

fn push_bool_field(out: &mut String, key: &str, value: bool) {
    push_escaped(out, key);
    out.push_str(if value { ":true" } else { ":false" });
}

/// Renders the manifest for one executed request as a JSON document.
///
/// `sweep_x` is the x-coordinate of the sweep point the request measures
/// (bisection width, added latency cycles, ...), if the request came from a
/// sweep. The metric-series block is present exactly when the result
/// carries an observation.
pub fn manifest_json(req: &RunRequest, sweep_x: Option<f64>, result: &RunResult) -> String {
    manifest_json_with_analysis(req, sweep_x, result, None)
}

/// Like [`manifest_json`], with an optional critical-path analysis block
/// (`repro analyze` attaches it): per-stage cycle attribution, the message
/// and barrier edges crossed, and the predicted Figure-10 latency slope.
pub fn manifest_json_with_analysis(
    req: &RunRequest,
    sweep_x: Option<f64>,
    result: &RunResult,
    critpath: Option<&CritPath>,
) -> String {
    let cfg = &req.cfg;
    let clock = cfg.clock();
    let mut out = String::with_capacity(4096);
    out.push('{');
    push_u64_field(&mut out, "schema_version", MANIFEST_SCHEMA_VERSION as u64);
    out.push(',');
    push_str_field(&mut out, "kind", "commsense-run-manifest");
    out.push(',');

    // The request: workload, mechanism, sweep point.
    push_str_field(&mut out, "app", result.app);
    out.push(',');
    push_str_field(&mut out, "spec", &format!("{:?}", req.spec));
    out.push(',');
    push_str_field(&mut out, "mechanism", req.mechanism.label());
    out.push(',');
    push_escaped(&mut out, "sweep_x");
    match sweep_x {
        Some(x) if x.is_finite() => out.push_str(&format!(":{x}")),
        _ => out.push_str(":null"),
    }
    out.push(',');

    // The machine.
    push_escaped(&mut out, "config");
    out.push_str(":{");
    push_u64_field(&mut out, "nodes", cfg.nodes as u64);
    out.push(',');
    push_str_field(&mut out, "topology", &cfg.net.topo.build().describe());
    out.push(',');
    push_str_field(&mut out, "topology_kind", cfg.net.topo.kind());
    out.push(',');
    push_f64_field(&mut out, "cpu_mhz", cfg.cpu_mhz);
    out.push(',');
    push_u64_field(&mut out, "net_ps_per_byte", cfg.net.ps_per_byte);
    out.push(',');
    push_u64_field(&mut out, "net_router_delay_ps", cfg.net.router_delay_ps);
    out.push(',');
    push_str_field(&mut out, "receive", &format!("{:?}", cfg.receive));
    out.push(',');
    push_str_field(&mut out, "barrier", &format!("{:?}", cfg.barrier));
    out.push(',');
    push_u64_field(&mut out, "write_buffer", cfg.write_buffer as u64);
    out.push(',');
    push_bool_field(&mut out, "cross_traffic", cfg.cross_traffic.is_some());
    out.push(',');
    push_escaped(&mut out, "latency_emulation_cycles");
    match cfg.latency_emulation {
        Some(emu) => out.push_str(&format!(":{}", emu.remote_miss_cycles)),
        None => out.push_str(":null"),
    }
    out.push(',');
    push_escaped(&mut out, "observe");
    match cfg.observe {
        Some(o) => out.push_str(&format!(
            ":{{\"epoch_cycles\":{},\"trace_capacity\":{},\"max_packets\":{}}}",
            o.epoch_cycles, o.trace_capacity, o.max_packets
        )),
        None => out.push_str(":null"),
    }
    out.push_str("},");

    // The result summary.
    push_escaped(&mut out, "result");
    out.push_str(":{");
    push_u64_field(&mut out, "runtime_cycles", result.runtime_cycles);
    out.push(',');
    push_bool_field(&mut out, "verified", result.verified);
    out.push(',');
    push_f64_field(&mut out, "max_abs_err", result.max_abs_err);
    out.push(',');
    push_u64_field(&mut out, "events", result.stats.events);
    out.push(',');
    push_u64_field(&mut out, "messages_sent", result.stats.messages_sent);
    out.push(',');
    push_u64_field(
        &mut out,
        "app_volume_bytes",
        result.stats.volume.app_total(),
    );
    out.push(',');
    push_u64_field(
        &mut out,
        "bisection_bytes",
        result.stats.bisection.app_total(),
    );
    out.push(',');
    push_u64_field(&mut out, "cache_hits", result.stats.cache_hit_miss.0);
    out.push(',');
    push_u64_field(&mut out, "cache_misses", result.stats.cache_hit_miss.1);
    out.push(',');
    push_escaped(&mut out, "mean_packet_latency_cycles");
    match result.stats.mean_packet_latency {
        Some(t) => out.push_str(&format!(":{}", clock.cycles_at_f64(t))),
        None => out.push_str(":null"),
    }
    out.push(',');
    push_escaped(&mut out, "bucket_mean_cycles");
    out.push_str(":{");
    for (i, b) in Bucket::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64_field(
            &mut out,
            b.label(),
            result.stats.mean_bucket_cycles(*b, clock),
        );
    }
    out.push_str("}}");

    // The metric series, when observation was on.
    if let Some(obs) = &result.observation {
        let series = &obs.series;
        out.push(',');
        push_escaped(&mut out, "series");
        out.push_str(":{");
        push_u64_field(&mut out, "epoch_ps", series.epoch_ps);
        out.push(',');
        push_u64_field(&mut out, "samples", series.samples() as u64);
        out.push(',');
        push_escaped(&mut out, "at_ps");
        out.push_str(":[");
        for (i, t) in series.at_ps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{t}"));
        }
        out.push_str("],");
        push_escaped(&mut out, "state_fraction");
        out.push_str(":{");
        for (si, state) in RunState::ALL.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            push_escaped(&mut out, state.label());
            out.push_str(":[");
            for s in 0..series.samples() {
                if s > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:.4}", series.state_fraction(s, *state)));
            }
            out.push(']');
        }
        out.push_str("},");
        push_escaped(&mut out, "event_queue_depth");
        out.push_str(":[");
        for (i, d) in series.event_queue_depth.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{d}"));
        }
        out.push_str("],");
        push_escaped(&mut out, "barrier_occupancy");
        out.push_str(":[");
        for (i, d) in series.barrier_occupancy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{d}"));
        }
        out.push_str("],");
        push_escaped(&mut out, "mean_link_utilization");
        out.push_str(":[");
        for link in 0..series.links {
            if link > 0 {
                out.push(',');
            }
            out.push_str(&format!("{:.4}", obs.mean_link_utilization(link)));
        }
        out.push_str("],");
        push_u64_field(&mut out, "trace_events_dropped", obs.trace.dropped());
        out.push(',');
        push_u64_field(&mut out, "net_packets_dropped", obs.net.dropped_packets);
        out.push('}');
    }

    // The critical-path analysis, when one was run.
    if let Some(cp) = critpath {
        out.push(',');
        push_escaped(&mut out, "critpath");
        out.push_str(":{");
        push_u64_field(&mut out, "total_cycles", cp.total_cycles());
        out.push(',');
        push_f64_field(&mut out, "predicted_slope", cp.predicted_slope());
        out.push(',');
        push_u64_field(&mut out, "traversals", cp.traversals);
        out.push(',');
        push_u64_field(&mut out, "messages", cp.messages);
        out.push(',');
        push_u64_field(&mut out, "barrier_joins", cp.barrier_joins);
        out.push(',');
        push_bool_field(&mut out, "complete", cp.complete);
        out.push(',');
        push_escaped(&mut out, "stage_cycles");
        out.push_str(":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_u64_field(&mut out, stage.label(), cp.stage_cycles(*stage));
        }
        out.push_str("}}");
    }
    out.push('}');
    out
}

/// Checks that `text` parses as JSON and satisfies the manifest schema:
/// required keys present with the right types, the schema version known,
/// and (when present) every series array consistent with the advertised
/// sample count.
pub fn validate_manifest(text: &str) -> Result<(), String> {
    let v = Json::parse(text)?;
    let version = v
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != MANIFEST_SCHEMA_VERSION as u64 {
        return Err(format!("unknown schema_version {version}"));
    }
    if v.get("kind").and_then(Json::as_str) != Some("commsense-run-manifest") {
        return Err("missing or wrong kind".to_string());
    }
    for key in ["app", "spec", "mechanism"] {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string field {key:?}"))?;
    }
    let cfg = v.get("config").ok_or("missing config")?;
    for key in ["nodes", "write_buffer"] {
        cfg.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing config field {key:?}"))?;
    }
    for key in ["topology", "topology_kind"] {
        cfg.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing config field {key:?}"))?;
    }
    cfg.get("cpu_mhz")
        .and_then(Json::as_f64)
        .ok_or("missing config field \"cpu_mhz\"")?;
    let result = v.get("result").ok_or("missing result")?;
    for key in ["runtime_cycles", "events", "messages_sent"] {
        result
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing result field {key:?}"))?;
    }
    result
        .get("verified")
        .and_then(Json::as_bool)
        .ok_or("missing result field \"verified\"")?;
    let buckets = result
        .get("bucket_mean_cycles")
        .and_then(Json::as_obj)
        .ok_or("missing result field \"bucket_mean_cycles\"")?;
    if buckets.len() != Bucket::ALL.len() {
        return Err("bucket_mean_cycles must cover every bucket".to_string());
    }
    if let Some(series) = v.get("series") {
        let samples = series
            .get("samples")
            .and_then(Json::as_u64)
            .ok_or("missing series field \"samples\"")? as usize;
        for key in ["at_ps", "event_queue_depth", "barrier_occupancy"] {
            let arr = series
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing series array {key:?}"))?;
            if arr.len() != samples {
                return Err(format!(
                    "series array {key:?} has {} entries, expected {samples}",
                    arr.len()
                ));
            }
        }
        let fractions = series
            .get("state_fraction")
            .and_then(Json::as_obj)
            .ok_or("missing series field \"state_fraction\"")?;
        for (state, arr) in fractions {
            let arr = arr
                .as_arr()
                .ok_or_else(|| format!("state_fraction[{state:?}] is not an array"))?;
            if arr.len() != samples {
                return Err(format!(
                    "state_fraction[{state:?}] has {} entries, expected {samples}",
                    arr.len()
                ));
            }
        }
        series
            .get("mean_link_utilization")
            .and_then(Json::as_arr)
            .ok_or("missing series array \"mean_link_utilization\"")?;
    }
    if let Some(cp) = v.get("critpath") {
        for key in ["total_cycles", "traversals", "messages", "barrier_joins"] {
            cp.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing critpath field {key:?}"))?;
        }
        cp.get("predicted_slope")
            .and_then(Json::as_f64)
            .ok_or("missing critpath field \"predicted_slope\"")?;
        let stages = cp
            .get("stage_cycles")
            .and_then(Json::as_obj)
            .ok_or("missing critpath field \"stage_cycles\"")?;
        if stages.len() != Stage::ALL.len() {
            return Err("stage_cycles must cover every stage".to_string());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsense_apps::{run_app, AppSpec};
    use commsense_machine::{MachineConfig, Mechanism, ObserveConfig};
    use commsense_workloads::bipartite::Em3dParams;

    fn tiny_request(observe: bool) -> RunRequest {
        let mut p = Em3dParams::small();
        p.iterations = 1;
        let mut cfg = MachineConfig::tiny();
        if observe {
            cfg.observe = Some(ObserveConfig {
                epoch_cycles: 100,
                trace_capacity: 1 << 14,
                max_packets: 1 << 14,
                ..Default::default()
            });
        }
        RunRequest {
            spec: AppSpec::Em3d(p),
            mechanism: Mechanism::MsgInterrupt,
            cfg,
        }
    }

    #[test]
    fn manifest_without_observation_validates() {
        let req = tiny_request(false);
        let result = run_app(&req.spec, req.mechanism, &req.cfg);
        let text = manifest_json(&req, Some(12.0), &result);
        validate_manifest(&text).unwrap();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("mechanism").and_then(Json::as_str), Some("mp-int"));
        assert_eq!(v.get("sweep_x").and_then(Json::as_f64), Some(12.0));
        assert!(v.get("series").is_none());
    }

    #[test]
    fn manifest_with_observation_embeds_series() {
        let req = tiny_request(true);
        let result = run_app(&req.spec, req.mechanism, &req.cfg);
        assert!(result.observation.is_some());
        let text = manifest_json(&req, None, &result);
        validate_manifest(&text).unwrap();
        let v = Json::parse(&text).unwrap();
        let series = v.get("series").expect("series present");
        let samples = series.get("samples").and_then(Json::as_u64).unwrap();
        assert!(samples > 0);
        assert_eq!(
            series.get("at_ps").and_then(Json::as_arr).unwrap().len(),
            samples as usize
        );
    }

    #[test]
    fn manifest_with_analysis_embeds_critpath() {
        let req = tiny_request(true);
        let result = run_app(&req.spec, req.mechanism, &req.cfg);
        let obs = result.observation.as_ref().expect("observed run");
        let cp = commsense_machine::critpath::analyze(obs, &req.cfg);
        let text = manifest_json_with_analysis(&req, None, &result, Some(&cp));
        validate_manifest(&text).unwrap();
        let v = Json::parse(&text).unwrap();
        let block = v.get("critpath").expect("critpath present");
        assert_eq!(
            block.get("total_cycles").and_then(Json::as_u64),
            Some(cp.total_cycles())
        );
        let stages = block.get("stage_cycles").and_then(Json::as_obj).unwrap();
        assert_eq!(stages.len(), Stage::ALL.len());
        // Tampered critpath blocks must be rejected.
        let broken = text.replace("\"traversals\"", "\"traversalsx\"");
        assert!(validate_manifest(&broken).is_err());
    }

    #[test]
    fn validation_rejects_tampering() {
        let req = tiny_request(false);
        let result = run_app(&req.spec, req.mechanism, &req.cfg);
        let text = manifest_json(&req, None, &result);
        let wrong_version = text.replace(
            &format!("\"schema_version\":{MANIFEST_SCHEMA_VERSION}"),
            "\"schema_version\":99",
        );
        assert!(validate_manifest(&wrong_version).is_err());
        let no_result = text.replace("\"result\"", "\"resultx\"");
        assert!(validate_manifest(&no_result).is_err());
        assert!(validate_manifest("not json").is_err());
    }
}
