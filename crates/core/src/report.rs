//! ASCII-table and CSV reporting for the experiment harness.

use commsense_apps::RunResult;
use commsense_machine::{Bucket, MachineConfig, Observation};
use commsense_mesh::PacketClass;

use crate::experiment::Sweep;
use crate::machines::MachineRow;

/// Formats an optional float to one decimal, or a placeholder.
fn opt(v: Option<f64>, width: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.1}"),
        None => format!("{:>width$}", "N/A"),
    }
}

/// Figure 4: the per-mechanism runtime breakdown table for one app.
pub fn breakdown_table(app: &str, results: &[RunResult], cfg: &MachineConfig) -> String {
    let clk = cfg.clock();
    let mut out = format!(
        "{app}: execution time breakdown (cycles, mean per node)\n{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}\n",
        "mech", "runtime", "sync", "msg-ovhd", "mem+NI", "compute", "verified"
    );
    for r in results {
        out.push_str(&format!(
            "{:<8} {:>12} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>9}\n",
            r.mechanism.label(),
            r.runtime_cycles,
            r.stats.mean_bucket_cycles(Bucket::Sync, clk),
            r.stats.mean_bucket_cycles(Bucket::MsgOverhead, clk),
            r.stats.mean_bucket_cycles(Bucket::MemWait, clk),
            r.stats.mean_bucket_cycles(Bucket::Compute, clk),
            r.verified,
        ));
    }
    out
}

/// Host-side measurement footer for a set of runs: simulated events,
/// wall-clock seconds and events per second for each mechanism. This is
/// measurement metadata about the simulator itself (see `repro perf`),
/// not a figure from the paper, so it is kept out of [`breakdown_table`].
pub fn sim_rate_table(app: &str, results: &[RunResult]) -> String {
    let mut out = format!(
        "{app}: simulator cost (host measurement)\n{:<8} {:>12} {:>9} {:>12}\n",
        "mech", "events", "wall(s)", "events/s"
    );
    for r in results {
        let rate = match r.events_per_sec() {
            Some(e) => format!("{e:>12.0}"),
            None => format!("{:>12}", "N/A"),
        };
        out.push_str(&format!(
            "{:<8} {:>12} {:>9.3} {rate}\n",
            r.mechanism.label(),
            r.stats.events,
            r.wall.as_secs_f64(),
        ));
    }
    out
}

/// Figure 4 as ASCII stacked bars: one row per mechanism, scaled to the
/// slowest, with the four buckets drawn as distinct glyphs
/// (`s` sync, `o` msg overhead, `m` memory+NI, `#` compute).
pub fn breakdown_bars(
    app: &str,
    results: &[RunResult],
    cfg: &MachineConfig,
    width: usize,
) -> String {
    let clk = cfg.clock();
    let max = results
        .iter()
        .map(|r| r.runtime_cycles)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let mut out = format!("{app}: relative runtime (s=sync o=overhead m=mem+NI #=compute)\n");
    for r in results {
        let glyphs = [
            ('s', r.stats.mean_bucket_cycles(Bucket::Sync, clk)),
            ('o', r.stats.mean_bucket_cycles(Bucket::MsgOverhead, clk)),
            ('m', r.stats.mean_bucket_cycles(Bucket::MemWait, clk)),
            ('#', r.stats.mean_bucket_cycles(Bucket::Compute, clk)),
        ];
        let mut bar = String::new();
        for (g, cycles) in glyphs {
            let n = (cycles / max * width as f64).round() as usize;
            bar.extend(std::iter::repeat_n(g, n));
        }
        out.push_str(&format!(
            "{:<8} |{:<width$}| {}\n",
            r.mechanism.label(),
            bar,
            r.runtime_cycles
        ));
    }
    out
}

/// Per-link utilization over time as an ASCII heatmap: one row per link
/// that carried traffic, epochs resampled down to at most `max_cols`
/// columns, shaded ` .:-=+*#%@` from idle to saturated, with the run-mean
/// utilization on the right. Links that never carried a packet are
/// summarized in a trailing count instead of printed as blank rows.
///
/// Above the sparse threshold the metric series covers a *sample* of the
/// machine's links: rows are the sampled columns (labelled with their
/// dense link ids when no human-readable label was recorded) and a
/// trailing note reports how many of the machine's links the sample
/// covers, instead of silently presenting the subset as the whole mesh.
pub fn link_heatmap(obs: &Observation, max_cols: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let series = &obs.series;
    let samples = series.samples();
    let max_cols = max_cols.max(1);
    let mut out =
        String::from("link utilization heatmap (rows: links, cols: time, ` `..`@` = 0..100%)\n");
    if samples == 0 {
        out.push_str("  (no samples recorded)\n");
        return out;
    }
    let cols = samples.min(max_cols);
    let mut idle = 0usize;
    for col in 0..series.links {
        let total_busy = series.link_busy_ps[(samples - 1) * series.links + col];
        if total_busy == 0 {
            idle += 1;
            continue;
        }
        let mut row = String::new();
        for c in 0..cols {
            // Each column averages the utilization of its sample bucket.
            let lo = c * samples / cols;
            let hi = ((c + 1) * samples / cols).max(lo + 1);
            let mean: f64 = (lo..hi)
                .map(|s| series.link_utilization(s, col))
                .sum::<f64>()
                / (hi - lo) as f64;
            let shade = ((mean * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            row.push(SHADES[shade]);
        }
        let label = match obs.link_labels.get(col) {
            Some(l) => l.clone(),
            // Sparse series label gaps fall back to the dense link id the
            // column samples, never to column position.
            None => format!(
                "link{}",
                series.link_ids.get(col).copied().unwrap_or(col as u32)
            ),
        };
        out.push_str(&format!(
            "{label:>8} |{row}| mean {:5.1}%\n",
            obs.mean_link_utilization(col) * 100.0
        ));
    }
    if idle > 0 {
        out.push_str(&format!("  ({idle} sampled links carried no traffic)\n"));
    }
    // The recorder's busy table is dense (one slot per physical link), so
    // it tells us how much of the machine the sampled series covers.
    let total_links = obs.net.link_busy.len();
    if total_links > series.links {
        out.push_str(&format!(
            "  (showing {} sampled of {total_links} links)\n",
            series.links
        ));
    }
    out
}

/// Figure 5: the communication-volume breakdown table for one app.
pub fn volume_table(app: &str, results: &[RunResult]) -> String {
    let mut out = format!(
        "{app}: communication volume (bytes injected)\n{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "mech", "total", "invalidates", "requests", "headers", "data"
    );
    for r in results {
        let v = &r.stats.volume;
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            r.mechanism.label(),
            v.app_total(),
            v.class_bytes(PacketClass::Invalidate),
            v.class_bytes(PacketClass::Request),
            v.class_bytes(PacketClass::Header),
            v.class_bytes(PacketClass::Data),
        ));
    }
    out
}

/// The x values appearing across `sweeps`, in order of first appearance.
///
/// Sweeps are usually rectangular (every mechanism measured at every x),
/// but a fault-tolerant run may drop failed points, leaving curves ragged;
/// the union keeps every surviving point printable.
fn sweep_xs(sweeps: &[Sweep]) -> Vec<f64> {
    let mut xs: Vec<f64> = Vec::new();
    for s in sweeps {
        for p in &s.points {
            if !xs.iter().any(|x| x.to_bits() == p.x.to_bits()) {
                xs.push(p.x);
            }
        }
    }
    xs
}

/// The runtime measured by `s` at exactly `x`, if that point survived.
fn sweep_runtime_at(s: &Sweep, x: f64) -> Option<u64> {
    s.points
        .iter()
        .find(|p| p.x.to_bits() == x.to_bits())
        .map(|p| p.result.runtime_cycles)
}

/// Figures 7–10: one sweep as an x/runtime series table. Points missing
/// from a curve (dropped by a fault-tolerant run) render as `-`.
pub fn sweep_table(title: &str, x_label: &str, sweeps: &[Sweep]) -> String {
    let mut out = format!("{title}\n{x_label:>12}");
    for s in sweeps {
        out.push_str(&format!(" {:>12}", s.mechanism.label()));
    }
    out.push('\n');
    for x in sweep_xs(sweeps) {
        out.push_str(&format!("{x:>12.2}"));
        for s in sweeps {
            match sweep_runtime_at(s, x) {
                Some(cycles) => out.push_str(&format!(" {cycles:>12}")),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// CSV form of [`sweep_table`] (for external plotting). Missing points
/// render as empty cells.
pub fn sweep_csv(x_label: &str, sweeps: &[Sweep]) -> String {
    let mut out = String::from(x_label);
    for s in sweeps {
        out.push(',');
        out.push_str(s.mechanism.label());
    }
    out.push('\n');
    for x in sweep_xs(sweeps) {
        out.push_str(&format!("{x}"));
        for s in sweeps {
            match sweep_runtime_at(s, x) {
                Some(cycles) => out.push_str(&format!(",{cycles}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// CSV form of [`breakdown_table`] (Figure 4): one row per mechanism with
/// the runtime and the four-bucket breakdown. This is what the resume
/// smoke test diffs between cold and warm store runs, so every column is
/// a pure function of the request.
pub fn breakdown_csv(app: &str, results: &[RunResult], cfg: &MachineConfig) -> String {
    let clk = cfg.clock();
    let mut out =
        String::from("app,mech,runtime_cycles,sync,msg_overhead,mem_ni_wait,compute,verified\n");
    for r in results {
        out.push_str(&format!(
            "{app},{},{},{:.1},{:.1},{:.1},{:.1},{}\n",
            r.mechanism.label(),
            r.runtime_cycles,
            r.stats.mean_bucket_cycles(Bucket::Sync, clk),
            r.stats.mean_bucket_cycles(Bucket::MsgOverhead, clk),
            r.stats.mean_bucket_cycles(Bucket::MemWait, clk),
            r.stats.mean_bucket_cycles(Bucket::Compute, clk),
            r.verified,
        ));
    }
    out
}

/// Table 1 rendering.
pub fn table1_text(rows: &[MachineRow]) -> String {
    let mut out = format!(
        "{:<16} {:>7} {:<16} {:>10} {:>10} {:>8} {:>8} {:>7}\n",
        "Machine", "MHz", "Topology", "Bsctn MB/s", "B/cycle", "NetLat", "Remote", "Local"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>7.1} {:<16} {} {} {} {} {:>7.0}\n",
            format!("{}{}", r.name, if r.estimated { "*" } else { "" }),
            r.proc_mhz,
            r.topology,
            opt(r.bisection_mb_s, 10),
            opt(r.bytes_per_cycle(), 10),
            opt(r.net_latency_cycles, 8),
            opt(r.remote_miss_cycles, 8),
            r.local_miss_cycles,
        ));
    }
    out.push_str("* projected or simulated clock\n");
    out
}

/// Table 2 rendering (local-miss units).
pub fn table2_text(rows: &[MachineRow]) -> String {
    let mut out = format!(
        "{:<16} {:>16} {:>18}\n",
        "Machine", "B/local-miss", "NetLat (misses)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {} {}\n",
            r.name,
            opt(r.bytes_per_local_miss(), 16),
            opt(r.latency_in_local_misses(), 18),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::table1;

    #[test]
    fn tables_render_every_machine() {
        let t1 = table1_text(&table1());
        let t2 = table2_text(&table1());
        for r in table1() {
            assert!(t1.contains(r.name), "table 1 missing {}", r.name);
            assert!(t2.contains(r.name), "table 2 missing {}", r.name);
        }
        assert!(t1.contains("18.0"), "Alewife bytes/cycle present");
        assert!(t2.contains("198.0"), "Alewife bytes/local-miss present");
    }

    #[test]
    fn opt_formats_missing_values() {
        assert_eq!(opt(None, 5), "  N/A");
        assert_eq!(opt(Some(1.25), 6), "   1.2");
    }

    #[test]
    fn breakdown_outputs_cover_all_mechanisms() {
        use crate::experiment::base_comparison;
        use commsense_apps::AppSpec;
        use commsense_machine::MachineConfig;
        let mut p = commsense_workloads::bipartite::Em3dParams::small();
        p.nodes = 200;
        p.iterations = 1;
        let cfg = MachineConfig::alewife();
        let results = base_comparison(&AppSpec::Em3d(p), &cfg);
        let table = breakdown_table("EM3D", &results, &cfg);
        let bars = breakdown_bars("EM3D", &results, &cfg, 40);
        let vols = volume_table("EM3D", &results);
        let rates = sim_rate_table("EM3D", &results);
        for mech in commsense_machine::Mechanism::ALL {
            assert!(table.contains(mech.label()), "table missing {mech}");
            assert!(bars.contains(mech.label()), "bars missing {mech}");
            assert!(vols.contains(mech.label()), "volumes missing {mech}");
            assert!(rates.contains(mech.label()), "rates missing {mech}");
        }
        // These runs were actually simulated, so the wall clock is nonzero
        // and every row reports a concrete event rate.
        assert!(!rates.contains("N/A"), "measured runs should have a rate");
        // The slowest mechanism's bar reaches (close to) full width.
        assert!(bars.lines().skip(1).any(|l| l.len() > 40));
    }

    #[test]
    fn heatmap_shades_busy_links() {
        use commsense_apps::{run_app, AppSpec};
        use commsense_machine::{MachineConfig, Mechanism, ObserveConfig};
        let mut p = commsense_workloads::bipartite::Em3dParams::small();
        p.iterations = 1;
        let mut cfg = MachineConfig::tiny();
        cfg.observe = Some(ObserveConfig {
            epoch_cycles: 100,
            trace_capacity: 1 << 14,
            max_packets: 1 << 14,
            ..Default::default()
        });
        let result = run_app(&AppSpec::Em3d(p), Mechanism::MsgPoll, &cfg);
        let obs = result.observation.expect("observation recorded");
        let map = link_heatmap(&obs, 40);
        // At least one link carried traffic, labelled with its mesh name.
        assert!(map.contains("| mean"), "no link rows rendered:\n{map}");
        assert!(map.contains('('), "link labels should name endpoints");
        // Column count is bounded by the requested width.
        for line in map.lines().filter(|l| l.contains('|')) {
            let row = line.split('|').nth(1).unwrap();
            assert!(row.len() <= 40, "row too wide: {line}");
        }
    }

    #[test]
    fn heatmap_discloses_sparse_link_sampling() {
        use commsense_apps::{run_app, AppSpec};
        use commsense_machine::{MachineConfig, Mechanism, ObserveConfig};
        let mut p = commsense_workloads::bipartite::Em3dParams::small();
        p.iterations = 1;
        let mut cfg = MachineConfig::tiny();
        // Force the sparse path on a tiny machine: sample 2 nodes (and 4
        // link columns) out of the full mesh.
        cfg.observe = Some(ObserveConfig {
            epoch_cycles: 100,
            trace_capacity: 1 << 14,
            max_packets: 1 << 14,
            sparse_threshold: 2,
            ..Default::default()
        });
        let result = run_app(&AppSpec::Em3d(p), Mechanism::MsgPoll, &cfg);
        let obs = result.observation.expect("observation recorded");
        let total_links = obs.net.link_busy.len();
        assert!(
            obs.series.links < total_links,
            "threshold 2 must sample a strict subset of {total_links} links"
        );
        let map = link_heatmap(&obs, 40);
        assert!(
            map.contains(&format!(
                "showing {} sampled of {total_links} links",
                obs.series.links
            )),
            "sparse heatmap must disclose sampling:\n{map}"
        );
    }

    #[test]
    fn sweep_csv_matches_table_data() {
        use crate::experiment::bisection_sweep;
        use commsense_apps::AppSpec;
        use commsense_machine::{MachineConfig, Mechanism};
        let mut p = commsense_workloads::bipartite::Em3dParams::small();
        p.nodes = 200;
        p.iterations = 1;
        let sweeps = bisection_sweep(
            &AppSpec::Em3d(p),
            &[Mechanism::MsgPoll],
            &MachineConfig::alewife(),
            &[0.0, 12.0],
            64,
        );
        let csv = sweep_csv("bpc", &sweeps);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("bpc,mp-poll"));
        let row: Vec<&str> = lines.next().expect("data row").split(',').collect();
        assert!((row[0].parse::<f64>().unwrap() - 18.0).abs() < 0.01);
        assert_eq!(
            row[1].parse::<u64>().unwrap(),
            sweeps[0].points[0].result.runtime_cycles
        );
        assert_eq!(csv.lines().count(), 3);
    }
}
