//! The experiment engine: plans, a parallel runner, and a prepared-workload
//! cache.
//!
//! The paper's experiments are embarrassingly parallel: every measured
//! point is a pure function of `(workload, mechanism, machine config)`.
//! This module splits experiment execution into three pieces that exploit
//! that:
//!
//! * [`ExperimentPlan`] — a pure description of an experiment: an indexed
//!   list of [`RunRequest`]s plus the mapping from request indices back to
//!   per-mechanism curves. Built by the plan builders in
//!   [`crate::experiment`]; contains no execution policy.
//! * [`Runner`] — executes a request list on a scoped thread pool,
//!   collecting results keyed by request index so the output is
//!   *bit-identical* to serial execution regardless of job count. A
//!   runner may carry a persistent [`ResultStore`] (read-through /
//!   write-through) and isolates each run behind `catch_unwind` with
//!   bounded retry, so one poisoned point yields a reported-failed
//!   [`RunOutcome`] and a completed sweep instead of a dead process.
//! * [`WorkloadCache`] — memoizes [`AppSpec::prepare`] per
//!   `(spec, nprocs)`, so a sweep generates each graph/system and
//!   sequential reference once and shares it (via `Arc`) across every
//!   point and mechanism.
//!
//! # Examples
//!
//! ```
//! use commsense_core::engine::Runner;
//! use commsense_core::experiment::bisection_plan;
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_apps::AppSpec;
//! use commsense_workloads::bipartite::Em3dParams;
//!
//! let mut p = Em3dParams::small();
//! p.iterations = 1;
//! let plan = bisection_plan(
//!     &AppSpec::Em3d(p),
//!     &[Mechanism::MsgPoll],
//!     &MachineConfig::alewife(),
//!     &[0.0, 12.0],
//!     64,
//! );
//! assert_eq!(plan.requests().len(), 2);
//! let sweeps = plan.run(&Runner::serial());
//! assert_eq!(sweeps[0].points.len(), 2);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use commsense_apps::{run_prepared, AppSpec, PreparedWorkload, RunResult};
use commsense_machine::{MachineConfig, Mechanism};

use crate::experiment::{Sweep, SweepPoint};
use crate::store::ResultStore;

/// One fully specified simulation: which workload, which mechanism, which
/// machine. Requests are pure data — executing one has no effect on any
/// other, which is what lets the [`Runner`] reorder them freely.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// The application workload.
    pub spec: AppSpec,
    /// The communication mechanism.
    pub mechanism: Mechanism,
    /// The machine configuration (already specialized for the point being
    /// measured; the runner applies it as-is).
    pub cfg: MachineConfig,
}

/// Memoizes workload preparation per `(spec, nprocs)`.
///
/// `AppSpec` contains floating-point parameters and therefore implements
/// only `PartialEq`, so the cache is a linear scan over its entries; the
/// entry count is tiny (one per distinct workload in an experiment) while
/// each entry saves a graph generation plus a sequential reference solve.
#[derive(Debug, Default)]
pub struct WorkloadCache {
    entries: Vec<(AppSpec, usize, PreparedWorkload)>,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The prepared workload for `(spec, nprocs)`, preparing it on first
    /// use. The returned value is an `Arc`-backed cheap clone of the
    /// cached entry.
    pub fn get(&mut self, spec: &AppSpec, nprocs: usize) -> PreparedWorkload {
        if let Some((_, _, w)) = self
            .entries
            .iter()
            .find(|(s, n, _)| *n == nprocs && s == spec)
        {
            return w.clone();
        }
        let w = spec.prepare(nprocs);
        self.entries.push((spec.clone(), nprocs, w.clone()));
        w
    }

    /// Number of distinct workloads prepared so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How one request ended: a result (simulated or replayed from the
/// store), or a failure that exhausted its retries.
// The variants are deliberately unboxed: outcome vectors are short-lived
// (one slot per request, immediately folded into sweeps) and the `Done`
// payload is moved out by value in `run_cached`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The request produced a result.
    Done {
        /// The run's result.
        result: RunResult,
        /// Whether it was replayed from the store rather than simulated.
        cached: bool,
    },
    /// Every attempt panicked (or the request was already quarantined).
    Failed {
        /// Simulation attempts made this invocation (0 when the request
        /// was skipped because the store had it quarantined).
        attempts: usize,
        /// The panic message of the last attempt (or the quarantine note).
        message: String,
    },
}

impl RunOutcome {
    /// The result, if the request succeeded.
    pub fn result(&self) -> Option<&RunResult> {
        match self {
            RunOutcome::Done { result, .. } => Some(result),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// Whether the result came from the store.
    pub fn is_cached(&self) -> bool {
        matches!(self, RunOutcome::Done { cached: true, .. })
    }
}

/// Executes [`RunRequest`]s, optionally in parallel.
///
/// Results are keyed by request index, and each simulation is a pure
/// function of its request, so the output vector is bit-identical whatever
/// the job count: `Runner::new(8).run(reqs) == Runner::serial().run(reqs)`.
/// The same holds with a [`ResultStore`] attached: a replayed record is
/// the bit-identical serialization of what the simulation would produce.
#[derive(Debug, Clone)]
pub struct Runner {
    jobs: usize,
    store: Option<Arc<ResultStore>>,
    retries: usize,
}

impl Runner {
    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            store: None,
            retries: 1,
        }
    }

    /// A single-threaded runner.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// A runner sized from the environment: `COMMSENSE_JOBS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let jobs = std::env::var("COMMSENSE_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Runner::new(jobs)
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches a persistent result store (builder style): requests are
    /// looked up before simulating and written through after.
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets how many times a panicking run is retried before being
    /// reported failed (builder style; default 1, i.e. two attempts).
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// Runs every request, sharing workload preparations through a private
    /// cache. Results are in request order.
    pub fn run(&self, requests: &[RunRequest]) -> Vec<RunResult> {
        self.run_cached(requests, &mut WorkloadCache::new())
    }

    /// Runs every request, sharing workload preparations through `cache`
    /// (use one cache across several plans to prepare each workload only
    /// once for a whole session). Results are in request order.
    ///
    /// # Panics
    ///
    /// Re-raises a request's panic if it fails every retry: this is the
    /// all-or-nothing interface. Use [`Runner::run_outcomes`] (or
    /// [`ExperimentPlan::run_reported`]) to complete a sweep around
    /// failed points instead.
    pub fn run_cached(&self, requests: &[RunRequest], cache: &mut WorkloadCache) -> Vec<RunResult> {
        self.run_outcomes(requests, cache)
            .into_iter()
            .map(|o| match o {
                RunOutcome::Done { result, .. } => result,
                RunOutcome::Failed { message, .. } => panic!("{message}"),
            })
            .collect()
    }

    /// Runs every request, reporting per-request outcomes instead of
    /// panicking: each simulation runs behind `catch_unwind`, a panicking
    /// run is retried [`Runner::with_retries`] times, and a request that
    /// fails every attempt yields [`RunOutcome::Failed`] while the rest of
    /// the list completes. With a store attached, results are read through
    /// (hits skip simulation) and written through, and exhausted failures
    /// are quarantined so warm re-runs fail them fast.
    ///
    /// Outcomes are in request order and identical for any job count.
    pub fn run_outcomes(
        &self,
        requests: &[RunRequest],
        cache: &mut WorkloadCache,
    ) -> Vec<RunOutcome> {
        // Preparation is serial (the cache is a simple &mut structure) but
        // happens once per distinct workload; the simulations dominate.
        // Store hits still prepare — a hit usually shares its workload
        // with live points of the same sweep, and a fully warm sweep is
        // already orders of magnitude faster than a cold one.
        let prepared: Vec<PreparedWorkload> = requests
            .iter()
            .map(|r| cache.get(&r.spec, r.cfg.nodes))
            .collect();
        let jobs = self.jobs.min(requests.len());
        if jobs <= 1 {
            return requests
                .iter()
                .zip(&prepared)
                .map(|(r, w)| self.execute_one(r, w))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunOutcome>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let outcome = self.execute_one(&requests[i], &prepared[i]);
                    *slots[i].lock().expect("outcome slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("outcome slot poisoned")
                    .expect("request ran")
            })
            .collect()
    }

    /// Executes a single prepared request with the runner's full policy —
    /// store read-through, bounded-retry `catch_unwind` isolation,
    /// write-through, quarantine on exhaustion. This is the unit the
    /// sweep service's shared worker pool executes: the service machine
    /// schedules requests one at a time (deduplicating in flight), so it
    /// needs per-request execution rather than the batch interfaces.
    pub fn run_one(&self, req: &RunRequest, w: &PreparedWorkload) -> RunOutcome {
        self.execute_one(req, w)
    }

    /// Executes one request: store lookup, bounded-retry simulation,
    /// write-through, quarantine on exhaustion.
    fn execute_one(&self, req: &RunRequest, w: &PreparedWorkload) -> RunOutcome {
        // Check-enabled runs bypass both the store and the catch: a
        // CHECK-FAIL panic hook (see the bench harness) reports at the
        // panic site either way, but the whole point of a checked run is
        // to fail loudly, not to be retried or replayed.
        if req.cfg.check.is_some() {
            return RunOutcome::Done {
                result: run_prepared(w, req.mechanism, &req.cfg),
                cached: false,
            };
        }
        // Observed runs bypass the store only: a cached record carries no
        // observation, so replaying one would silently drop the recording
        // the caller asked for.
        let store = self.store.as_deref().filter(|_| req.cfg.observe.is_none());
        if let Some(store) = store {
            if let Some(message) = store.quarantined(req) {
                return RunOutcome::Failed {
                    attempts: 0,
                    message,
                };
            }
            if let Some(result) = store.load(req) {
                return RunOutcome::Done {
                    result,
                    cached: true,
                };
            }
        }
        let attempts = self.retries + 1;
        let mut message = String::new();
        for _ in 0..attempts {
            match catch_unwind(AssertUnwindSafe(|| {
                run_prepared(w, req.mechanism, &req.cfg)
            })) {
                Ok(result) => {
                    if let Some(store) = store {
                        if let Err(e) = store.save(req, &result) {
                            eprintln!("warning: store write failed: {e}");
                        }
                    }
                    return RunOutcome::Done {
                        result,
                        cached: false,
                    };
                }
                Err(payload) => message = panic_message(payload.as_ref()),
            }
        }
        if let Some(store) = store {
            store.quarantine(req, &message);
        }
        RunOutcome::Failed { attempts, message }
    }
}

/// Renders a caught panic payload (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

/// A point of one mechanism's curve: its x value and which request index
/// produces its measurement. Several points may reference the same request
/// (Figure 10 replicates each message-passing run flat across the x axis).
#[derive(Debug, Clone, Copy)]
struct PointRef {
    x: f64,
    request: usize,
}

/// A pure description of an experiment: the requests to execute, plus how
/// to fold their results back into per-mechanism [`Sweep`]s.
///
/// The assembly order is fixed by the plan, not by execution order, so the
/// resulting sweeps are deterministic and identical between serial and
/// parallel runs.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    app: &'static str,
    requests: Vec<RunRequest>,
    curves: Vec<(Mechanism, Vec<PointRef>)>,
}

impl ExperimentPlan {
    /// An empty plan for `app`.
    pub fn new(app: &'static str) -> Self {
        ExperimentPlan {
            app,
            requests: Vec::new(),
            curves: Vec::new(),
        }
    }

    /// Adds a request and returns its index (to pass to [`Self::add_point`]).
    pub fn add_request(&mut self, request: RunRequest) -> usize {
        self.requests.push(request);
        self.requests.len() - 1
    }

    /// Appends a point at `x` to `mechanism`'s curve, measured by the
    /// request at `request` (an index returned by [`Self::add_request`]).
    ///
    /// # Panics
    ///
    /// Panics if `request` is out of range.
    pub fn add_point(&mut self, mechanism: Mechanism, x: f64, request: usize) {
        assert!(
            request < self.requests.len(),
            "point references unknown request {request}"
        );
        match self.curves.iter_mut().find(|(m, _)| *m == mechanism) {
            Some((_, points)) => points.push(PointRef { x, request }),
            None => self.curves.push((mechanism, vec![PointRef { x, request }])),
        }
    }

    /// The requests, in index order.
    pub fn requests(&self) -> &[RunRequest] {
        &self.requests
    }

    /// The plan's curve structure: per mechanism (in first-added order),
    /// the `(x, request index)` pairs of its points. This is the recipe
    /// external executors (the sweep service) need to fold per-request
    /// outcomes back into [`Sweep`]s without re-deriving the plan.
    pub fn curves(&self) -> Vec<(Mechanism, Vec<(f64, usize)>)> {
        self.curves
            .iter()
            .map(|(m, points)| (*m, points.iter().map(|p| (p.x, p.request)).collect()))
            .collect()
    }

    /// Whether the plan contains no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Folds results (in request order, as returned by [`Runner::run`])
    /// into per-mechanism sweeps, in the order mechanisms were first added.
    ///
    /// # Panics
    ///
    /// Panics if `results` does not have one entry per request.
    pub fn assemble(&self, results: &[RunResult]) -> Vec<Sweep> {
        assert_eq!(
            results.len(),
            self.requests.len(),
            "result count must match request count"
        );
        self.curves
            .iter()
            .map(|(mech, points)| Sweep {
                app: self.app,
                mechanism: *mech,
                points: points
                    .iter()
                    .map(|p| SweepPoint {
                        x: p.x,
                        result: results[p.request].clone(),
                    })
                    .collect(),
            })
            .collect()
    }

    /// Executes the plan on `runner`, sharing preparations through `cache`.
    pub fn run_with(&self, runner: &Runner, cache: &mut WorkloadCache) -> Vec<Sweep> {
        self.assemble(&runner.run_cached(&self.requests, cache))
    }

    /// Executes the plan on `runner` with a private workload cache.
    pub fn run(&self, runner: &Runner) -> Vec<Sweep> {
        self.run_with(runner, &mut WorkloadCache::new())
    }

    /// Folds per-request [`RunOutcome`]s into sweeps, dropping failed
    /// points from their curves (sweeps may come back ragged) and listing
    /// them separately, with store hit/miss tallies.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` does not have one entry per request.
    pub fn assemble_outcomes(&self, outcomes: &[RunOutcome]) -> PlanRun {
        assert_eq!(
            outcomes.len(),
            self.requests.len(),
            "outcome count must match request count"
        );
        let mut failed = Vec::new();
        let sweeps = self
            .curves
            .iter()
            .map(|(mech, points)| Sweep {
                app: self.app,
                mechanism: *mech,
                points: points
                    .iter()
                    .filter_map(|p| match &outcomes[p.request] {
                        RunOutcome::Done { result, .. } => Some(SweepPoint {
                            x: p.x,
                            result: result.clone(),
                        }),
                        RunOutcome::Failed { attempts, message } => {
                            failed.push(FailedPoint {
                                mechanism: *mech,
                                x: p.x,
                                attempts: *attempts,
                                message: message.clone(),
                            });
                            None
                        }
                    })
                    .collect(),
            })
            .collect();
        let simulated = outcomes
            .iter()
            .filter(|o| matches!(o, RunOutcome::Done { cached: false, .. }))
            .count();
        let cached = outcomes.iter().filter(|o| o.is_cached()).count();
        PlanRun {
            sweeps,
            failed,
            simulated,
            cached,
        }
    }

    /// Executes the plan with per-point fault tolerance: a panicking
    /// request costs its own point (after retries), not the sweep.
    pub fn run_reported(&self, runner: &Runner, cache: &mut WorkloadCache) -> PlanRun {
        self.assemble_outcomes(&runner.run_outcomes(&self.requests, cache))
    }
}

/// A point dropped from a [`PlanRun`] because its request failed.
#[derive(Debug, Clone)]
pub struct FailedPoint {
    /// The curve the point belonged to.
    pub mechanism: Mechanism,
    /// The point's x value.
    pub x: f64,
    /// Simulation attempts made (0 = skipped via quarantine).
    pub attempts: usize,
    /// The final panic message (or quarantine note).
    pub message: String,
}

/// A fault-tolerant plan execution: the completed (possibly ragged)
/// sweeps, the points that failed, and how the work split between fresh
/// simulation and store replay.
#[derive(Debug, Clone)]
pub struct PlanRun {
    /// Per-mechanism sweeps, with failed points omitted.
    pub sweeps: Vec<Sweep>,
    /// Points whose request failed every retry.
    pub failed: Vec<FailedPoint>,
    /// Requests that were freshly simulated.
    pub simulated: usize,
    /// Requests replayed from the store.
    pub cached: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsense_workloads::bipartite::Em3dParams;

    fn tiny_spec() -> AppSpec {
        let mut p = Em3dParams::small();
        p.iterations = 1;
        AppSpec::Em3d(p)
    }

    #[test]
    fn runner_clamps_jobs_to_one() {
        assert_eq!(Runner::new(0).jobs(), 1);
        assert_eq!(Runner::serial().jobs(), 1);
    }

    #[test]
    fn cache_prepares_each_workload_once() {
        let spec = tiny_spec();
        let mut cache = WorkloadCache::new();
        let a = cache.get(&spec, 32);
        let b = cache.get(&spec, 32);
        assert_eq!(cache.len(), 1);
        match (&a, &b) {
            (PreparedWorkload::Em3d(x), PreparedWorkload::Em3d(y)) => {
                assert!(
                    std::sync::Arc::ptr_eq(x, y),
                    "cache must share one preparation"
                );
            }
            _ => panic!("expected EM3D workloads"),
        }
        // A different machine size is a different preparation.
        cache.get(&spec, 16);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn assemble_replicates_shared_requests() {
        let spec = tiny_spec();
        let cfg = MachineConfig::alewife().with_mechanism(Mechanism::MsgPoll);
        let mut plan = ExperimentPlan::new(spec.name());
        let idx = plan.add_request(RunRequest {
            spec: spec.clone(),
            mechanism: Mechanism::MsgPoll,
            cfg,
        });
        plan.add_point(Mechanism::MsgPoll, 1.0, idx);
        plan.add_point(Mechanism::MsgPoll, 2.0, idx);
        let sweeps = plan.run(&Runner::serial());
        assert_eq!(sweeps.len(), 1);
        assert_eq!(sweeps[0].points.len(), 2);
        assert_eq!(
            sweeps[0].points[0].result.runtime_cycles,
            sweeps[0].points[1].result.runtime_cycles
        );
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    fn dangling_point_is_rejected() {
        let mut plan = ExperimentPlan::new("EM3D");
        plan.add_point(Mechanism::MsgPoll, 1.0, 0);
    }
}
