//! A minimal JSON reader and writer helper, enough to validate the
//! artifacts this crate emits (run manifests, Perfetto traces) without any
//! external dependency.
//!
//! The parser is a plain recursive-descent implementation over the JSON
//! grammar (RFC 8259): objects, arrays, strings with the standard escape
//! set, numbers parsed as `f64`, and the three literals. Object keys keep
//! insertion order (stored as a `Vec` of pairs), which is what the golden
//! tests want when asserting on emitted artifacts.
//!
//! # Examples
//!
//! ```
//! use commsense_core::json::Json;
//!
//! let v = Json::parse(r#"{"schema": 1, "tags": ["a", "b"], "ok": true}"#).unwrap();
//! assert_eq!(v.get("schema").and_then(Json::as_f64), Some(1.0));
//! assert_eq!(v.get("tags").and_then(Json::as_arr).map(Vec::len), Some(2));
//! assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
//! ```

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep the order they appeared in the text.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document. Trailing non-whitespace input is an
    /// error, as is any grammar violation; the message includes the byte
    /// offset where parsing stopped. Malformed input always yields `Err`,
    /// never a panic: container nesting is capped (so adversarially deep
    /// input cannot overflow the recursion stack) and duplicate object
    /// keys are rejected (our own writers never emit them, so one
    /// silently shadowing another in a manifest would hide corruption).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes, and control characters.
///
/// # Examples
///
/// ```
/// let mut out = String::new();
/// commsense_core::json::push_escaped(&mut out, "a\"b");
/// assert_eq!(out, r#""a\"b""#);
/// ```
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. This is a recursive-
/// descent parser, so unbounded nesting in malformed (or adversarial)
/// input would overflow the call stack and abort the process; validation
/// must fail with an error instead. 128 is far beyond anything our own
/// artifacts produce.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| k == &key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, false], "c": null}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.as_obj().unwrap()[0].0, "a");
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn truncated_documents_error_cleanly() {
        // Every prefix of a valid manifest-shaped document must produce an
        // error (not a panic): validation sees torn files after crashes.
        let doc = r#"{"schema_version": 1, "runs": [{"mech": "sm", "cycles": 123}], "ok": true}"#;
        for cut in 1..doc.len() {
            if doc.is_char_boundary(cut) {
                assert!(Json::parse(&doc[..cut]).is_err(), "prefix of {cut} bytes");
            }
        }
    }

    #[test]
    fn bad_escapes_are_errors() {
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape letter");
        assert!(Json::parse(r#""\u12"#).is_err(), "truncated \\u escape");
        assert!(Json::parse(r#""\u12zx""#).is_err(), "non-hex \\u escape");
        assert!(Json::parse("\"\\").is_err(), "escape at end of input");
        // Lone surrogates decode to U+FFFD rather than erroring.
        assert_eq!(
            Json::parse(r#""\ud800""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = Json::parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(err.contains("duplicate key \"a\""), "{err}");
        // Same key at different depths is fine.
        assert!(Json::parse(r#"{"a": {"a": 1}}"#).is_ok());
    }

    #[test]
    fn deep_nesting_is_capped_not_fatal() {
        // Far past any real artifact: must error, not overflow the stack.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}1{}", open.repeat(4096), close.repeat(4096));
            let err = Json::parse(&deep).unwrap_err();
            assert!(err.contains("nesting deeper than"), "{err}");
        }
        // Within the cap still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // Siblings do not accumulate depth.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn escaping_roundtrips() {
        let mut out = String::new();
        push_escaped(&mut out, "tab\t\"quote\"\u{1}");
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("tab\t\"quote\"\u{1}"));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""héllo → 世界""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
    }
}
