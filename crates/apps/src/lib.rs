//! The four irregular applications of the HPCA'98 study, each implemented
//! under all five communication mechanisms.
//!
//! | App | Structure | Comm/compute | Paper section |
//! |-----|-----------|--------------|---------------|
//! | [`em3d`]    | bipartite red/black graph    | low compute per edge (2 FLOPs)   | §4.1 |
//! | [`unstruc`] | undirected unstructured mesh | high compute per edge (75 FLOPs) | §4.2 |
//! | [`iccg`]    | directed acyclic graph       | very fine-grained (2 FLOPs/edge) | §4.3 |
//! | [`moldyn`]  | molecular pair lists (RCB)   | very high compute per pair       | §4.4 |
//!
//! Every variant executes the same floating-point operations as the
//! sequential reference from `commsense-workloads`, so results are
//! verified after each run ([`RunResult::verified`]): exactly where the
//! accumulation order is deterministic, within a small tolerance where the
//! parallel accumulation order differs (force accumulation, ICCG
//! producer-computes).
//!
//! # Examples
//!
//! ```
//! use commsense_apps::{run_app, run_prepared, AppSpec};
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_workloads::bipartite::Em3dParams;
//!
//! let cfg = MachineConfig::tiny();
//! let spec = AppSpec::Em3d(Em3dParams::small());
//! let result = run_app(&spec, Mechanism::MsgPoll, &cfg);
//! assert!(result.verified);
//! // Generate the graph and reference once, then run every mechanism
//! // against the shared preparation.
//! let prepared = spec.prepare(cfg.nodes);
//! let sm = run_prepared(&prepared, Mechanism::SharedMem, &cfg);
//! assert!(sm.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod em3d;
pub mod iccg;
pub mod meshforce;
pub mod microbench;
pub mod moldyn;
pub mod unstruc;

use std::sync::Arc;

use commsense_machine::{MachineConfig, Mechanism, RunStats};
use commsense_workloads::bipartite::Em3dParams;
use commsense_workloads::moldyn::MoldynParams;
use commsense_workloads::sparse::IccgParams;
use commsense_workloads::unstruct::UnstrucParams;

/// Workload scale for harnesses that sweep the whole application suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure profiles (default for `repro` and `cargo bench`).
    Bench,
    /// The paper's workload sizes (minutes for the full set).
    Paper,
    /// Unit-test sizes (used by the harnesses' own tests).
    Small,
}

impl Scale {
    /// The scale's lower-case protocol label.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Bench => "bench",
            Scale::Paper => "paper",
            Scale::Small => "small",
        }
    }

    /// Parses a protocol label back into a scale.
    pub fn from_label(label: &str) -> Option<Scale> {
        match label {
            "bench" => Some(Scale::Bench),
            "paper" => Some(Scale::Paper),
            "small" => Some(Scale::Small),
            _ => None,
        }
    }
}

/// The four applications at the chosen scale.
pub fn suite(scale: Scale) -> Vec<AppSpec> {
    match scale {
        Scale::Paper => AppSpec::paper_suite(),
        Scale::Small => AppSpec::small_suite(),
        Scale::Bench => vec![
            AppSpec::Em3d(Em3dParams {
                nodes: 2000,
                degree: 10,
                pct_nonlocal: 0.2,
                span: 3,
                iterations: 5,
                seed: 0x3d,
            }),
            AppSpec::Unstruc(UnstrucParams {
                nodes: 1500,
                avg_degree: 7,
                flops_per_edge: 75,
                iterations: 5,
                seed: 0x05,
            }),
            AppSpec::Iccg(IccgParams {
                rows: 3000,
                avg_band: 8,
                far_fraction: 0.08,
                chunk_rows: 48,
                seed: 0x1cc6,
            }),
            AppSpec::Moldyn(MoldynParams {
                molecules: 1024,
                box_size: 16.0,
                cutoff: 1.2,
                iterations: 5,
                rebuild_every: 20,
                seed: 0x01d,
            }),
        ],
    }
}

/// The EM3D spec of a suite (the paper's running example for the
/// sensitivity sweeps).
pub fn em3d_spec(scale: Scale) -> AppSpec {
    suite(scale).remove(0)
}

/// Which application to run, with its workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// EM3D electromagnetic propagation.
    Em3d(Em3dParams),
    /// UNSTRUC fluid flow on an unstructured mesh.
    Unstruc(UnstrucParams),
    /// ICCG sparse triangular solve.
    Iccg(IccgParams),
    /// MOLDYN molecular dynamics.
    Moldyn(MoldynParams),
}

impl AppSpec {
    /// The application's short name.
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::Em3d(_) => "EM3D",
            AppSpec::Unstruc(_) => "UNSTRUC",
            AppSpec::Iccg(_) => "ICCG",
            AppSpec::Moldyn(_) => "MOLDYN",
        }
    }

    /// All four applications at paper-flavoured scale.
    pub fn paper_suite() -> Vec<AppSpec> {
        vec![
            AppSpec::Em3d(Em3dParams::paper()),
            AppSpec::Unstruc(UnstrucParams::paper()),
            AppSpec::Iccg(IccgParams::paper()),
            AppSpec::Moldyn(MoldynParams::paper()),
        ]
    }

    /// All four applications at fast-test scale.
    pub fn small_suite() -> Vec<AppSpec> {
        vec![
            AppSpec::Em3d(Em3dParams::small()),
            AppSpec::Unstruc(UnstrucParams::small()),
            AppSpec::Iccg(IccgParams::small()),
            AppSpec::Moldyn(MoldynParams::small()),
        ]
    }

    /// Canonical field encoding for content-addressed result caching (see
    /// `commsense_des::stable`): the app name plus every workload
    /// parameter, so two specs hash equal exactly when they generate the
    /// same workload.
    pub fn stable_encode(&self, enc: &mut commsense_des::StableEncoder) {
        enc.put("app.name", self.name());
        match self {
            AppSpec::Em3d(p) => {
                enc.put("app.nodes", p.nodes);
                enc.put("app.degree", p.degree);
                enc.put_f64("app.pct_nonlocal", p.pct_nonlocal);
                enc.put("app.span", p.span);
                enc.put("app.iterations", p.iterations);
                enc.put("app.seed", p.seed);
            }
            AppSpec::Unstruc(p) => {
                enc.put("app.nodes", p.nodes);
                enc.put("app.avg_degree", p.avg_degree);
                enc.put("app.flops_per_edge", p.flops_per_edge);
                enc.put("app.iterations", p.iterations);
                enc.put("app.seed", p.seed);
            }
            AppSpec::Iccg(p) => {
                enc.put("app.rows", p.rows);
                enc.put("app.avg_band", p.avg_band);
                enc.put_f64("app.far_fraction", p.far_fraction);
                enc.put("app.chunk_rows", p.chunk_rows);
                enc.put("app.seed", p.seed);
            }
            AppSpec::Moldyn(p) => {
                enc.put("app.molecules", p.molecules);
                enc.put_f64("app.box_size", p.box_size);
                enc.put_f64("app.cutoff", p.cutoff);
                enc.put("app.iterations", p.iterations);
                enc.put("app.rebuild_every", p.rebuild_every);
                enc.put("app.seed", p.seed);
            }
        }
    }

    /// Performs the expensive mechanism-independent work once: generates
    /// the workload for `nprocs` processors, solves the sequential
    /// reference, and builds the communication plans. The result is
    /// cheaply cloneable (`Arc`-backed) and can be shared across every
    /// mechanism and machine variation via [`run_prepared`].
    pub fn prepare(&self, nprocs: usize) -> PreparedWorkload {
        match self {
            AppSpec::Em3d(p) => PreparedWorkload::Em3d(Arc::new(em3d::prepare(p, nprocs))),
            AppSpec::Unstruc(p) => PreparedWorkload::Mesh(Arc::new(unstruc::prepare(p, nprocs))),
            AppSpec::Iccg(p) => PreparedWorkload::Iccg(Arc::new(iccg::prepare(p, nprocs))),
            AppSpec::Moldyn(p) => PreparedWorkload::Mesh(Arc::new(moldyn::prepare(p, nprocs))),
        }
    }
}

/// A workload whose mechanism-independent preparation — graph/system
/// generation, the sequential reference solution, and ghost-exchange
/// plans — has been done once for a fixed processor count.
///
/// Cloning is cheap (the payload is behind an `Arc`), and the preparation
/// is read-only, so one value can feed many concurrent [`run_prepared`]
/// calls.
#[derive(Debug, Clone)]
pub enum PreparedWorkload {
    /// A prepared EM3D graph (graph, references, both exchange plans).
    Em3d(Arc<em3d::Em3dPrepared>),
    /// A prepared force model — UNSTRUC or MOLDYN (model, reference,
    /// exchange plan).
    Mesh(Arc<meshforce::PreparedModel>),
    /// A prepared ICCG system (system, reference solve).
    Iccg(Arc<iccg::IccgPrepared>),
}

impl PreparedWorkload {
    /// The application's short name.
    pub fn name(&self) -> &'static str {
        match self {
            PreparedWorkload::Em3d(_) => "EM3D",
            PreparedWorkload::Mesh(w) => w.model.app,
            PreparedWorkload::Iccg(_) => "ICCG",
        }
    }

    /// The processor count the workload was prepared for.
    pub fn nprocs(&self) -> usize {
        match self {
            PreparedWorkload::Em3d(w) => w.nprocs,
            PreparedWorkload::Mesh(w) => w.nprocs,
            PreparedWorkload::Iccg(w) => w.nprocs,
        }
    }
}

/// Result of one application run under one mechanism.
#[derive(Clone)]
pub struct RunResult {
    /// Application name.
    pub app: &'static str,
    /// Mechanism used.
    pub mechanism: Mechanism,
    /// Total runtime in processor cycles.
    pub runtime_cycles: u64,
    /// Whether the computed values matched the sequential reference.
    pub verified: bool,
    /// Largest absolute deviation from the reference.
    pub max_abs_err: f64,
    /// Full machine statistics.
    pub stats: RunStats,
    /// Host wall-clock time spent simulating this run (set by
    /// [`run_prepared`]). Measurement metadata, not a simulation output.
    pub wall: std::time::Duration,
    /// Observability recording, present when the config enabled
    /// [`commsense_machine::ObserveConfig`]. Shared via `Arc` so cloning a
    /// result (plans cache run outputs) does not duplicate the series.
    pub observation: Option<std::sync::Arc<commsense_machine::Observation>>,
    /// Host-side dispatch profile, present when the config enabled
    /// [`commsense_machine::MachineConfig::profile_dispatch`]. Measurement
    /// metadata, not a simulation output.
    pub profile: Option<commsense_machine::DispatchProfile>,
}

/// `Debug` deliberately omits [`RunResult::wall`], [`RunResult::observation`]
/// and [`RunResult::profile`]: every rendered field is a pure function of
/// the request, and the engine's determinism tests compare runs via their
/// `Debug` rendering. Wall time and the dispatch profile are host noise, and
/// the observation is a bulky recording of the same run, not an extra output.
impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("app", &self.app)
            .field("mechanism", &self.mechanism)
            .field("runtime_cycles", &self.runtime_cycles)
            .field("verified", &self.verified)
            .field("max_abs_err", &self.max_abs_err)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl RunResult {
    /// Simulation events processed per host wall-clock second, if the wall
    /// time was measured and nonzero.
    pub fn events_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            Some(self.stats.events as f64 / secs)
        } else {
            None
        }
    }
}

/// Ensures the configuration's receive mode and barrier style match the
/// mechanism, cloning only when a caller passed a mismatched config.
fn for_mechanism(cfg: &MachineConfig, mech: Mechanism) -> std::borrow::Cow<'_, MachineConfig> {
    if cfg.receive == mech.receive_mode() && cfg.barrier == mech.barrier_style() {
        std::borrow::Cow::Borrowed(cfg)
    } else {
        std::borrow::Cow::Owned(cfg.clone().with_mechanism(mech))
    }
}

/// Runs an application under a mechanism on the given machine
/// configuration (receive mode and barrier style are overridden to match
/// the mechanism) and verifies its output against the sequential
/// reference.
///
/// This is a thin wrapper that prepares the workload and runs it once; use
/// [`AppSpec::prepare`] plus [`run_prepared`] to share the preparation
/// across many runs.
pub fn run_app(spec: &AppSpec, mech: Mechanism, cfg: &MachineConfig) -> RunResult {
    run_prepared(&spec.prepare(cfg.nodes), mech, cfg)
}

/// Runs a prepared workload under a mechanism (receive mode and barrier
/// style are overridden to match the mechanism). The preparation is
/// read-only, so concurrent calls may share one [`PreparedWorkload`].
///
/// # Panics
///
/// Panics if `cfg.nodes` differs from the processor count the workload
/// was prepared for.
pub fn run_prepared(w: &PreparedWorkload, mech: Mechanism, cfg: &MachineConfig) -> RunResult {
    let cfg = for_mechanism(cfg, mech);
    let started = std::time::Instant::now();
    let mut result = match w {
        PreparedWorkload::Em3d(w) => em3d::run_prepared(w, mech, &cfg),
        PreparedWorkload::Mesh(w) => w.run(mech, &cfg),
        PreparedWorkload::Iccg(w) => iccg::run_prepared(w, mech, &cfg),
    };
    result.wall = started.elapsed();
    result
}
