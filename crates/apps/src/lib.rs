//! The four irregular applications of the HPCA'98 study, each implemented
//! under all five communication mechanisms.
//!
//! | App | Structure | Comm/compute | Paper section |
//! |-----|-----------|--------------|---------------|
//! | [`em3d`]    | bipartite red/black graph    | low compute per edge (2 FLOPs)   | §4.1 |
//! | [`unstruc`] | undirected unstructured mesh | high compute per edge (75 FLOPs) | §4.2 |
//! | [`iccg`]    | directed acyclic graph       | very fine-grained (2 FLOPs/edge) | §4.3 |
//! | [`moldyn`]  | molecular pair lists (RCB)   | very high compute per pair       | §4.4 |
//!
//! Every variant executes the same floating-point operations as the
//! sequential reference from `commsense-workloads`, so results are
//! verified after each run ([`RunResult::verified`]): exactly where the
//! accumulation order is deterministic, within a small tolerance where the
//! parallel accumulation order differs (force accumulation, ICCG
//! producer-computes).
//!
//! # Examples
//!
//! ```
//! use commsense_apps::{run_app, AppSpec};
//! use commsense_machine::{MachineConfig, Mechanism};
//! use commsense_workloads::bipartite::Em3dParams;
//!
//! let mut cfg = MachineConfig::tiny();
//! let result = run_app(&AppSpec::Em3d(Em3dParams::small()), Mechanism::MsgPoll, &cfg);
//! assert!(result.verified);
//! cfg = cfg.with_mechanism(Mechanism::SharedMem); // cfg is rebuilt internally anyway
//! let sm = run_app(&AppSpec::Em3d(Em3dParams::small()), Mechanism::SharedMem, &cfg);
//! assert!(sm.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod em3d;
pub mod iccg;
pub mod meshforce;
pub mod microbench;
pub mod moldyn;
pub mod unstruc;

use commsense_machine::{MachineConfig, Mechanism, RunStats};
use commsense_workloads::bipartite::Em3dParams;
use commsense_workloads::moldyn::MoldynParams;
use commsense_workloads::sparse::IccgParams;
use commsense_workloads::unstruct::UnstrucParams;

/// Which application to run, with its workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// EM3D electromagnetic propagation.
    Em3d(Em3dParams),
    /// UNSTRUC fluid flow on an unstructured mesh.
    Unstruc(UnstrucParams),
    /// ICCG sparse triangular solve.
    Iccg(IccgParams),
    /// MOLDYN molecular dynamics.
    Moldyn(MoldynParams),
}

impl AppSpec {
    /// The application's short name.
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::Em3d(_) => "EM3D",
            AppSpec::Unstruc(_) => "UNSTRUC",
            AppSpec::Iccg(_) => "ICCG",
            AppSpec::Moldyn(_) => "MOLDYN",
        }
    }

    /// All four applications at paper-flavoured scale.
    pub fn paper_suite() -> Vec<AppSpec> {
        vec![
            AppSpec::Em3d(Em3dParams::paper()),
            AppSpec::Unstruc(UnstrucParams::paper()),
            AppSpec::Iccg(IccgParams::paper()),
            AppSpec::Moldyn(MoldynParams::paper()),
        ]
    }

    /// All four applications at fast-test scale.
    pub fn small_suite() -> Vec<AppSpec> {
        vec![
            AppSpec::Em3d(Em3dParams::small()),
            AppSpec::Unstruc(UnstrucParams::small()),
            AppSpec::Iccg(IccgParams::small()),
            AppSpec::Moldyn(MoldynParams::small()),
        ]
    }
}

/// Result of one application run under one mechanism.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application name.
    pub app: &'static str,
    /// Mechanism used.
    pub mechanism: Mechanism,
    /// Total runtime in processor cycles.
    pub runtime_cycles: u64,
    /// Whether the computed values matched the sequential reference.
    pub verified: bool,
    /// Largest absolute deviation from the reference.
    pub max_abs_err: f64,
    /// Full machine statistics.
    pub stats: RunStats,
}

/// Runs an application under a mechanism on the given machine
/// configuration (receive mode and barrier style are overridden to match
/// the mechanism) and verifies its output against the sequential
/// reference.
pub fn run_app(spec: &AppSpec, mech: Mechanism, cfg: &MachineConfig) -> RunResult {
    let cfg = cfg.clone().with_mechanism(mech);
    match spec {
        AppSpec::Em3d(p) => em3d::run(p, mech, &cfg),
        AppSpec::Unstruc(p) => unstruc::run(p, mech, &cfg),
        AppSpec::Iccg(p) => iccg::run(p, mech, &cfg),
        AppSpec::Moldyn(p) => moldyn::run(p, mech, &cfg),
    }
}
