//! UNSTRUC fluid-flow mesh computation (§4.2), via the shared
//! force-accumulation engine.
//!
//! UNSTRUC performs 75 single-precision FLOPs per mesh edge — a high
//! computation-to-communication ratio. Its shared-memory versions pay
//! locking overhead on shared node updates; message passing avoids locks
//! because non-interruptible handlers serialize the writes (§4.2.3).

use std::sync::Arc;

use commsense_machine::{MachineConfig, Mechanism};
use commsense_workloads::unstruct::{UnstrucMesh, UnstrucParams};

use crate::meshforce::{ForceModel, Kernel, PreparedModel};
use crate::RunResult;

/// Compute cycles per edge: 75 single-precision FLOPs at ~1.3 cycles per
/// FLOP on Sparcle plus loop bookkeeping.
const EDGE_CYCLES: u64 = 100;
/// Compute cycles per node integration.
const NODE_CYCLES: u64 = 10;

/// Adapts a generated mesh into the force-accumulation engine.
pub fn model(mesh: &UnstrucMesh) -> ForceModel {
    ForceModel {
        app: "UNSTRUC",
        owner: mesh.owner.clone(),
        edges: mesh.edges.clone(),
        weights: mesh.weights.clone(),
        kernel: Kernel::LinearFlux,
        init: mesh.init.clone(),
        iterations: mesh.params.iterations,
        edge_cycles: EDGE_CYCLES,
        node_cycles: NODE_CYCLES,
        rebuild_every: 0,
        rebuild_cycles_per_node: 0,
    }
}

/// Generates the mesh and builds its prepared model (reference solution
/// and exchange plan) for `nprocs` processors.
pub fn prepare(params: &UnstrucParams, nprocs: usize) -> PreparedModel {
    let mesh = UnstrucMesh::generate(params, nprocs);
    PreparedModel::new(Arc::new(model(&mesh)), nprocs)
}

/// Runs UNSTRUC under `mech` and verifies against the sequential
/// reference.
pub fn run(params: &UnstrucParams, mech: Mechanism, cfg: &MachineConfig) -> RunResult {
    prepare(params, cfg.nodes).run(mech, cfg)
}

/// Runs an explicit mesh (e.g. one partitioned with an alternative
/// strategy) under `mech`.
pub fn run_mesh(mesh: &UnstrucMesh, mech: Mechanism, cfg: &MachineConfig) -> RunResult {
    let m = Arc::new(model(mesh));
    m.run(mech, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reference_matches_workload_reference() {
        let mesh = UnstrucMesh::generate(&UnstrucParams::small(), 8);
        let m = model(&mesh);
        assert_eq!(
            m.reference(),
            mesh.reference(),
            "adapter must preserve the computation"
        );
    }

    #[test]
    fn all_mechanisms_verify() {
        let p = UnstrucParams::small();
        for mech in Mechanism::ALL {
            let r = run(&p, mech, &MachineConfig::alewife().with_mechanism(mech));
            assert!(r.verified, "{mech}: max err {}", r.max_abs_err);
        }
    }

    #[test]
    fn locking_shows_up_as_sync_time() {
        // §4.2.3: shared-memory UNSTRUC incurs locking overhead protecting
        // shared node updates.
        let p = UnstrucParams::small();
        let r = run(&p, Mechanism::SharedMem, &MachineConfig::alewife());
        let clk = MachineConfig::alewife().clock();
        let sync: f64 = r
            .stats
            .mean_bucket_cycles(commsense_machine::Bucket::Sync, clk);
        assert!(sync > 0.0, "locking must register as synchronization time");
    }
}
